//! Phase-targeted fast-forwarding via checkpoints (Section IV-C).
//!
//! TPUPoint associates each detected phase with the nearest model
//! checkpoint so an application can be "modified based on a targeted phase
//! and executed without starting from step zero". This example profiles a
//! ResNet run, lists each phase's nearest checkpoint, then fast-forwards
//! to a late region of training and shows the saving over replaying from
//! step zero.
//!
//! ```text
//! cargo run --release --example phase_checkpoint_fastforward
//! ```

use tpupoint::prelude::*;

fn main() -> std::io::Result<()> {
    let config = build(
        WorkloadId::ResnetImagenet,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.004,
            ..BuildOptions::default()
        },
    );
    let tp = TpuPoint::builder().analyzer(false).build();
    let run = tp.profile(config.clone())?;
    let analysis = tp.analyze(&run.profile)?;

    // Every phase carries its nearest checkpoint.
    let phases = &analysis.ols_phases;
    for (phase, ckpt) in phases.phases.iter().zip(&analysis.phase_checkpoints) {
        let share = phase.total_time.as_micros() as f64 / phases.total_time.as_micros() as f64;
        println!(
            "phase {}: steps {:>5}..{:<5} ({:>5.1}% of time) — {}",
            phase.id,
            phase.steps.first().copied().unwrap_or(0),
            phase.steps.last().copied().unwrap_or(0),
            share * 100.0,
            ckpt.map(|c| format!("nearest checkpoint @ step {}", c.checkpoint_step))
                .unwrap_or_else(|| "no checkpoint".to_owned()),
        );
    }

    // Suppose the behaviour we want to re-examine with different
    // parameters lives in the last quarter of training (late learning-rate
    // decay, say). Find the latest checkpoint at or before that region.
    let target_step = config.train_steps * 3 / 4;
    let resume_from = run
        .report
        .checkpoints
        .iter()
        .map(|(s, _)| *s)
        .filter(|&s| s <= target_step)
        .max()
        .expect("checkpoints were written during the run");
    println!(
        "\ntarget region: step {target_step}+; latest checkpoint before it: step {resume_from}"
    );

    // Fast-forward: replay only the steps from that checkpoint onward.
    // (In the simulation, a restart is a fresh session over fewer steps.)
    let mut resumed = config.clone();
    resumed.train_steps = config.train_steps - resume_from;
    resumed.steps_per_eval = None;
    resumed.eval_steps = 0;
    resumed.checkpoint_every = 0;
    let resumed_run = tp.profile(resumed)?;

    let full_wall = run.report.session_wall.as_secs_f64();
    let resumed_wall = resumed_run.report.session_wall.as_secs_f64();
    println!("replaying everything from step zero: {full_wall:.1}s of simulated time");
    println!(
        "resuming at checkpoint@{resume_from} and finishing: {resumed_wall:.1}s ({:.1}% saved)",
        (1.0 - resumed_wall / full_wall) * 100.0
    );
    Ok(())
}
