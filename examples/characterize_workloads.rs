//! Characterize the paper's workload suite (Sections V–VI).
//!
//! Profiles every Table I workload on both TPU generations and prints the
//! observations the paper derives: phase counts (Observation 1), top-3
//! coverage (Observation 2), idle time and MXU utilization (Observations
//! 3–5), and the common time-consuming operators.
//!
//! ```text
//! cargo run --release --example characterize_workloads
//! ```

use tpupoint::prelude::*;

fn main() -> std::io::Result<()> {
    let tp = TpuPoint::builder().analyzer(false).build();
    println!(
        "{:18} {:>9} {:>12} {:>12} {:>10} {:>10}",
        "workload", "phases", "top3 cover", "idle v2/v3", "mxu v2/v3", "steps"
    );
    let mut idle_sums = (0.0, 0.0);
    let mut mxu_sums = (0.0, 0.0);
    for id in WorkloadId::paper_nine() {
        let opts = BuildOptions {
            scale: id.default_sim_scale(),
            ..BuildOptions::default()
        };
        let v2 = tp.profile(build(id, TpuGeneration::V2, &opts))?;
        let v3 = tp.profile(build(id, TpuGeneration::V3, &opts))?;
        let analyzer = Analyzer::new(&v2.profile);
        let phases = analyzer.ols_phases(0.7);
        let (i2, i3) = (
            v2.profile.steady_tpu_idle_fraction(),
            v3.profile.steady_tpu_idle_fraction(),
        );
        let (m2, m3) = (
            v2.profile.steady_mxu_utilization(),
            v3.profile.steady_mxu_utilization(),
        );
        idle_sums.0 += i2;
        idle_sums.1 += i3;
        mxu_sums.0 += m2;
        mxu_sums.1 += m3;
        println!(
            "{:18} {:>9} {:>11.1}% {:>5.1}/{:>4.1}% {:>5.1}/{:>3.1}% {:>10}",
            id.label(),
            phases.len(),
            phases.coverage_top(3) * 100.0,
            i2 * 100.0,
            i3 * 100.0,
            m2 * 100.0,
            m3 * 100.0,
            v2.report.steps_completed,
        );
    }
    let n = WorkloadId::paper_nine().len() as f64;
    println!(
        "\naverages: idle {:.1}% (v2) / {:.1}% (v3)   mxu {:.1}% (v2) / {:.1}% (v3)",
        idle_sums.0 / n * 100.0,
        idle_sums.1 / n * 100.0,
        mxu_sums.0 / n * 100.0,
        mxu_sums.1 / n * 100.0
    );
    println!("paper:     idle 38.9% (v2) / 43.5% (v3)   mxu 22.7% (v2) / 11.3% (v3)");
    Ok(())
}
