//! TPUPoint-Optimizer on a naive implementation (Section VII).
//!
//! Builds the QANet workload with the paper's "naive implementation"
//! pipeline (single-threaded decode, minimal buffering, redundant
//! transform passes), runs the optimizer, and prints every tuning trial
//! plus the before/after idle and MXU numbers of Figures 15–16.
//!
//! ```text
//! cargo run --release --example autotune
//! ```

use tpupoint::optimizer::TrialOutcome;
use tpupoint::prelude::*;

fn main() {
    let config = build(
        WorkloadId::QanetSquad,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.004,
            variant: Variant::Naive,
            ..BuildOptions::default()
        },
    );
    println!(
        "naive {} pipeline: {} decode threads, prefetch {}, {} transform passes",
        config.model,
        config.pipeline.num_parallel_calls,
        config.pipeline.prefetch_depth,
        config.pipeline.host_transform_passes
    );

    let report = TpuPointOptimizer::new(config).optimize();

    println!("\nadjustable parameters: {:?}", report.discovery.adjustable);
    println!(
        "excluded: {:?}",
        report
            .discovery
            .excluded
            .iter()
            .map(|(p, r)| format!("{p} ({r:?})"))
            .collect::<Vec<_>>()
    );
    println!(
        "critical phase detected: {}",
        report.critical_phase_detected
    );

    println!("\ntuning trials:");
    for trial in &report.trials {
        let marker = match trial.outcome {
            TrialOutcome::Accepted => "ACCEPT",
            TrialOutcome::NoImprovement => "revert",
            TrialOutcome::OutputChanged => "GUARD!",
            TrialOutcome::Invalid => "error ",
        };
        println!(
            "  [{marker}] {:22} {:>5} -> {:<5} {:>8.2} steps/s",
            trial.param.to_string(),
            trial.from,
            trial.to,
            trial.steps_per_sec
        );
    }

    println!("\ntuned pipeline: {:?}", report.tuned_pipeline);
    println!(
        "\nthroughput: {:.2} -> {:.2} steps/s ({:.3}x)",
        report.baseline.throughput_steps_per_sec(),
        report.optimized.throughput_steps_per_sec(),
        report.throughput_speedup()
    );
    println!(
        "TPU idle:   {:.1}% -> {:.1}%",
        report.baseline.tpu_idle_fraction() * 100.0,
        report.optimized.tpu_idle_fraction() * 100.0
    );
    println!(
        "MXU util:   {:.1}% -> {:.1}%",
        report.baseline.mxu_utilization() * 100.0,
        report.optimized.mxu_utilization() * 100.0
    );
    println!(
        "output preserved: {} (digest {:#x})",
        report.output_preserved(),
        report.optimized.output_digest
    );
    println!("online tuning overhead: {}", report.tuning_overhead);
}
