//! Quickstart: the paper's Figure 2 workflow end to end.
//!
//! Profiles one simulated DCGAN training session on a TPUv2, runs
//! TPUPoint-Analyzer over the captured profile, and prints the phases,
//! their checkpoints, and the headline utilization numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tpupoint::prelude::*;

fn main() -> std::io::Result<()> {
    // 1. Pick a workload (DCGAN on CIFAR-10, Table I defaults) at a small
    //    simulation scale so the example finishes in well under a second.
    let config = build(
        WorkloadId::DcganCifar10,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.02,
            ..BuildOptions::default()
        },
    );
    println!(
        "workload: {} on {} ({} train steps, batch {})",
        config.model, config.dataset.name, config.train_steps, config.pipeline.batch_size
    );

    // 2. Start the profiler, run training, stop — all in one call.
    let tp = TpuPoint::builder()
        .analyzer(true)
        .output_dir("results/quickstart")
        .build();
    let run = tp.profile(config)?;
    println!(
        "profiled {} steps: wall {:.1}s, TPU idle {:.1}%, MXU util {:.1}%",
        run.report.steps_completed,
        run.report.session_wall.as_secs_f64(),
        run.profile.steady_tpu_idle_fraction() * 100.0,
        run.profile.steady_mxu_utilization() * 100.0,
    );

    // 3. Post-execution analysis: phases via the online linear scan.
    let analysis = tp.analyze(&run.profile)?;
    println!(
        "OLS found {} phases; top 3 cover {:.1}% of execution time",
        analysis.ols_phases.len(),
        analysis.ols_phases.coverage_top(3) * 100.0
    );
    for (phase, checkpoint) in analysis
        .ols_phases
        .phases
        .iter()
        .zip(&analysis.phase_checkpoints)
    {
        let ckpt = checkpoint
            .map(|c| format!("checkpoint@{} (distance {})", c.checkpoint_step, c.distance))
            .unwrap_or_else(|| "no checkpoint".to_owned());
        println!(
            "  phase {}: steps {}..{} ({} steps) — {}",
            phase.id,
            phase.steps.first().copied().unwrap_or(0),
            phase.steps.last().copied().unwrap_or(0),
            phase.steps.len(),
            ckpt
        );
    }

    // 4. The most time-consuming operators of the longest phase.
    let analyzer = Analyzer::new(&run.profile);
    if let Some(top) = analyzer.top_operators_of_longest(&analysis.ols_phases, 5) {
        println!("top TPU ops of the longest phase:");
        for (name, dur, count) in &top.tpu {
            println!("  {name:28} {count:6} calls, {dur}");
        }
        println!("top host ops of the longest phase:");
        for (name, dur, count) in &top.host {
            println!("  {name:28} {count:6} calls, {dur}");
        }
    }

    if let Some(path) = &analysis.trace_path {
        println!("chrome://tracing file: {}", path.display());
    }
    Ok(())
}
