//! Profiling under lost profile responses (beyond-the-paper extension).
//!
//! The real Cloud TPU profiler can lose gRPC responses; TPUPoint's
//! statistical records then simply miss those windows. This example
//! injects response loss, audits the damaged window stream, and shows
//! that OLS phase detection degrades gracefully.
//!
//! ```text
//! cargo run --release --example faulty_profiles
//! ```

use tpupoint::prelude::*;
use tpupoint::profiler::audit_windows;
use tpupoint::runtime::TrainingJob;
use tpupoint::sim::SimDuration;

fn main() {
    let config = build(
        WorkloadId::BertCola,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.5,
            ..BuildOptions::default()
        },
    );

    for drop_probability in [0.0, 0.1, 0.3] {
        let job = TrainingJob::new(config.clone());
        let options = ProfilerOptions {
            // Short windows so losses are visible at this scale.
            window_max_span: SimDuration::from_millis(2_000),
            drop_probability,
            ..ProfilerOptions::default()
        };
        let mut sink = ProfilerSink::new(job.catalog().clone(), options);
        sink.set_source(&job.config().model, &job.config().dataset.name);
        job.run(&mut sink);
        let profile = sink.finish();

        let audit = audit_windows(&profile.windows, SimDuration::from_millis(1));
        let analyzer = Analyzer::new(&profile);
        let phases = analyzer.ols_phases(0.7);
        println!(
            "drop p={drop_probability:>4}: {} windows kept, {} dropped \
             ({:>5.1}% events lost, {:>5.1}% time unobserved) -> {} OLS phases, \
             top-3 coverage {:>5.1}%",
            profile.windows.len(),
            profile.dropped_windows,
            profile.loss_fraction() * 100.0,
            audit.unobserved_fraction() * 100.0,
            phases.len(),
            phases.coverage_top(3) * 100.0,
        );
    }
    println!(
        "\nmoderate loss barely moves the phase structure; heavy loss \
         fragments phases at the missing windows' edges and erodes top-3 \
         coverage — the audit quantifies how much to trust a profile."
    );
}
