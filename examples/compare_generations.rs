//! TPUv2 versus TPUv3 on the same workload (Observation 5).
//!
//! Profiles BERT-SQuAD on both generations and diffs the profiles op by
//! op: non-computational operators shrink far less than matrix work, so
//! idle rises and MXU utilization halves on the newer chip.
//!
//! ```text
//! cargo run --release --example compare_generations
//! ```

use tpupoint::analyzer::compare;
use tpupoint::prelude::*;

fn main() -> std::io::Result<()> {
    let id = WorkloadId::BertSquad;
    let opts = BuildOptions {
        scale: id.default_sim_scale(),
        ..BuildOptions::default()
    };
    let tp = TpuPoint::builder().analyzer(false).build();
    let v2 = tp.profile(build(id, TpuGeneration::V2, &opts))?;
    let v3 = tp.profile(build(id, TpuGeneration::V3, &opts))?;

    let cmp = compare(&v2.profile, &v3.profile);
    print!("{}", cmp.render(10));

    println!(
        "\nObservation 5 in action: MXU utilization {:.1}% -> {:.1}% while \
         idle rises {:.1}% -> {:.1}% — \"the significance of non-computational \
         overhead increases as computational throughput improves.\"",
        cmp.mxu.0 * 100.0,
        cmp.mxu.1 * 100.0,
        cmp.idle.0 * 100.0,
        cmp.idle.1 * 100.0,
    );
    Ok(())
}
