//! Offline stand-in for `criterion`.
//!
//! Keeps the macro/API surface (`criterion_group!`, `criterion_main!`,
//! `bench_function`, `benchmark_group`, `iter`, `iter_batched`) so benches
//! compile and run without crates.io access, but replaces the statistical
//! machinery with a simple mean-of-N-samples timer printed to stdout. Good
//! enough to eyeball relative costs; not a replacement for real criterion
//! statistics.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named group of benchmarks; results are prefixed with the group name.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group. No-op beyond matching the real API.
    pub fn finish(self) {}
}

/// How much setup output to batch per timing in [`Bencher::iter_batched`].
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// One setup value per timed call.
    SmallInput,
    /// Same behavior as `SmallInput` in this stand-in.
    LargeInput,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{id:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a benchmark group; mirrors criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_sample_size_times() {
        let mut calls = 0usize;
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("count", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 5);
    }

    #[test]
    fn iter_batched_feeds_fresh_input() {
        let mut c = Criterion::default().sample_size(3);
        let mut seen = Vec::new();
        let mut next = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |input| seen.push(input),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        let mut c = Criterion::default().sample_size(1);
        let mut group = c.benchmark_group("g");
        group.bench_function("one", |b| b.iter(|| ()));
        group.finish();
    }
}
