//! Offline stand-in for the `rand` crate.
//!
//! Provides the narrow surface the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range` over
//! integer ranges — backed by xoshiro256++ seeded through splitmix64.
//! The generator is deterministic per seed, which is all the simulator
//! requires; it makes no cryptographic claims.

/// Seeding support; mirrors the subset of `rand::SeedableRng` in use.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling trait implemented by generator types.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of type `T`.
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from an integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Item
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types that can be sampled uniformly from raw generator output.
pub trait Sample {
    /// Draws one sample.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, matching the standard
    /// `(x >> 11) * 2^-53` construction.
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type produced by the range.
    type Item;

    /// Draws a uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Item;
}

/// Uniform draw from `[0, width)` by rejection sampling, so every value is
/// equally likely (no modulo bias). `width` must be non-zero.
fn below<R: Rng>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    // Largest multiple of `width` that fits in u64; rejecting raw samples
    // at or above it leaves each residue class equally represented.
    let zone = u64::MAX - (u64::MAX % width + 1) % width;
    loop {
        let raw = rng.next_u64();
        if raw <= zone {
            return raw % width;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Item = $t;

            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(below(rng, width) as $t)
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Item = $t;

            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    // Full-width range: every raw draw is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, width) as $t)
            }
        }
    )*};
}
int_ranges!(u64, usize, u32, i64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator: xoshiro256++ with splitmix64 seeding.
    ///
    /// Not the same algorithm as the real `rand::rngs::StdRng` (ChaCha12),
    /// but it satisfies the same contract this workspace relies on:
    /// `Debug + Clone`, identical streams for identical seeds, and good
    /// statistical quality for simulation use.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            StdRng {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(100);
        assert_ne!(StdRng::seed_from_u64(99).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&x));
            let y = rng.gen_range(5usize..8);
            assert!((5..8).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(11);
        // Must not hang or panic on the zero-width modulus case.
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
