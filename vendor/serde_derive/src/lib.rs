//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! The container that builds this workspace has no crates.io access, so
//! `syn`/`quote` are unavailable; the item is parsed directly from the
//! `proc_macro` token stream. Supported shapes — which cover every derive
//! site in this repository — are:
//!
//! * structs with named fields (honoring `#[serde(default)]`),
//! * tuple structs (newtypes serialize transparently, wider ones as
//!   arrays),
//! * unit structs,
//! * enums whose variants are unit or tuple variants (externally tagged,
//!   matching serde's default representation).
//!
//! Generics, struct variants, and other serde attributes are rejected
//! with a compile error naming the construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    default: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    arity: usize,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(message) => {
            return format!("compile_error!({message:?});").parse().unwrap();
        }
    };
    let code = match (&item, mode) {
        (Item::Struct { name, shape }, Mode::Serialize) => struct_serialize(name, shape),
        (Item::Struct { name, shape }, Mode::Deserialize) => struct_deserialize(name, shape),
        (Item::Enum { name, variants }, Mode::Serialize) => enum_serialize(name, variants),
        (Item::Enum { name, variants }, Mode::Deserialize) => enum_deserialize(name, variants),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let tok = self.tokens.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    /// Skips leading `#[...]` attribute groups, returning whether any of
    /// them was `#[serde(default)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut has_default = false;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            if let Some(TokenTree::Group(group)) = self.next() {
                has_default |= attr_is_serde_default(&group.stream());
            }
        }
        has_default
    }

    /// Skips `pub`, `pub(crate)`, and friends.
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected {what}, found {other:?}")),
        }
    }
}

fn attr_is_serde_default(stream: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default")),
        _ => false,
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cursor = Cursor::new(input);
    cursor.skip_attrs();
    cursor.skip_visibility();
    let kind = cursor.expect_ident("`struct` or `enum`")?;
    let name = cursor.expect_ident("item name")?;
    if matches!(cursor.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generics (on `{name}`)"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let shape = match cursor.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => {
            let body = match cursor.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("unsupported enum body: {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let default = cursor.skip_attrs();
        cursor.skip_visibility();
        let Some(TokenTree::Ident(name)) = cursor.next() else {
            break;
        };
        fields.push(Field {
            name: name.to_string(),
            default,
        });
        // Skip `: Type` up to the next top-level comma. Group tokens hide
        // their inner commas; only `<`/`>` puncts need depth tracking.
        let mut angle_depth = 0i32;
        while let Some(tok) = cursor.next() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cursor.skip_attrs();
        let Some(tok) = cursor.next() else { break };
        let TokenTree::Ident(name) = tok else {
            return Err(format!("expected enum variant, found {tok:?}"));
        };
        let arity = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cursor.next();
                n
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde stand-in derive does not support struct variants (`{name}`)"
                ));
            }
            _ => 0,
        };
        variants.push(Variant {
            name: name.to_string(),
            arity,
        });
        // Skip a possible discriminant, then the separating comma.
        let mut angle_depth = 0i32;
        while let Some(tok) = cursor.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        cursor.next();
                        break;
                    }
                    _ => {}
                }
            }
            cursor.next();
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation (plain source strings, parsed back into a TokenStream)
// ---------------------------------------------------------------------------

fn struct_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "map.insert(::std::string::String::from({n:?}), \
                         ::serde::Serialize::to_value(&self.{n}));\n",
                        n = f.name
                    )
                })
                .collect();
            format!("let mut map = ::serde::Map::new();\n{inserts}::serde::Value::Object(map)")
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_owned(),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn struct_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let field_inits: String = fields
                .iter()
                .map(|f| {
                    let missing = if f.default {
                        "::std::default::Default::default()".to_owned()
                    } else {
                        format!("::serde::de::missing_field({:?}, {name:?})?", f.name)
                    };
                    format!(
                        "{n}: match map.get({n:?}) {{\n\
                             ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                             ::std::option::Option::None => {missing},\n\
                         }},\n",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "let map = value.as_object().ok_or_else(|| \
                     ::serde::Error::expected(\"object\", {name:?}))?;\n\
                 ::std::result::Result::Ok({name} {{\n{field_inits}}})"
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| \
                     ::serde::Error::expected(\"array\", {name:?}))?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::expected(\
                         \"array of length {n}\", {name:?}));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({fields}))",
                fields = items.join(", ")
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| match v.arity {
            0 => format!(
                "{name}::{v} => ::serde::Value::String(::std::string::String::from({v:?})),\n",
                v = v.name
            ),
            1 => format!(
                "{name}::{v}(f0) => {{\n\
                     let mut map = ::serde::Map::new();\n\
                     map.insert(::std::string::String::from({v:?}), \
                         ::serde::Serialize::to_value(f0));\n\
                     ::serde::Value::Object(map)\n\
                 }}\n",
                v = v.name
            ),
            n => {
                let binds: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "{name}::{v}({binds}) => {{\n\
                         let mut map = ::serde::Map::new();\n\
                         map.insert(::std::string::String::from({v:?}), \
                             ::serde::Value::Array(vec![{items}]));\n\
                         ::serde::Value::Object(map)\n\
                     }}\n",
                    v = v.name,
                    binds = binds.join(", "),
                    items = items.join(", ")
                )
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| v.arity == 0)
        .map(|v| {
            format!(
                "{v:?} => ::std::result::Result::Ok({name}::{v}),\n",
                v = v.name
            )
        })
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter(|v| v.arity > 0)
        .map(|v| {
            if v.arity == 1 {
                format!(
                    "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(inner)?)),\n",
                    v = v.name
                )
            } else {
                let items: Vec<String> = (0..v.arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "{v:?} => {{\n\
                         let items = inner.as_array().ok_or_else(|| \
                             ::serde::Error::expected(\"array\", {name:?}))?;\n\
                         if items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::expected(\
                                 \"array of length {n}\", {name:?}));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{v}({fields}))\n\
                     }}\n",
                    v = v.name,
                    n = v.arity,
                    fields = items.join(", ")
                )
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                     ::serde::Value::String(tag) => match tag.as_str() {{\n\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::Error::msg(\
                             format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(map) if map.len() == 1 => {{\n\
                         let (tag, inner) = map.iter().next().expect(\"len checked\");\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => ::std::result::Result::Err(::serde::Error::msg(\
                                 format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::Error::expected(\
                         \"string or single-key object\", {name:?})),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
