//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/`proptest!` surface this workspace uses with a
//! deterministic seeded generator. Differences from the real crate, by
//! design: no shrinking (a failing case reports its inputs via the assert
//! message instead of a minimized counterexample) and no persistence files.
//! Each test derives its seed from the test name, so runs are reproducible
//! and adding cases to one test does not perturb another.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Map combinator returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let index = rng.gen_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_strategies!(u64, usize, u32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Closed-interval sampling: nudge the unit sample up to include 1.
        let unit = rng.gen::<f64>() / (1.0 - f64::EPSILON);
        lo + unit.min(1.0) * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range boolean strategy used by `any::<bool>()`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_full_range {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
arbitrary_full_range!(u64, u32, usize, i64);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Vec strategy with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates `Vec`s whose length lies in `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test execution configuration.

    /// Number of cases to run per property; mirrors
    /// `proptest::test_runner::Config`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Stable 64-bit seed derived from a test's name (FNV-1a), so every
/// property test has its own reproducible stream.
pub fn seed_for(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Builds the deterministic generator for a named test. Exists so the
/// `proptest!` expansion does not need the consuming crate to depend on
/// `rand` directly.
#[doc(hidden)]
pub fn rng_for(name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(name))
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy};
}

/// Defines property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::rng_for(stringify!($name));
            $(let $arg = $strategy;)+
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in 0usize..=4, f in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_the_range(
            items in crate::collection::vec(0u32..5, 1..7),
        ) {
            prop_assert!((1..7).contains(&items.len()));
            prop_assert!(items.iter().all(|&i| i < 5));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![Just(1u64), Just(2u64)],
            mapped in (0u64..10).prop_map(|n| n * 2),
            flag in any::<bool>(),
        ) {
            prop_assert!(v == 1 || v == 2);
            prop_assert!(mapped % 2 == 0 && mapped < 20);
            let _ = flag;
        }
    }
}
