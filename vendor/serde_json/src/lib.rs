//! Offline stand-in for `serde_json`.
//!
//! Re-uses the value model from the `serde` stand-in and adds a JSON text
//! layer: a recursive-descent parser, compact and pretty writers, and the
//! `json!` construction macro. The API mirrors the subset of real
//! `serde_json` this repository uses.

use std::fmt;
use std::io;

pub use serde::{Map, Number, Value};

mod parse;

/// Error type covering both syntax errors from parsing and data-model
/// mismatches surfaced while converting to a concrete type.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error::new(err.to_string())
    }
}

impl From<io::Error> for Error {
    fn from(err: io::Error) -> Self {
        Error::new(err.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Converts a [`Value`] into a concrete deserializable type.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

/// Serializes to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.to_value().to_string())
}

/// Serializes to a pretty (2-space indented) JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_string(true))
}

/// Writes compact JSON to an `io::Write`.
pub fn to_writer<W: io::Write, T: serde::Serialize>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Writes pretty JSON to an `io::Write`.
pub fn to_writer_pretty<W: io::Write, T: serde::Serialize>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Parses a JSON string into a concrete type.
pub fn from_str<T: serde::de::DeserializeOwned>(input: &str) -> Result<T> {
    let value = parse::parse(input)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON bytes into a concrete type.
pub fn from_slice<T: serde::de::DeserializeOwned>(input: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(input).map_err(|e| Error::new(e.to_string()))?;
    from_str(text)
}

/// Reads all of `reader` and parses it as JSON.
pub fn from_reader<R: io::Read, T: serde::de::DeserializeOwned>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Builds a [`Value`] from JSON-looking syntax.
///
/// Object and array literals recurse; any other expression goes through
/// [`serde::Serialize::to_value`], so `json!({"k": some_struct})` works for
/// any serializable type, including `Option` (where `None` becomes `null`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($items:tt)* ]) => { $crate::json_array!([ $($items)* ]) };
    ({ $($body:tt)* }) => { $crate::json_object!({ $($body)* }) };
    ($other:expr) => { ::serde::Serialize::to_value(&$other) };
}

/// Internal: array literal support for [`json!`].
///
/// A TT-muncher so that multi-token expressions (`-2`, `a + b`) work as
/// elements alongside nested object/array literals.
#[macro_export]
#[doc(hidden)]
macro_rules! json_array {
    ([ $($items:tt)* ]) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        {
            let mut items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
            $crate::json_array_inner!(items, $($items)*);
            $crate::Value::Array(items)
        }
    }};
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_array_inner {
    ($vec:ident,) => {};
    ($vec:ident) => {};
    ($vec:ident, null $(, $($rest:tt)*)?) => {
        $vec.push($crate::Value::Null);
        $crate::json_array_inner!($vec $(, $($rest)*)?);
    };
    ($vec:ident, { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push($crate::json_object!({ $($inner)* }));
        $crate::json_array_inner!($vec $(, $($rest)*)?);
    };
    ($vec:ident, [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push($crate::json_array!([ $($inner)* ]));
        $crate::json_array_inner!($vec $(, $($rest)*)?);
    };
    ($vec:ident, $value:expr $(, $($rest:tt)*)?) => {
        $vec.push(::serde::Serialize::to_value(&$value));
        $crate::json_array_inner!($vec $(, $($rest)*)?);
    };
}

/// Internal: object literal support for [`json!`].
///
/// A TT-muncher: each step consumes one `"key": value` pair, where the
/// value is either a braced object, a bracketed array, or a plain
/// expression (matched up to the next top-level comma).
#[macro_export]
#[doc(hidden)]
macro_rules! json_object {
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_object_inner!(map, $($body)*);
        $crate::Value::Object(map)
    }};
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_object_inner {
    ($map:ident,) => {};
    ($map:ident) => {};
    ($map:ident, $key:tt : null $(, $($rest:tt)*)?) => {
        $map.insert($crate::json_key!($key), $crate::Value::Null);
        $crate::json_object_inner!($map, $($($rest)*)?);
    };
    ($map:ident, $key:tt : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($crate::json_key!($key), $crate::json_object!({ $($inner)* }));
        $crate::json_object_inner!($map, $($($rest)*)?);
    };
    ($map:ident, $key:tt : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($crate::json_key!($key), $crate::json_array!([ $($inner)* ]));
        $crate::json_object_inner!($map, $($($rest)*)?);
    };
    ($map:ident, $key:tt : $value:expr $(, $($rest:tt)*)?) => {
        $map.insert($crate::json_key!($key), ::serde::Serialize::to_value(&$value));
        $crate::json_object_inner!($map, $($($rest)*)?);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_key {
    ($key:literal) => {
        ::std::string::String::from($key)
    };
    ($key:expr) => {
        ::std::string::String::from($key)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_structures() {
        let name = "resnet";
        let v = json!({
            "model": name,
            "k": 4,
            "nested": { "ok": true, "items": [1, 2, 3] },
            "missing": null,
        });
        assert_eq!(v["model"], "resnet");
        assert_eq!(v["k"], 4u64);
        assert_eq!(v["nested"]["ok"], true);
        assert_eq!(v["nested"]["items"][2], 3u64);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn json_macro_accepts_expressions_and_options() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        let v = json!({ "some": some, "none": none, "sum": 2 + 3 });
        assert_eq!(v["some"], 7u64);
        assert!(v["none"].is_null());
        assert_eq!(v["sum"], 5u64);
    }

    #[test]
    fn round_trip_through_text() {
        let v = json!({
            "a": [1.5, -2, "x\n"],
            "b": { "c": false },
        });
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn parse_errors_mention_position() {
        let err = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(err.to_string().contains("offset"), "{err}");
    }

    #[test]
    fn from_reader_and_slice_agree() {
        let text = br#"{"k": [true, null, 1e3]}"#;
        let a: Value = from_slice(text).unwrap();
        let b: Value = from_reader(&text[..]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a["k"][2], 1000.0);
    }
}
