//! Recursive-descent JSON parser producing [`Value`] trees.

use crate::{Error, Map, Number, Result, Value};

pub(crate) fn parse(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal, expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(byte) if byte < 0x80 => out.push(byte as char),
                Some(byte) => {
                    // Re-decode the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let width = utf8_width(byte);
                    let end = start + width;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.error("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char> {
        let code = self.hex4()?;
        // Surrogate pairs: a high surrogate must be followed by `\u` and a
        // low surrogate.
        if (0xD800..0xDC00).contains(&code) {
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.error("unpaired surrogate"));
            }
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.error("invalid low surrogate"));
            }
            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            return char::from_u32(combined).ok_or_else(|| self.error("invalid surrogate pair"));
        }
        char::from_u32(code).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.error("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        if !is_float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::I(n)));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}` at offset {start}")))
    }
}

fn utf8_width(byte: u8) -> usize {
    match byte {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), Value::Number(Number::U(42)));
        assert_eq!(parse("-3").unwrap(), Value::Number(Number::I(-3)));
        assert_eq!(parse("2.5").unwrap(), Value::Number(Number::F(2.5)));
        assert_eq!(parse("1e3").unwrap(), Value::Number(Number::F(1000.0)));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(parse(r#""a\nb""#).unwrap(), Value::String("a\nb".into()));
        assert_eq!(parse(r#""é""#).unwrap(), Value::String("é".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("😀".into()));
        assert_eq!(parse("\"héllo\"").unwrap(), Value::String("héllo".into()));
    }

    #[test]
    fn parses_u64_max_without_precision_loss() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
