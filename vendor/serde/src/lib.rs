//! Offline stand-in for the `serde` crate.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors a minimal serialization framework under the same crate name.
//! Instead of serde's visitor-based zero-copy data model, everything
//! funnels through one owned JSON-like [`Value`]: `Serialize` renders a
//! type *to* a value and `Deserialize` rebuilds a type *from* one. The
//! derive macros (see the sibling `serde_derive` crate) generate exactly
//! these impls, honoring `#[serde(default)]` on struct fields and the
//! externally-tagged enum representation serde uses by default, so JSON
//! produced by the real serde/serde_json pair stays readable and vice
//! versa for the shapes this repository uses.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;
pub use value::{Map, Number, Value};

/// Serialization/deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from any message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }

    /// Shorthand for "expected X while deserializing Y" errors.
    pub fn expected(what: &str, context: &str) -> Self {
        Error(format!("expected {what} while deserializing {context}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value.
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent entirely; `None`
    /// means "absence is an error". `Option<T>` overrides this to yield
    /// `Some(None)`, matching serde's treatment of optional fields.
    #[doc(hidden)]
    fn absent() -> Option<Self> {
        None
    }
}

/// Serialization-side re-exports (API parity with real serde).
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Deserialization-side helpers.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// Marker for types deserializable without borrowing, mirroring
    /// serde's `DeserializeOwned`. Every `Deserialize` type qualifies
    /// here because this stand-in's data model is fully owned.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}

    /// Resolves a missing struct field: `Option` fields become `None`,
    /// anything else is an error naming the field.
    ///
    /// # Errors
    ///
    /// Returns an error when the field type has no absent representation.
    pub fn missing_field<T: Deserialize>(field: &str, ty: &str) -> Result<T, Error> {
        T::absent().ok_or_else(|| Error::msg(format!("missing field `{field}` in `{ty}`")))
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Map keys must serialize to a string or number; JSON object keys are
/// strings, so numeric keys are rendered in decimal, exactly like real
/// serde_json does for integer-keyed maps.
fn key_string(key: &Value) -> String {
    match key {
        Value::String(s) => s.clone(),
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(key_string(&k.to_value()), v.to_value());
        }
        Value::Object(map)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(key_string(&k.to_value()), v.to_value());
        }
        Value::Object(map)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("number", "f32"))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", "Vec")),
        }
    }
}

/// Rebuilds a map key from its JSON string form: tries the string itself
/// first, then (for numeric keys like interned op ids) its numeric
/// reading — the inverse of [`key_string`].
fn key_from_string<K: Deserialize>(raw: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(raw.to_owned())) {
        return Ok(k);
    }
    if let Ok(n) = raw.parse::<u64>() {
        return K::from_value(&Value::Number(Number::U(n)));
    }
    if let Ok(n) = raw.parse::<i64>() {
        return K::from_value(&Value::Number(Number::I(n)));
    }
    if let Ok(n) = raw.parse::<f64>() {
        return K::from_value(&Value::Number(Number::F(n)));
    }
    Err(Error::msg(format!("cannot rebuild map key from `{raw}`")))
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::expected("object", "BTreeMap")),
        }
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::expected("object", "HashMap")),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal; $($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::expected(
                        concat!("array of length ", $len),
                        "tuple",
                    )),
                }
            }
        }
    )*};
}
deserialize_tuple! {
    (1; A.0)
    (2; A.0, B.1)
    (3; A.0, B.1, C.2)
    (4; A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_owned()
        );
        let f = f64::from_value(&1.5f64.to_value()).unwrap();
        assert_eq!(f, 1.5);
    }

    #[test]
    fn u64_max_survives() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn options_and_vecs_round_trip() {
        let v: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&v.to_value()).unwrap(), None);
        let v = Some(3u32);
        assert_eq!(Option::<u32>::from_value(&v.to_value()).unwrap(), Some(3));
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn tuples_round_trip() {
        let v = (1u64, "x".to_owned(), 2.5f64);
        let got = <(u64, String, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn numeric_keyed_maps_round_trip() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(3u32, "three".to_owned());
        m.insert(11u32, "eleven".to_owned());
        let value = m.to_value();
        let back = std::collections::BTreeMap::<u32, String>::from_value(&value).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn missing_field_resolves_options_only() {
        assert_eq!(de::missing_field::<Option<u8>>("f", "T").unwrap(), None);
        assert!(de::missing_field::<u8>("f", "T").is_err());
    }
}
