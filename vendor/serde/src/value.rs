//! The owned value data model shared by `serde` and `serde_json`.

use std::collections::BTreeMap;
use std::fmt;

/// JSON object representation. A `BTreeMap` keeps output deterministic
/// (keys sorted), which the repository's golden files and tests rely on.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The number as `u64`, if representable exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(n) => Some(n),
            Number::I(n) => u64::try_from(n).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// The number as `i64`, if representable exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(n) => i64::try_from(n).ok(),
            Number::I(n) => Some(n),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }

    /// The number as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(n) => n as f64,
            Number::I(n) => n as f64,
            Number::F(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            (Number::F(a), Number::F(b)) => a == b,
            // Cross-representation comparisons go through exact integer
            // views first, falling back to float equality.
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => match (self.as_u64(), other.as_u64()) {
                    (Some(a), Some(b)) => a == b,
                    _ => self.as_f64() == other.as_f64(),
                },
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U(n) => write!(f, "{n}"),
            Number::I(n) => write!(f, "{n}"),
            Number::F(x) => {
                if x.is_finite() {
                    // Rust's float Display picks the shortest decimal
                    // string that parses back to the same f64.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no NaN/Infinity; real serde_json errors
                    // here. Null keeps output parseable instead.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An owned JSON-like value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as a borrowed string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a borrowed array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a borrowed object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key; `None` when absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Renders to a JSON string; `pretty` uses 2-space indentation.
    pub fn to_json_string(&self, pretty: bool) -> String {
        let mut out = String::new();
        self.write_json(&mut out, if pretty { Some(0) } else { None });
        out
    }

    /// Writes the value as JSON; `indent` of `None` means compact.
    pub(crate) fn write_json(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    item.write_json(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    write_escaped(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write_json(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact JSON rendering.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_json(&mut out, None);
        f.write_str(&out)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        self.as_array().and_then(|a| a.get(index)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! value_eq_number {
    ($($t:ty => $variant:ident),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => *n == Number::$variant(*other as _),
                    _ => false,
                }
            }
        }
    )*};
}
value_eq_number!(u64 => U, u32 => U, usize => U, i64 => I, i32 => I, f64 => F);

macro_rules! value_from {
    ($($t:ty => $body:expr),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                #[allow(clippy::redundant_closure_call)]
                ($body)(v)
            }
        }
    )*};
}
value_from! {
    bool => Value::Bool,
    u64 => |v| Value::Number(Number::U(v)),
    u32 => |v: u32| Value::Number(Number::U(u64::from(v))),
    usize => |v: usize| Value::Number(Number::U(v as u64)),
    i64 => |v: i64| if v >= 0 { Value::Number(Number::U(v as u64)) } else { Value::Number(Number::I(v)) },
    i32 => |v: i32| Value::from(i64::from(v)),
    f64 => |v| Value::Number(Number::F(v)),
    String => Value::String,
    &str => |v: &str| Value::String(v.to_owned()),
    Vec<Value> => Value::Array,
    Map => Value::Object,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_missing_keys_yields_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
        assert!(v["nope"]["deeper"].is_null());
    }

    #[test]
    fn string_comparisons_work_both_ways() {
        let v = Value::String("abc".into());
        assert!(v == "abc");
        assert!("abc" == v);
        assert!(v != "abd");
    }

    #[test]
    fn escaping_round_trips_through_display() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(v.to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn number_equality_crosses_representations() {
        assert_eq!(Number::U(5), Number::I(5));
        assert_eq!(Number::U(5), Number::F(5.0));
        assert_ne!(Number::U(5), Number::F(5.5));
    }
}
