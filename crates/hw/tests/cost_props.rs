//! Property tests on the analytic cost model and device specs.

use proptest::prelude::*;
use tpupoint_hw::{HostSpec, LinkSpec, OpWork, TpuChipSpec};

fn work_strategy() -> impl Strategy<Value = OpWork> {
    (0.0f64..1e13, 0.0f64..1e10, any::<bool>()).prop_map(|(flops, bytes, mxu)| OpWork {
        flops,
        hbm_bytes: bytes,
        uses_mxu: mxu,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wall_duration_is_monotone_in_flops(work in work_strategy(), extra in 1.0f64..1e12) {
        let core = TpuChipSpec::v2().chip_model();
        let more = OpWork { flops: work.flops + extra, ..work };
        prop_assert!(core.wall_duration(&more) >= core.wall_duration(&work));
    }

    #[test]
    fn wall_duration_is_monotone_in_bytes(work in work_strategy(), extra in 1.0f64..1e10) {
        let core = TpuChipSpec::v2().chip_model();
        let more = OpWork { hbm_bytes: work.hbm_bytes + extra, ..work };
        prop_assert!(core.wall_duration(&more) >= core.wall_duration(&work));
    }

    #[test]
    fn mxu_busy_never_exceeds_wall(work in work_strategy()) {
        for chip in [TpuChipSpec::v2(), TpuChipSpec::v3()] {
            let (wall, mxu) = chip.chip_model().op_duration(&work);
            prop_assert!(mxu <= wall, "{chip:?} {work:?}");
            if !work.uses_mxu {
                prop_assert!(mxu.is_zero());
            }
        }
    }

    #[test]
    fn v3_is_never_slower_than_v2(work in work_strategy()) {
        let v2 = TpuChipSpec::v2().chip_model();
        let v3 = TpuChipSpec::v3().chip_model();
        prop_assert!(v3.wall_duration(&work) <= v2.wall_duration(&work));
    }

    #[test]
    fn scaling_work_scales_duration_superlinearly_never(
        work in work_strategy(), factor in 1.0f64..16.0
    ) {
        // Roofline: duration(k*work) <= k * duration(work) + overhead slack.
        let core = TpuChipSpec::v2().chip_model();
        let one = core.wall_duration(&work).as_micros() as f64;
        let scaled = core.wall_duration(&work.scaled(factor)).as_micros() as f64;
        prop_assert!(scaled <= factor * one + 2.0, "{scaled} vs {factor} * {one}");
    }

    #[test]
    fn link_transfers_are_monotone_and_latency_floored(
        bytes in 0.0f64..1e10, extra in 1.0f64..1e9
    ) {
        for link in [LinkSpec::cloud_storage(), LinkSpec::infeed(), LinkSpec::outfeed()] {
            let d1 = link.transfer_duration(bytes);
            let d2 = link.transfer_duration(bytes + extra);
            prop_assert!(d2 >= d1);
            prop_assert!(d1.as_micros() as f64 >= link.latency_us.floor() - 1.0);
        }
    }

    #[test]
    fn host_parallelism_never_hurts(bytes in 1.0f64..1e10, threads in 1u32..63) {
        let host = HostSpec::skylake_n1();
        let fewer = host.decode_duration(bytes, threads);
        let more = host.decode_duration(bytes, threads + 1);
        prop_assert!(more <= fewer);
    }

    #[test]
    fn fixed_work_is_inverse_in_effective_threads(us in 1.0f64..1e7) {
        let host = HostSpec::skylake_n1();
        let one = host.fixed_work_duration(us, 1).as_micros() as f64;
        let four = host.fixed_work_duration(us, 4).as_micros() as f64;
        prop_assert!((one / four - 4.0).abs() < 0.05, "{one} vs {four}");
    }
}
