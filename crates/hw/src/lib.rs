//! # tpupoint-hw
//!
//! Hardware models for the simulated Cloud-TPU platform: TPU chip
//! specifications (TPUv2 and TPUv3, Section II of the TPUPoint paper), the
//! Compute Engine host, the storage and infeed links between them, and the
//! roofline-style analytic cost model that converts an operation's work
//! (FLOPs and bytes) into a simulated duration.
//!
//! None of Google's internal microarchitecture is public, so the models are
//! first-order: a matrix unit delivers a fraction of peak FLOPS, memory-bound
//! operations run at HBM bandwidth, and every dispatch pays a fixed overhead.
//! This is sufficient for TPUPoint, which only ever observes *profiles* (op
//! durations, idle time, MXU utilization), not cycle-accurate state.
//!
//! ```
//! use tpupoint_hw::{TpuChipSpec, OpWork, TpuGeneration};
//!
//! let v2 = TpuChipSpec::v2();
//! let v3 = TpuChipSpec::v3();
//! assert_eq!(v2.generation, TpuGeneration::V2);
//! let work = OpWork::mxu(2.0e9, 8.0e6); // 2 GFLOP matmul touching 8 MB
//! let core2 = v2.core_model();
//! let core3 = v3.core_model();
//! // The same op is faster on a v3 core (twice the MXUs).
//! assert!(core3.op_duration(&work).0 < core2.op_duration(&work).0);
//! ```

pub mod cost;
pub mod device;
pub mod host;
pub mod link;

pub use cost::{OpWork, TpuCoreModel};
pub use device::{TpuChipSpec, TpuGeneration};
pub use host::HostSpec;
pub use link::LinkSpec;
