//! Roofline-style analytic cost model for TPU operations.
//!
//! An operation is characterized by the work it performs ([`OpWork`]): FLOPs
//! executed, bytes moved through HBM, and whether the matrix units carry the
//! compute. The model charges
//!
//! `duration = overhead + max(compute_time, memory_time)`
//!
//! where compute runs at (efficiency-derated) MXU peak or at vector-unit
//! rate, and memory runs at HBM bandwidth. The MXU-busy portion of the
//! duration is reported separately because TPUPoint-Profiler surfaces MXU
//! utilization alongside each profile (Section III-A).

use serde::{Deserialize, Serialize};
use tpupoint_simcore::SimDuration;

/// The work performed by one operation instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpWork {
    /// Floating-point operations executed.
    pub flops: f64,
    /// Bytes read from plus written to HBM.
    pub hbm_bytes: f64,
    /// True if the compute runs on the matrix units.
    pub uses_mxu: bool,
}

impl OpWork {
    /// Work for a matrix-unit operation (MatMul, convolution, fusions
    /// containing them).
    pub fn mxu(flops: f64, hbm_bytes: f64) -> Self {
        OpWork {
            flops,
            hbm_bytes,
            uses_mxu: true,
        }
    }

    /// Work for a vector/scalar operation (element-wise math, reductions).
    pub fn vector(flops: f64, hbm_bytes: f64) -> Self {
        OpWork {
            flops,
            hbm_bytes,
            uses_mxu: false,
        }
    }

    /// Work for a pure data-movement operation (reshape, transpose, copy):
    /// no arithmetic, only HBM traffic.
    pub fn memory(hbm_bytes: f64) -> Self {
        OpWork {
            flops: 0.0,
            hbm_bytes,
            uses_mxu: false,
        }
    }

    /// Scales both FLOPs and bytes by `factor`, e.g. for batch-size changes.
    pub fn scaled(self, factor: f64) -> Self {
        OpWork {
            flops: self.flops * factor,
            hbm_bytes: self.hbm_bytes * factor,
            uses_mxu: self.uses_mxu,
        }
    }
}

/// Analytic timing model of a single TPU core.
///
/// Built from a chip spec via [`crate::TpuChipSpec::core_model`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpuCoreModel {
    /// Peak MXU FLOPS of the core.
    pub peak_flops: f64,
    /// Achievable fraction of peak on real workloads.
    pub mxu_efficiency: f64,
    /// Peak FLOPS of the scalar/vector units.
    pub vector_flops: f64,
    /// HBM bandwidth in bytes per second.
    pub hbm_bytes_per_sec: f64,
    /// Fixed dispatch overhead per operation, microseconds.
    pub op_overhead_us: f64,
}

impl TpuCoreModel {
    /// Duration of one operation and the MXU-busy share of it.
    ///
    /// Returns `(wall_duration, mxu_busy_duration)`. The MXU-busy share is
    /// the op's useful arithmetic at full peak throughput — dividing the
    /// accumulated MXU time by wall time yields FLOP utilization, the
    /// quantity the Cloud TPU profiler reports.
    pub fn op_duration(&self, work: &OpWork) -> (SimDuration, SimDuration) {
        let compute_secs = if work.flops <= 0.0 {
            0.0
        } else if work.uses_mxu {
            work.flops / (self.peak_flops * self.mxu_efficiency)
        } else {
            work.flops / self.vector_flops
        };
        let memory_secs = if work.hbm_bytes <= 0.0 {
            0.0
        } else {
            work.hbm_bytes / self.hbm_bytes_per_sec
        };
        let busy_secs = compute_secs.max(memory_secs);
        let total = SimDuration::from_secs_f64(busy_secs + self.op_overhead_us / 1e6);
        // MXU-busy time is *useful* work at full peak: achieved FLOPs
        // divided by peak FLOPS. Utilization figures (Figure 11) divide
        // this by wall time, giving true FLOP utilization; the efficiency
        // derating only slows the wall clock.
        let mxu = if work.uses_mxu {
            SimDuration::from_secs_f64(work.flops.max(0.0) / self.peak_flops)
        } else {
            SimDuration::ZERO
        };
        (total, mxu.min(total))
    }

    /// Convenience: wall duration only.
    pub fn wall_duration(&self, work: &OpWork) -> SimDuration {
        self.op_duration(work).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::TpuChipSpec;

    fn v2_core() -> TpuCoreModel {
        TpuChipSpec::v2().core_model()
    }

    #[test]
    fn compute_bound_matmul_scales_with_flops() {
        let core = v2_core();
        let small = core.wall_duration(&OpWork::mxu(1.0e9, 1.0e3));
        let big = core.wall_duration(&OpWork::mxu(10.0e9, 1.0e3));
        assert!(big > small);
        // Ratio close to 10 once overhead is subtracted.
        let overhead = SimDuration::from_secs_f64(core.op_overhead_us / 1e6);
        let s = (small - overhead).as_micros() as f64;
        let b = (big - overhead).as_micros() as f64;
        assert!((b / s - 10.0).abs() < 0.2, "ratio was {}", b / s);
    }

    #[test]
    fn memory_bound_op_charges_bandwidth() {
        let core = v2_core();
        // 700 MB at 700 GB/s = 1 ms (plus overhead).
        let (dur, mxu) = core.op_duration(&OpWork::memory(700.0e6));
        assert!((dur.as_millis_f64() - 1.0).abs() < 0.01, "dur {dur}");
        assert_eq!(mxu, SimDuration::ZERO);
    }

    #[test]
    fn roofline_takes_the_max_not_the_sum() {
        let core = v2_core();
        // Compute time: 1e10 / (22.5e12 * .55) = 0.808ms;
        // memory time:  7e8 / 7e11 = 1 ms → memory wins.
        let w = OpWork::mxu(1.0e10, 700.0e6);
        let (dur, mxu) = core.op_duration(&w);
        assert!((dur.as_millis_f64() - 1.0).abs() < 0.02, "dur {dur}");
        // MXU busy is useful FLOPs at full peak: 1e10 / 22.5e12 = 0.444ms.
        assert!(mxu < dur);
        assert!((mxu.as_millis_f64() - 0.444).abs() < 0.02, "mxu {mxu}");
    }

    #[test]
    fn vector_ops_do_not_report_mxu_time() {
        let core = v2_core();
        let (dur, mxu) = core.op_duration(&OpWork::vector(1.0e9, 1.0e6));
        assert!(dur > SimDuration::ZERO);
        assert_eq!(mxu, SimDuration::ZERO);
    }

    #[test]
    fn v3_core_is_twice_as_fast_on_compute_bound_mxu_work() {
        let v2 = TpuChipSpec::v2().core_model();
        let v3 = TpuChipSpec::v3().core_model();
        let w = OpWork::mxu(50.0e9, 1.0e3); // strongly compute bound
        let overhead = SimDuration::from_secs_f64(v2.op_overhead_us / 1e6);
        let d2 = (v2.wall_duration(&w) - overhead).as_micros() as f64;
        let d3 = (v3.wall_duration(&w) - overhead).as_micros() as f64;
        assert!((d2 / d3 - 2.0).abs() < 0.05, "speedup {}", d2 / d3);
    }

    #[test]
    fn zero_work_costs_only_overhead() {
        let core = v2_core();
        let (dur, mxu) = core.op_duration(&OpWork::vector(0.0, 0.0));
        assert_eq!(dur, SimDuration::from_secs_f64(core.op_overhead_us / 1e6));
        assert_eq!(mxu, SimDuration::ZERO);
    }

    #[test]
    fn scaled_work_scales_both_axes() {
        let w = OpWork::mxu(2.0, 4.0).scaled(3.0);
        assert_eq!(w.flops, 6.0);
        assert_eq!(w.hbm_bytes, 12.0);
        assert!(w.uses_mxu);
    }

    #[test]
    fn mxu_busy_never_exceeds_wall_duration() {
        let core = v2_core();
        for (flops, bytes) in [(1e6, 1e9), (1e12, 1e3), (1e9, 1e9), (0.0, 0.0)] {
            let (dur, mxu) = core.op_duration(&OpWork::mxu(flops, bytes));
            assert!(mxu <= dur, "flops={flops} bytes={bytes}");
        }
    }
}
