//! Data links: Cloud Storage to host, and host to TPU (infeed/outfeed).
//!
//! In the Cloud TPU architecture (Section II-B) the Storage Bucket acts as
//! persistent memory and the TPU as a coprocessor; both hang off the host
//! over network/PCIe-class links whose bandwidth bounds how fast batches can
//! be staged and fed.

use serde::{Deserialize, Serialize};
use tpupoint_simcore::SimDuration;

/// A point-to-point link with fixed bandwidth and per-transfer latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Sustained bandwidth, GB/s.
    pub gbps: f64,
    /// Fixed per-transfer latency, microseconds (RPC setup, DMA descriptors).
    pub latency_us: f64,
}

impl LinkSpec {
    /// Cloud Storage → host: a fast regional GCS connection.
    pub fn cloud_storage() -> Self {
        LinkSpec {
            gbps: 1.2,
            latency_us: 400.0,
        }
    }

    /// Host → TPU infeed over the accelerator interconnect.
    pub fn infeed() -> Self {
        LinkSpec {
            gbps: 8.0,
            latency_us: 30.0,
        }
    }

    /// TPU → host outfeed. Results (losses, summaries) are small, so the
    /// effective bandwidth matters less than the latency.
    pub fn outfeed() -> Self {
        LinkSpec {
            gbps: 8.0,
            latency_us: 30.0,
        }
    }

    /// Time to move `bytes` across the link.
    pub fn transfer_duration(&self, bytes: f64) -> SimDuration {
        let secs = self.latency_us / 1e6 + bytes.max(0.0) / (self.gbps * 1e9);
        SimDuration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_latency() {
        let link = LinkSpec {
            gbps: 1.0,
            latency_us: 100.0,
        };
        // 1 MB at 1 GB/s = 1 ms, plus 100 us latency.
        let d = link.transfer_duration(1.0e6);
        assert_eq!(d.as_micros(), 1_100);
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let link = LinkSpec::infeed();
        assert_eq!(
            link.transfer_duration(0.0),
            SimDuration::from_secs_f64(link.latency_us / 1e6)
        );
    }

    #[test]
    fn negative_bytes_clamp_to_zero() {
        let link = LinkSpec::infeed();
        assert_eq!(link.transfer_duration(-5.0), link.transfer_duration(0.0));
    }

    #[test]
    fn infeed_is_faster_than_storage() {
        let big = 64.0e6;
        assert!(
            LinkSpec::infeed().transfer_duration(big)
                < LinkSpec::cloud_storage().transfer_duration(big)
        );
    }
}
