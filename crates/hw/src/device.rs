//! TPU chip specifications.
//!
//! Numbers come from Section II of the paper and Google's public Cloud TPU
//! documentation: a TPUv2 chip has two cores, each with one 128×128 MXU and
//! 8 GiB of HBM, delivering a combined 45 TFLOPS; a TPUv3 chip doubles the
//! MXUs per core and the HBM (32 GiB, 90 TFLOPS) while holding power
//! constant.

use crate::cost::TpuCoreModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cloud TPU generation offered through Google Cloud Platform / TFRC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TpuGeneration {
    /// Second-generation Cloud TPU (first publicly available).
    V2,
    /// Third-generation Cloud TPU.
    V3,
}

impl fmt::Display for TpuGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TpuGeneration::V2 => write!(f, "TPUv2"),
            TpuGeneration::V3 => write!(f, "TPUv3"),
        }
    }
}

/// Specification of a single Cloud TPU chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpuChipSpec {
    /// Generation this spec describes.
    pub generation: TpuGeneration,
    /// Independent cores per chip.
    pub cores: u8,
    /// Matrix units per core.
    pub mxus_per_core: u8,
    /// Chip-wide peak throughput in TFLOPS (bfloat16 multiply-accumulate).
    pub peak_tflops: f64,
    /// Total high-bandwidth memory per chip, GiB.
    pub hbm_gib: f64,
    /// HBM bandwidth per core, GB/s.
    pub hbm_gbps_per_core: f64,
    /// Peak throughput of the scalar/vector units per core, GFLOPS. Used for
    /// element-wise ops that bypass the MXUs.
    pub vector_gflops_per_core: f64,
    /// Fraction of peak the MXUs achieve on well-tiled work; real systolic
    /// arrays lose cycles to pipeline fill/drain and padding.
    pub mxu_efficiency: f64,
    /// Fixed per-operation dispatch overhead, microseconds. Covers program
    /// launch, synchronization flags, and DMA descriptor setup.
    pub op_overhead_us: f64,
}

impl TpuChipSpec {
    /// The TPUv2 chip: 2 cores × 1 MXU, 45 TFLOPS, 16 GiB HBM
    /// (8 GiB per core), 700 GB/s HBM per core.
    pub fn v2() -> Self {
        TpuChipSpec {
            generation: TpuGeneration::V2,
            cores: 2,
            mxus_per_core: 1,
            peak_tflops: 45.0,
            hbm_gib: 16.0,
            hbm_gbps_per_core: 700.0,
            vector_gflops_per_core: 800.0,
            mxu_efficiency: 0.55,
            op_overhead_us: 1.5,
        }
    }

    /// The TPUv3 chip: 2 cores × 2 MXUs, 90 TFLOPS, 32 GiB HBM, faster HBM.
    pub fn v3() -> Self {
        TpuChipSpec {
            generation: TpuGeneration::V3,
            cores: 2,
            mxus_per_core: 2,
            peak_tflops: 90.0,
            hbm_gib: 32.0,
            hbm_gbps_per_core: 900.0,
            vector_gflops_per_core: 900.0,
            mxu_efficiency: 0.55,
            op_overhead_us: 1.5,
        }
    }

    /// Builds the spec for a generation.
    pub fn for_generation(generation: TpuGeneration) -> Self {
        match generation {
            TpuGeneration::V2 => Self::v2(),
            TpuGeneration::V3 => Self::v3(),
        }
    }

    /// Peak FLOPS of a single core (chip peak split evenly across cores).
    pub fn peak_flops_per_core(&self) -> f64 {
        self.peak_tflops * 1e12 / self.cores as f64
    }

    /// Total MXUs on the chip.
    pub fn total_mxus(&self) -> u8 {
        self.cores * self.mxus_per_core
    }

    /// HBM capacity per core in bytes.
    pub fn hbm_bytes_per_core(&self) -> f64 {
        self.hbm_gib * 1024.0 * 1024.0 * 1024.0 / self.cores as f64
    }

    /// Builds the per-core analytic cost model for this chip.
    pub fn core_model(&self) -> TpuCoreModel {
        TpuCoreModel {
            peak_flops: self.peak_flops_per_core(),
            mxu_efficiency: self.mxu_efficiency,
            vector_flops: self.vector_gflops_per_core * 1e9,
            hbm_bytes_per_sec: self.hbm_gbps_per_core * 1e9,
            op_overhead_us: self.op_overhead_us,
        }
    }

    /// Builds a chip-level aggregate cost model: all cores working on one
    /// (data-parallel) batch. The runtime uses this to execute a whole
    /// batch's graph on "the TPU" without modeling per-core sharding.
    pub fn chip_model(&self) -> TpuCoreModel {
        TpuCoreModel {
            peak_flops: self.peak_tflops * 1e12,
            mxu_efficiency: self.mxu_efficiency,
            vector_flops: self.vector_gflops_per_core * 1e9 * self.cores as f64,
            hbm_bytes_per_sec: self.hbm_gbps_per_core * 1e9 * self.cores as f64,
            op_overhead_us: self.op_overhead_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v3_doubles_v2_headline_numbers() {
        let v2 = TpuChipSpec::v2();
        let v3 = TpuChipSpec::v3();
        assert_eq!(v3.peak_tflops, 2.0 * v2.peak_tflops);
        assert_eq!(v3.hbm_gib, 2.0 * v2.hbm_gib);
        assert_eq!(v3.total_mxus(), 2 * v2.total_mxus());
        assert_eq!(v2.cores, v3.cores);
    }

    #[test]
    fn per_core_numbers_divide_chip_numbers() {
        let v2 = TpuChipSpec::v2();
        assert_eq!(v2.peak_flops_per_core(), 22.5e12);
        assert_eq!(v2.hbm_bytes_per_core(), 8.0 * 1024.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn for_generation_round_trips() {
        assert_eq!(
            TpuChipSpec::for_generation(TpuGeneration::V2),
            TpuChipSpec::v2()
        );
        assert_eq!(
            TpuChipSpec::for_generation(TpuGeneration::V3),
            TpuChipSpec::v3()
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(TpuGeneration::V2.to_string(), "TPUv2");
        assert_eq!(TpuGeneration::V3.to_string(), "TPUv3");
    }
}
