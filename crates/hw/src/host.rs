//! The Compute Engine host that drives a Cloud TPU.
//!
//! The paper's experimental platform (Section V) is a 16-core, 2-way-SMT
//! Intel Skylake VM with 104 GB of memory and 250 GB of persistent disk.
//! The host runs the TensorFlow client/master/worker processes and, most
//! importantly for TPU utilization, the input pipeline: reading records from
//! Cloud Storage, decoding/augmenting them, batching, and pushing batches
//! through the infeed.

use serde::{Deserialize, Serialize};
use tpupoint_simcore::SimDuration;

/// Specification of the host VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Physical cores.
    pub cores: u32,
    /// SMT ways per core.
    pub smt: u32,
    /// Main memory, GiB.
    pub mem_gib: f64,
    /// Per-thread record-decode throughput for JPEG-like payloads, MB/s.
    /// Text workloads decode faster; the workload descriptors scale this.
    pub decode_mbps_per_thread: f64,
    /// Throughput of miscellaneous per-batch host work (casts, padding,
    /// masking) in MB/s per thread.
    pub transform_mbps_per_thread: f64,
}

impl HostSpec {
    /// The paper's n1-standard-style Skylake host.
    pub fn skylake_n1() -> Self {
        HostSpec {
            cores: 16,
            smt: 2,
            mem_gib: 104.0,
            decode_mbps_per_thread: 180.0,
            transform_mbps_per_thread: 900.0,
        }
    }

    /// Total hardware threads available for pipeline work.
    pub fn hardware_threads(&self) -> u32 {
        self.cores * self.smt
    }

    /// Time for `threads` parallel workers to decode `bytes` of input.
    ///
    /// Parallel efficiency falls off once threads exceed physical cores
    /// (SMT threads contribute ~35% of a core on decode-type work).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn decode_duration(&self, bytes: f64, threads: u32) -> SimDuration {
        self.parallel_duration(bytes, threads, self.decode_mbps_per_thread)
    }

    /// Time for `threads` parallel workers to run lightweight per-batch
    /// transforms (cast, pad, mask) over `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn transform_duration(&self, bytes: f64, threads: u32) -> SimDuration {
        self.parallel_duration(bytes, threads, self.transform_mbps_per_thread)
    }

    /// Time for `threads` workers to complete a fixed amount of per-batch
    /// pipeline work measured as single-thread microseconds (record
    /// parsing, batching, padding — cost not proportional to raw bytes).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn fixed_work_duration(&self, single_thread_us: f64, threads: u32) -> SimDuration {
        assert!(threads > 0, "at least one worker thread is required");
        let effective = self.effective_threads(threads);
        SimDuration::from_secs_f64(single_thread_us.max(0.0) / 1e6 / effective)
    }

    fn effective_threads(&self, threads: u32) -> f64 {
        let full = threads.min(self.cores) as f64;
        let smt_extra = threads
            .saturating_sub(self.cores)
            .min(self.cores * (self.smt - 1)) as f64;
        full + 0.35 * smt_extra
    }

    fn parallel_duration(&self, bytes: f64, threads: u32, mbps_per_thread: f64) -> SimDuration {
        assert!(threads > 0, "at least one worker thread is required");
        let rate = mbps_per_thread * 1e6 * self.effective_threads(threads);
        SimDuration::from_secs_f64(bytes / rate)
    }
}

impl Default for HostSpec {
    fn default() -> Self {
        Self::skylake_n1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_host_shape() {
        let h = HostSpec::skylake_n1();
        assert_eq!(h.cores, 16);
        assert_eq!(h.hardware_threads(), 32);
    }

    #[test]
    fn more_threads_decode_faster_up_to_cores() {
        let h = HostSpec::skylake_n1();
        let one = h.decode_duration(1.0e9, 1);
        let eight = h.decode_duration(1.0e9, 8);
        let sixteen = h.decode_duration(1.0e9, 16);
        assert!(eight < one);
        assert!(sixteen < eight);
        // Linear within physical cores.
        let ratio = one.as_micros() as f64 / sixteen.as_micros() as f64;
        assert!((ratio - 16.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn smt_threads_help_sublinearly() {
        let h = HostSpec::skylake_n1();
        let t16 = h.decode_duration(1.0e9, 16).as_micros() as f64;
        let t32 = h.decode_duration(1.0e9, 32).as_micros() as f64;
        let speedup = t16 / t32;
        assert!(speedup > 1.2 && speedup < 1.5, "smt speedup {speedup}");
    }

    #[test]
    fn oversubscription_beyond_smt_adds_nothing() {
        let h = HostSpec::skylake_n1();
        assert_eq!(h.decode_duration(1.0e9, 32), h.decode_duration(1.0e9, 64));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_threads_rejected() {
        let h = HostSpec::skylake_n1();
        let _ = h.decode_duration(1.0, 0);
    }

    #[test]
    fn fixed_work_scales_with_threads() {
        let h = HostSpec::skylake_n1();
        let one = h.fixed_work_duration(16_000.0, 1);
        let sixteen = h.fixed_work_duration(16_000.0, 16);
        assert_eq!(one.as_micros(), 16_000);
        assert_eq!(sixteen.as_micros(), 1_000);
        assert_eq!(h.fixed_work_duration(0.0, 4), SimDuration::ZERO);
    }

    #[test]
    fn transform_is_faster_than_decode() {
        let h = HostSpec::skylake_n1();
        assert!(h.transform_duration(1.0e8, 4) < h.decode_duration(1.0e8, 4));
    }
}
