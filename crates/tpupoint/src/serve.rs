//! Serve mode: the long-running daemon lane of the toolchain.
//!
//! [`TpuPoint::profile`] is a batch affair — the simulated job completes as
//! fast as the host allows and metrics are inspected after the fact. The
//! paper's profiler instead runs *alongside* a live training job;
//! [`TpuPoint::serve`] reproduces that shape:
//!
//! * the job runs on a dedicated **wall-clock recording thread**, paced in
//!   real time per training step ([`TpuPointBuilder::serve_pace_us`]) and —
//!   unlike batch mode — actually sleeping the recorded retry-backoff
//!   schedule ([`TpuPointBuilder::serve_real_backoff`]);
//! * a dependency-free HTTP server ([`tpupoint_obs::MetricsServer`])
//!   exposes `GET /metrics` (Prometheus text exposition), `GET /healthz`
//!   (degradation-aware), `GET /status` (live JSON: current step, online
//!   OLS phase, window counts, spill depth), and `POST /quit`;
//! * graceful shutdown — `POST /quit` or, with
//!   [`TpuPointBuilder::serve_sigint`], Ctrl-C — cancels the pacing so the
//!   job rushes the remaining steps at batch speed, drains the seal
//!   pipeline's barrier, seals the `.part` record files, and flushes one
//!   final scrape to `<output_dir>/metrics.prom`.
//!
//! Because pacing and backoff sleeps are the *only* wall-clock additions,
//! the recorded JSONL profile of a served run is byte-identical to a batch
//! [`TpuPoint::profile`] of the same configuration and seed.

use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use std::sync::Mutex;

use tpupoint_analyzer::{StreamingAnalyzer, StreamingConfig, STREAM_CADENCE};
use tpupoint_obs::{to_prometheus_labeled, Health, MetricsServer, ServeHooks};
use tpupoint_profiler::{PipelineConfig, ProfilerSink};
use tpupoint_runtime::{JobConfig, LiveSink, LiveStatus, TrainingJob};

use crate::facade::{ProfiledRun, TpuPoint, TpuPointBuilder};

/// Cooperative SIGINT latch. Installed at most once per process; the
/// handler only flips an atomic, and serve's wait loop translates it into
/// the same graceful-shutdown path as `POST /quit`.
pub(crate) mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Once;

    static HIT: AtomicBool = AtomicBool::new(false);
    static INSTALL: Once = Once::new();

    #[cfg(unix)]
    pub fn install() {
        extern "C" fn on_sigint(_signum: i32) {
            HIT.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        INSTALL.call_once(|| {
            const SIGINT: i32 = 2;
            let handler: extern "C" fn(i32) = on_sigint;
            unsafe {
                signal(SIGINT, handler as usize);
            }
        });
    }

    #[cfg(not(unix))]
    pub fn install() {
        INSTALL.call_once(|| {});
    }

    pub fn hit() -> bool {
        HIT.load(Ordering::SeqCst)
    }
}

/// Creates the profiler/store series in the global registry before the
/// job starts, so the very first `/metrics` scrape already exposes the
/// full schema (zero-valued) instead of series popping into existence as
/// the run proceeds.
pub(crate) fn preregister_series() {
    preregister_series_in(tpupoint_obs::metrics());
    // The HTTP plane is process-wide, so its counter belongs only to the
    // global registry — not to fleet mode's per-job registries.
    tpupoint_obs::metrics().counter("obs.http_requests");
}

/// Creates the per-job profiler/analyzer series in `metrics`; fleet mode
/// calls this on each job's own registry at admission so the first scrape
/// already shows the job's full schema at zero.
pub(crate) fn preregister_series_in(metrics: &tpupoint_obs::Metrics) {
    for counter in [
        "profiler.store_errors",
        "profiler.store_retries",
        "profiler.records_spilled",
        "profiler.records_shed",
        "profiler.windows_sealed",
        "profiler.windows_dropped",
        "profiler.events_recorded",
        "profiler.events_lost",
        "profiler.seal_backpressure_waits",
    ] {
        metrics.counter(counter);
    }
    for gauge in [
        "profiler.store_spill_depth",
        "profiler.seal_queue_depth",
        "profiler.overhead_ratio",
        // The streaming analyzer always runs in serve mode, so its
        // scalar gauges are part of the schema from scrape #1. Per-phase
        // occupancy gauges appear with the first update (the phase count
        // is not known up front), and `analyzer.last_transition_step`
        // only once a transition exists.
        "analyzer.phase_stability",
        "analyzer.phase_count",
        "analyzer.stable_windows",
    ] {
        metrics.gauge(gauge);
    }
    for histogram in ["profiler.store_backoff_us", "profiler.seal_latency_us"] {
        metrics.histogram(histogram);
    }
}

/// A running serve-mode session: the wall-clock recording thread plus the
/// HTTP endpoint. Obtain one from [`TpuPoint::serve`]; call
/// [`ServeSession::wait`] to block until the job (and its graceful
/// shutdown) completes.
#[derive(Debug)]
pub struct ServeSession {
    server: MetricsServer,
    job: Option<JoinHandle<io::Result<ProfiledRun>>>,
    quit: Arc<AtomicBool>,
    status: Arc<LiveStatus>,
    output_dir: Option<PathBuf>,
    workload: String,
    tp: TpuPoint,
    sigint: bool,
    stop_on_stable: Option<u64>,
    baseline_wall: Option<tpupoint_simcore::SimDuration>,
}

impl ServeSession {
    /// The HTTP endpoint's actually-bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Live progress shared with the recording thread.
    pub fn status(&self) -> &Arc<LiveStatus> {
        &self.status
    }

    /// Requests graceful shutdown, exactly like `POST /quit`: pacing (and
    /// backoff sleeping does not replay — the schedule is already
    /// recorded) is cancelled and the job rushes to completion at batch
    /// speed, sealing everything it would have sealed.
    pub fn request_quit(&self) {
        self.quit.store(true, Ordering::SeqCst);
    }

    /// Blocks until the job finishes (however it was asked to), then
    /// flushes the final scrape, shuts the HTTP server down, and returns
    /// the completed run.
    ///
    /// # Errors
    ///
    /// Returns the recording thread's store error, if any.
    pub fn wait(mut self) -> io::Result<ProfiledRun> {
        let job = self.job.take().expect("wait consumes the session");
        while !job.is_finished() {
            if self.sigint && sigint::hit() {
                self.quit.store(true, Ordering::SeqCst);
            }
            // SeqPoint-style early stop: once the streaming phase
            // assignments have been stable for K consecutive updates,
            // the remaining paced steps add no new phase information —
            // quit gracefully (the job rushes its tail at batch speed,
            // so the recorded profile stays complete and byte-identical
            // to batch).
            if let Some(k) = self.stop_on_stable {
                if self.status.stream_stable_for() >= k {
                    self.quit.store(true, Ordering::SeqCst);
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let run = job
            .join()
            .map_err(|_| io::Error::other("serve recording thread panicked"))??;
        let measured = self.baseline_wall.map(|baseline| {
            run.report.session_wall.as_micros() as f64 / baseline.as_micros().max(1) as f64
        });
        self.tp.publish_run_gauges(&run.profile, measured);
        self.status.set_done();
        if let Some(dir) = &self.output_dir {
            let scrape = to_prometheus_labeled(
                &tpupoint_obs::metrics().snapshot(),
                &[("workload", &self.workload)],
            );
            std::fs::create_dir_all(dir)?;
            std::fs::write(dir.join("metrics.prom"), scrape)?;
        }
        Ok(run)
    }
}

impl TpuPoint {
    /// Runs `config` as a long-running serve-mode job; see the module
    /// docs. Returns as soon as the recording thread and HTTP endpoint
    /// are up — use the returned [`ServeSession`] to scrape, quit, and
    /// [`ServeSession::wait`] for the profile.
    ///
    /// # Errors
    ///
    /// Returns an error if the listen address cannot be bound, the
    /// recording thread cannot be spawned, or the analyzer-mode record
    /// store cannot be created.
    pub fn serve(&self, mut config: JobConfig) -> io::Result<ServeSession> {
        let options: &TpuPointBuilder = &self.options;
        let listen = options
            .serve_listen
            .clone()
            .unwrap_or_else(|| "127.0.0.1:0".to_owned());
        preregister_series();
        if options.serve_sigint {
            sigint::install();
        }

        // The paired-baseline twin runs the clean config at batch speed
        // before the paced job starts; both walls are simulated time, so
        // serve-mode pacing never skews the measured ratio.
        let baseline_wall = if options.paired_baseline {
            let _twin_span = tpupoint_obs::span!("tpupoint.paired_baseline");
            let twin = TrainingJob::new(config.clone());
            let report = twin.run(&mut tpupoint_simcore::trace::NullSink);
            Some(report.session_wall)
        } else {
            None
        };
        config.host_overhead_frac += options.profiling_overhead_frac;
        let job = TrainingJob::new(config);
        let workload = job.config().model.clone();
        let mut sink = if options.analyzer {
            if let Some(dir) = &options.output_dir {
                // Serve always takes the pipelined store lane: sealing runs
                // off the recording thread's critical path, exactly like
                // the paper's background recording thread, and the
                // seal-pipeline series are live for scrapers.
                let store = self.build_store(&dir.join("records"), options.serve_real_backoff)?;
                ProfilerSink::with_pipelined_store(
                    job.catalog().clone(),
                    options.profiler_options,
                    store,
                    PipelineConfig::default(),
                )
            } else {
                ProfilerSink::new(job.catalog().clone(), options.profiler_options)
            }
        } else {
            ProfilerSink::new(job.catalog().clone(), options.profiler_options)
        };
        sink.set_source(&job.config().model, &job.config().dataset.name);

        let status = LiveStatus::new();
        let quit = Arc::new(AtomicBool::new(false));

        // The streaming analyzer rides the profiler's seal-observer
        // hook: completed step records arrive on the recording thread
        // (at seals and every STREAM_CADENCE step marks), the phase
        // structure re-clusters incrementally, and the fresh state is
        // published to the registry gauges and the shared LiveStatus.
        // The observer only reads records, so the sealed JSONL output
        // stays byte-identical to a batch run.
        let streaming = Arc::new(Mutex::new(StreamingAnalyzer::new(
            StreamingConfig::default(),
        )));
        let n_ops = job.catalog().len();
        let observer_analyzer = Arc::clone(&streaming);
        let observer_status = Arc::clone(&status);
        sink.set_seal_observer(
            Box::new(move |records| {
                let mut analyzer = observer_analyzer.lock().expect("streaming lock");
                analyzer.observe_seal(records, n_ops);
                let metrics = tpupoint_obs::metrics();
                metrics
                    .gauge("analyzer.phase_stability")
                    .set(analyzer.stability());
                metrics
                    .gauge("analyzer.phase_count")
                    .set(analyzer.phase_count() as f64);
                metrics
                    .gauge("analyzer.stable_windows")
                    .set(analyzer.stable_windows() as f64);
                let report = analyzer.report();
                if let Some(step) = report.last_transition_step {
                    metrics
                        .gauge("analyzer.last_transition_step")
                        .set(step as f64);
                }
                for phase in &report.phases {
                    metrics
                        .gauge(&format!("analyzer.phase_occupancy.{}", phase.id))
                        .set(phase.occupancy as f64);
                }
                observer_status
                    .set_stream_state(analyzer.phase_count() as u64, analyzer.stable_windows());
            }),
            STREAM_CADENCE as u64,
        );
        let mut live = LiveSink::new(
            sink,
            Arc::clone(&status),
            Arc::clone(&quit),
            Duration::from_micros(options.serve_pace_us),
            options.ols_threshold,
        );
        let recorder = std::thread::Builder::new()
            .name("tpupoint-recorder".to_owned())
            .spawn(move || {
                let report = job.run(&mut live);
                let profile = live.into_inner().finish();
                Ok(ProfiledRun { report, profile })
            })?;

        let hook_workload = workload.clone();
        let hook_status = Arc::clone(&status);
        let hook_phases = Arc::clone(&streaming);
        let hook_quit = Arc::clone(&quit);
        let server = MetricsServer::bind(
            &listen,
            ServeHooks {
                metrics: Box::new(move || {
                    to_prometheus_labeled(
                        &tpupoint_obs::metrics().snapshot(),
                        &[("workload", &hook_workload)],
                    )
                }),
                health: Box::new(|| Health::from_snapshot(&tpupoint_obs::metrics().snapshot())),
                status: Box::new(move || {
                    let snapshot = tpupoint_obs::metrics().snapshot();
                    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
                    let gauge =
                        |name: &str| snapshot.gauges.get(name).copied().unwrap_or(0.0) as u64;
                    format!(
                        concat!(
                            "{{\"step\": {}, \"ols_phase\": {}, \"checkpoints\": {}, ",
                            "\"windows_sealed\": {}, \"windows_dropped\": {}, ",
                            "\"spill_depth\": {}, \"seal_queue_depth\": {}, ",
                            "\"stream_phases\": {}, \"stream_stable_for\": {}, ",
                            "\"done\": {}}}\n"
                        ),
                        hook_status.current_step(),
                        hook_status.ols_phase(),
                        hook_status.checkpoints(),
                        counter("profiler.windows_sealed"),
                        counter("profiler.windows_dropped"),
                        gauge("profiler.store_spill_depth"),
                        gauge("profiler.seal_queue_depth"),
                        hook_status.stream_phases(),
                        hook_status.stream_stable_for(),
                        hook_status.is_done(),
                    )
                }),
                phases: Box::new(move || {
                    hook_phases
                        .lock()
                        .expect("streaming lock")
                        .report()
                        .to_json()
                }),
                quit: Box::new(move || hook_quit.store(true, Ordering::SeqCst)),
                route: None,
            },
        )?;

        Ok(ServeSession {
            server,
            job: Some(recorder),
            quit,
            status,
            output_dir: options.output_dir.clone(),
            workload,
            tp: self.clone(),
            sigint: options.serve_sigint,
            stop_on_stable: options.stop_on_stable,
            baseline_wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preregistration_exposes_the_full_schema_at_zero() {
        preregister_series();
        let snapshot = tpupoint_obs::metrics().snapshot();
        assert!(snapshot.counters.contains_key("profiler.store_errors"));
        assert!(snapshot.histograms.contains_key("profiler.seal_latency_us"));
        assert!(snapshot.gauges.contains_key("profiler.store_spill_depth"));
    }

    #[test]
    fn serve_runs_a_job_and_answers_scrapes() {
        use std::io::{Read, Write};

        let dir = std::env::temp_dir().join(format!("tpupoint-serve-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tp = TpuPoint::builder()
            .analyzer(true)
            .output_dir(&dir)
            .serve("127.0.0.1:0")
            .serve_pace_us(200)
            .build();
        let session = tp.serve(JobConfig::demo()).expect("serve starts");
        let addr = session.addr();
        let mut stream = std::net::TcpStream::connect(addr).expect("scrape connects");
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.contains("tpupoint_profiler_store_errors"),
            "{response}"
        );
        session.request_quit();
        let run = session.wait().expect("run completes");
        assert!(run.report.steps_completed > 0);
        assert!(dir.join("metrics.prom").exists(), "final scrape flushed");
        assert!(dir.join("records/steps.jsonl").exists(), "records sealed");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
