//! Fleet mode: many concurrent serve-style jobs behind one scrape plane.
//!
//! [`TpuPoint::serve`] runs a single job; the paper's profiler is a cloud
//! *service* — many tenants' training jobs run at once while TPUPoint
//! characterizes each one live. [`TpuPoint::serve_fleet`] reproduces that
//! multi-tenant shape on top of the runtime's
//! [`Fleet`](tpupoint_runtime::Fleet) orchestrator:
//!
//! * **One scrape plane, decoupled from the jobs.** A single
//!   [`MetricsServer`] serves the whole fleet. `GET /metrics` renders
//!   every job's *published* [`MetricsSnapshot`] as
//!   `{job,tenant,workload}`-labeled Prometheus series, plus the pooled
//!   process-wide series (unlabeled) and a merged fleet aggregate under
//!   `job="fleet"` — one `HELP`/`TYPE` header per family across all of
//!   them. Jobs publish into per-job snapshot slots at seal points (and
//!   a ~200 ms cadence publisher refreshes between seals), so a scrape
//!   never takes a job's registry or streaming-analyzer lock: one
//!   wedged tenant cannot stall `/metrics`, `/healthz`, or `/phases`
//!   for its neighbours.
//! * **A fleet memory budget.** `FleetLimits::memory_budget_bytes`
//!   (CLI: `--fleet-memory-mib`) sheds admissions with 429 once one
//!   more job would overrun the budget, sizes each admitted job's
//!   seal-queue high-water and spill cap from its share, and exports
//!   `fleet.memory_budget_bytes` / `fleet.memory_inuse_bytes`.
//! * **Per-tenant health attribution.** Every job records into its *own*
//!   registry (stores, retry/spill resilience, seal pipeline, streaming
//!   analyzer), so `GET /healthz` attributes each degradation to the job
//!   and tenant that caused it instead of pooling the blame: one tenant's
//!   store faults never flip a healthy neighbour to 503.
//! * **A `/jobs` control API.** `POST /jobs` admits a job by workload
//!   name (the wormulon-style create/cancel/status lifecycle);
//!   `GET /jobs` lists, `GET /jobs/<id>` inspects, `DELETE /jobs/<id>`
//!   cancels — a queued job exits immediately, a running one drains
//!   gracefully (pacing off, records sealed).
//! * **Sharded stores.** Each job persists to its own
//!   `<root>/jobs/<id>/records` JSONL store through the same
//!   fault/retry/seal-pipeline chain as single-job serve, and its sealed
//!   output stays **byte-identical** to a solo [`TpuPoint::profile`] run
//!   of the same configuration and seed.
//!
//! `POST /quit` (or Ctrl-C with [`TpuPointBuilder::serve_sigint`]) drains
//! the whole fleet gracefully and flushes a final multi-job scrape to
//! `<root>/metrics.prom`.

use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tpupoint_analyzer::{StreamingAnalyzer, StreamingConfig, STREAM_CADENCE};
use tpupoint_obs::{
    to_prometheus_labeled, to_prometheus_multi_ref, Health, LabeledSnapshotRef, Metrics,
    MetricsServer, MetricsSnapshot, Request, Response, ServeHooks,
};
use tpupoint_profiler::{PipelineConfig, ProfilerSink};
use tpupoint_runtime::{
    AdmitError, Fleet, JobConfig, JobControl, JobPhase, JobSpec, JobStatus, LiveSink,
    AGGREGATE_JOB_ID,
};
use tpupoint_workloads::{build, BuildOptions, Variant, WorkloadId};

use crate::facade::{TpuPoint, TpuPointBuilder};
use crate::serve::{preregister_series, preregister_series_in, sigint};

/// One job submission for [`FleetSession::submit`]: the resolved training
/// configuration plus fleet identity and per-job store knobs.
#[derive(Debug, Clone)]
pub struct FleetJobRequest {
    /// Fleet-wide id; `None` auto-assigns `job-<n>`.
    pub id: Option<String>,
    /// Owning tenant for quota accounting and health attribution.
    pub tenant: String,
    /// The training job to simulate.
    pub config: JobConfig,
    /// Wall-clock pacing per step in microseconds; `None` uses the
    /// builder's [`TpuPointBuilder::serve_pace_us`].
    pub pace_us: Option<u64>,
    /// Per-job store fault-injection probability (0 disables).
    pub store_fault_prob: f64,
    /// Seed of the per-job fault stream.
    pub store_fault_seed: u64,
}

impl FleetJobRequest {
    /// A request with default identity (`tenant="default"`, auto id) and
    /// a clean store.
    pub fn new(config: JobConfig) -> FleetJobRequest {
        FleetJobRequest {
            id: None,
            tenant: "default".to_owned(),
            config,
            pace_us: None,
            store_fault_prob: 0.0,
            store_fault_seed: 0xFA117,
        }
    }

    /// Sets an explicit job id.
    pub fn id(mut self, id: impl Into<String>) -> Self {
        self.id = Some(id.into());
        self
    }

    /// Sets the owning tenant.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Sets this job's wall-clock pacing (microseconds per step; 0 runs
    /// at batch speed).
    pub fn pace_us(mut self, pace_us: u64) -> Self {
        self.pace_us = Some(pace_us);
        self
    }

    /// Injects store faults into this job only — the canonical way to
    /// exercise per-tenant health attribution.
    pub fn store_fault(mut self, probability: f64, seed: u64) -> Self {
        self.store_fault_prob = probability.clamp(0.0, 1.0);
        self.store_fault_seed = seed;
        self
    }
}

/// Per-job state the scrape plane reads: the job's own metrics registry,
/// its streaming analyzer, the store knobs its runner applies, and the
/// *published* snapshot slots the scrape plane actually serves from.
///
/// Scrapes never touch `registry` or `streaming` directly — they read
/// `published_metrics`/`published_phases`, which the job's own threads
/// swap at seal points (and a coarse-cadence publisher refreshes between
/// seals). A job wedged mid-update can therefore never stall `/metrics`.
struct JobRuntime {
    registry: Metrics,
    tenant: String,
    workload: String,
    streaming: Arc<Mutex<StreamingAnalyzer>>,
    store_fault_prob: f64,
    store_fault_seed: u64,
    /// Seal-queue backpressure threshold, sized from the fleet memory
    /// budget at admission time.
    high_water: usize,
    /// Spill-queue cap, sized from the fleet memory budget at admission.
    max_spill: usize,
    /// The last published registry view; swapped whole, never mutated.
    published_metrics: Mutex<Arc<MetricsSnapshot>>,
    /// The last published streaming-phase report, pre-rendered as JSON.
    published_phases: Mutex<Arc<String>>,
    /// Bumped once per metrics publish; the aggregate cache keys off it.
    publish_version: AtomicU64,
}

impl JobRuntime {
    /// Snapshots the live registry and swaps it into the published slot.
    ///
    /// The snapshot is taken *inside* the slot lock, so the last writer
    /// always leaves the freshest view: a cadence publish racing a
    /// run-end publish can never overwrite final state with stale data.
    fn publish_metrics(&self) {
        let mut slot = self
            .published_metrics
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *slot = Arc::new(self.registry.snapshot());
        drop(slot);
        self.publish_version.fetch_add(1, Ordering::Release);
        tpupoint_obs::metrics().counter("fleet.snapshot_publishes").inc();
    }

    /// Swaps a pre-rendered phases report into the published slot.
    fn publish_phases(&self, json: String) {
        *self
            .published_phases
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Arc::new(json);
    }

    /// The published registry view (cheap: one Arc clone under a lock
    /// that is only ever held for a swap or a clone).
    fn metrics_view(&self) -> Arc<MetricsSnapshot> {
        Arc::clone(
            &self
                .published_metrics
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    /// The published phases report.
    fn phases_view(&self) -> Arc<String> {
        Arc::clone(
            &self
                .published_phases
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }
}

/// Cached `job="fleet"` aggregate, keyed by every job's publish version:
/// a scrape that arrives while nothing republished reuses the merged
/// snapshot instead of re-folding each family.
struct AggregateCache {
    key: Vec<(String, u64)>,
    value: Arc<MetricsSnapshot>,
}

/// State shared between the HTTP hooks, the job runner, and the session.
struct FleetShared {
    options: TpuPointBuilder,
    root: PathBuf,
    jobs: Mutex<BTreeMap<String, Arc<JobRuntime>>>,
    auto_id: AtomicU64,
    aggregate: Mutex<Option<AggregateCache>>,
}

impl FleetShared {
    /// The current job table as an owned list of Arcs. The `jobs` lock is
    /// held only for this clone — never across per-job work — so a wedged
    /// job cannot serialize scrapes behind it.
    fn job_list(&self) -> Vec<(String, Arc<JobRuntime>)> {
        let jobs = self
            .jobs
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        jobs.iter()
            .map(|(id, job)| (id.clone(), Arc::clone(job)))
            .collect()
    }

    /// Renders the whole fleet as one Prometheus exposition: the pooled
    /// process registry (unlabeled), each job's *published* snapshot
    /// under `{job,tenant,workload}`, and the merged aggregate under
    /// `job="fleet"` — one header per family across all of them. No
    /// per-job registry or streaming lock is taken, and the published
    /// snapshots are rendered borrowed, without cloning.
    fn render_metrics(&self) -> String {
        let jobs = self.job_list();
        let published: Vec<(String, Arc<JobRuntime>, u64, Arc<MetricsSnapshot>)> = jobs
            .into_iter()
            .map(|(id, job)| {
                let version = job.publish_version.load(Ordering::Acquire);
                let snapshot = job.metrics_view();
                (id, job, version, snapshot)
            })
            .collect();
        let process = tpupoint_obs::metrics().snapshot();
        let aggregate = self.fleet_aggregate(&published);
        let mut groups = vec![LabeledSnapshotRef::new(&[], &process)];
        for (id, job, _, snapshot) in &published {
            groups.push(LabeledSnapshotRef::new(
                &[
                    ("job", id.as_str()),
                    ("tenant", job.tenant.as_str()),
                    ("workload", job.workload.as_str()),
                ],
                snapshot,
            ));
        }
        if let Some(merged) = &aggregate {
            groups.push(LabeledSnapshotRef::new(&[("job", AGGREGATE_JOB_ID)], merged));
        }
        to_prometheus_multi_ref(&groups)
    }

    /// The merged `job="fleet"` snapshot, rebuilt only when some job has
    /// republished since the cached merge (folded into an empty snapshot
    /// — no seed clone of the first job's view).
    fn fleet_aggregate(
        &self,
        published: &[(String, Arc<JobRuntime>, u64, Arc<MetricsSnapshot>)],
    ) -> Option<Arc<MetricsSnapshot>> {
        if published.is_empty() {
            return None;
        }
        let key: Vec<(String, u64)> = published
            .iter()
            .map(|(id, _, version, _)| (id.clone(), *version))
            .collect();
        let mut cache = self
            .aggregate
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(cached) = cache.as_ref() {
            if cached.key == key {
                return Some(Arc::clone(&cached.value));
            }
        }
        let mut merged = MetricsSnapshot::default();
        for (_, _, _, snapshot) in published {
            merged.merge(snapshot);
        }
        let value = Arc::new(merged);
        *cache = Some(AggregateCache {
            key,
            value: Arc::clone(&value),
        });
        Some(value)
    }

    /// Fleet health: process-wide degradations plus each job's own,
    /// attributed to its id and tenant — read from the published
    /// snapshots, so one tenant's wedged analyzer never delays the probe.
    fn render_health(&self) -> Health {
        let mut degradations =
            Health::from_snapshot(&tpupoint_obs::metrics().snapshot()).degradations;
        for (id, job) in self.job_list() {
            for line in Health::from_snapshot(&job.metrics_view()).degradations {
                degradations.push(format!("job {id} (tenant {}): {line}", job.tenant));
            }
        }
        Health { degradations }
    }

    /// The published streaming-phase reports of every job, as one JSON
    /// object keyed by job id. Reads only published slots — no streaming
    /// lock.
    fn render_phases(&self) -> String {
        let mut body = String::from("{");
        for (i, (id, job)) in self.job_list().into_iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            let report = job.phases_view();
            body.push_str(&format!("{:?}: {}", id, report.trim_end()));
        }
        body.push_str("}\n");
        body
    }
}

/// Executes one admitted fleet job on its `tpupoint-job-<id>` thread:
/// the exact serve-mode recording lane, but writing to the job's own
/// sharded store and its own metrics registry.
fn run_fleet_job(shared: &FleetShared, spec: &JobSpec, ctl: &JobControl) -> Result<u64, String> {
    let job_runtime = shared
        .jobs
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .get(&spec.id)
        .cloned()
        .ok_or_else(|| format!("job {:?} has no runtime entry", spec.id))?;
    let options = &shared.options;

    // Same overhead charge as profile()/serve(): the recorded JSONL stays
    // byte-identical to a solo run of the same configuration and seed.
    let mut config = spec.config.clone();
    config.host_overhead_frac += options.profiling_overhead_frac;
    let job = tpupoint_runtime::TrainingJob::new(config);

    let dir = shared.root.join("jobs").join(&spec.id);
    let store = build_job_store(options, &job_runtime, &dir.join("records"))
        .map_err(|err| format!("store: {err}"))?;
    // Fleet always takes the pipelined lane, like serve: sealing drains on
    // the shared pool, off this recording thread's critical path.
    let mut sink = ProfilerSink::with_pipelined_store(
        job.catalog().clone(),
        options.profiler_options,
        store,
        PipelineConfig {
            high_water: job_runtime.high_water,
        },
    );
    // Rebind every profiler/store/pipeline series to the job's own
    // registry before the first event, so /metrics and /healthz attribute
    // them to this job alone.
    sink.use_registry(&job_runtime.registry);
    sink.set_source(&job.config().model, &job.config().dataset.name);

    let observer_runtime = Arc::clone(&job_runtime);
    let observer_status = Arc::clone(&ctl.status);
    let n_ops = job.catalog().len();
    sink.set_seal_observer(
        Box::new(move |records| {
            let runtime = &observer_runtime;
            let mut analyzer = runtime
                .streaming
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            analyzer.observe_seal(records, n_ops);
            runtime
                .registry
                .gauge("analyzer.phase_stability")
                .set(analyzer.stability());
            runtime
                .registry
                .gauge("analyzer.phase_count")
                .set(analyzer.phase_count() as f64);
            runtime
                .registry
                .gauge("analyzer.stable_windows")
                .set(analyzer.stable_windows() as f64);
            let report = analyzer.report();
            if let Some(step) = report.last_transition_step {
                runtime
                    .registry
                    .gauge("analyzer.last_transition_step")
                    .set(step as f64);
            }
            for phase in &report.phases {
                runtime
                    .registry
                    .gauge(&format!("analyzer.phase_occupancy.{}", phase.id))
                    .set(phase.occupancy as f64);
            }
            observer_status
                .set_stream_state(analyzer.phase_count() as u64, analyzer.stable_windows());
            // Publish while the analyzer lock is still held so phase
            // reports from successive seals can never swap out of order.
            runtime.publish_phases(report.to_json());
            drop(analyzer);
            runtime.publish_metrics();
        }),
        STREAM_CADENCE as u64,
    );

    let mut live = LiveSink::new(
        sink,
        Arc::clone(&ctl.status),
        Arc::clone(&ctl.quit),
        Duration::from_micros(spec.pace_us),
        options.ols_threshold,
    );
    let report = job.run(&mut live);
    let profile = live.into_inner().finish();
    ctl.status.set_done();

    std::fs::create_dir_all(&dir).map_err(|err| format!("output dir: {err}"))?;
    let file =
        std::fs::File::create(dir.join("profile.json")).map_err(|err| format!("profile: {err}"))?;
    profile
        .save_json(file)
        .map_err(|err| format!("profile: {err}"))?;
    let scrape = to_prometheus_labeled(
        &job_runtime.registry.snapshot(),
        &[
            ("job", spec.id.as_str()),
            ("tenant", job_runtime.tenant.as_str()),
            ("workload", job_runtime.workload.as_str()),
        ],
    );
    std::fs::write(dir.join("metrics.prom"), scrape).map_err(|err| format!("scrape: {err}"))?;
    // Final publish: the registry is quiescent after finish(), so from
    // here on every scrape of this job serves its settled end state.
    let final_phases = job_runtime
        .streaming
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .report()
        .to_json();
    job_runtime.publish_phases(final_phases);
    job_runtime.publish_metrics();
    Ok(report.steps_completed)
}

/// Builds one job's sharded store chain: its own record directory in the
/// fleet-wide format (JSONL lines or binary segments — the binary
/// retention budget applies per job, bounding each tenant's footprint),
/// its own fault stream when requested, and the retry/spill decorator
/// with the fleet-wide policy.
fn build_job_store(
    options: &TpuPointBuilder,
    job: &JobRuntime,
    dir: &Path,
) -> io::Result<Box<dyn tpupoint_profiler::RecordStore + Send>> {
    use tpupoint_profiler::{
        BinaryStore, BinaryStoreConfig, FaultConfig, FaultStore, JsonlStore, RetryPolicy,
        RetryStore, StoreFormat,
    };
    let mut store: Box<dyn tpupoint_profiler::RecordStore + Send> = match options.store_format {
        StoreFormat::Jsonl => Box::new(JsonlStore::create(dir)?),
        StoreFormat::Binary => Box::new(BinaryStore::with_config(
            dir,
            BinaryStoreConfig {
                segment_bytes: options.store_segment_bytes,
                retention_bytes: options.store_retention_bytes,
                ..BinaryStoreConfig::default()
            },
        )?),
    };
    if job.store_fault_prob > 0.0 {
        store = Box::new(FaultStore::new(
            store,
            FaultConfig {
                error_probability: job.store_fault_prob,
                seed: job.store_fault_seed,
                ..FaultConfig::default()
            },
        ));
    }
    if options.store_retries > 0 {
        store = Box::new(RetryStore::with_policy(
            store,
            RetryPolicy {
                max_retries: options.store_retries,
                sleep_backoff: options.serve_real_backoff,
                max_spill: job.max_spill,
                ..RetryPolicy::default()
            },
        ));
    }
    Ok(store)
}

/// Sizes one job's seal-queue high-water and spill cap from its share of
/// the fleet memory budget. With no budget (0), the single-job defaults
/// apply. With one, each admitted job gets `budget / jobs` bytes; half of
/// the share bounds the seal queue and half the spill queue, at ~4 KiB
/// per in-flight record (a sealed JSONL step row with its op vector),
/// clamped so a tiny share still makes progress and a huge one never
/// exceeds the single-job defaults.
fn derive_job_caps(budget_bytes: u64, admitted_jobs: usize) -> (usize, usize) {
    const APPROX_RECORD_BYTES: u64 = 4096;
    let default_high_water = PipelineConfig::default().high_water;
    let default_max_spill = tpupoint_profiler::RetryPolicy::default().max_spill;
    if budget_bytes == 0 {
        return (default_high_water, default_max_spill);
    }
    let share = budget_bytes / admitted_jobs.max(1) as u64;
    let records = (share / 2 / APPROX_RECORD_BYTES) as usize;
    (
        records.clamp(16, default_high_water),
        records.clamp(100, default_max_spill),
    )
}

/// A running fleet session: the orchestrator plus the HTTP scrape plane.
/// Obtain one from [`TpuPoint::serve_fleet`]; submit jobs over HTTP or
/// with [`FleetSession::submit`], and call [`FleetSession::wait`] to block
/// until shutdown.
pub struct FleetSession {
    server: MetricsServer,
    fleet: Arc<Fleet>,
    shared: Arc<FleetShared>,
    quit: Arc<AtomicBool>,
    sigint: bool,
    publisher_stop: Arc<AtomicBool>,
    publisher: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for FleetSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSession")
            .field("addr", &self.server.local_addr())
            .field("fleet", &self.fleet)
            .finish()
    }
}

impl FleetSession {
    /// The HTTP endpoint's actually-bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Admits a job, queueing it for dispatch; returns its id.
    ///
    /// # Errors
    ///
    /// Refuses over-quota, duplicate, invalid, or post-drain submissions;
    /// see [`AdmitError`].
    pub fn submit(&self, request: FleetJobRequest) -> Result<String, AdmitError> {
        submit_job(&self.shared, &self.fleet, request)
    }

    /// The current view of one job.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        self.fleet.status(id)
    }

    /// All jobs, in id order.
    pub fn list(&self) -> Vec<JobStatus> {
        self.fleet.list()
    }

    /// Requests cancellation: a queued job exits immediately, a running
    /// one drains gracefully. Returns the phase after the request.
    pub fn cancel(&self, id: &str) -> Option<JobPhase> {
        self.fleet.cancel(id)
    }

    /// Active (queued or running) jobs.
    pub fn active_count(&self) -> usize {
        self.fleet.active_count()
    }

    /// Blocks until every admitted job settles, without shutting the
    /// scrape plane down — new submissions are still admitted after.
    pub fn wait_jobs_idle(&self) {
        self.fleet.wait_idle();
    }

    /// One fleet-wide Prometheus scrape, identical to `GET /metrics`.
    pub fn scrape(&self) -> String {
        self.shared.render_metrics()
    }

    /// Fleet health with per-job attribution, identical to `GET /healthz`.
    pub fn health(&self) -> Health {
        self.shared.render_health()
    }

    /// Requests fleet shutdown, exactly like `POST /quit`.
    pub fn request_quit(&self) {
        self.quit.store(true, Ordering::SeqCst);
    }

    /// Blocks until shutdown is requested (`POST /quit`,
    /// [`FleetSession::request_quit`], or Ctrl-C under
    /// [`TpuPointBuilder::serve_sigint`]), then drains every job
    /// gracefully, flushes the final fleet scrape to
    /// `<root>/metrics.prom`, and returns the final job statuses.
    ///
    /// # Errors
    ///
    /// Returns an error if the final scrape cannot be written.
    pub fn wait(mut self) -> io::Result<Vec<JobStatus>> {
        while !self.quit.load(Ordering::SeqCst) {
            if self.sigint && sigint::hit() {
                self.quit.store(true, Ordering::SeqCst);
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        self.fleet.drain();
        // Stop the cadence publisher before the final scrape: every job
        // already published its settled end state from its own thread.
        self.publisher_stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.publisher.take() {
            let _ = handle.join();
        }
        let scrape = self.shared.render_metrics();
        std::fs::create_dir_all(&self.shared.root)?;
        std::fs::write(self.shared.root.join("metrics.prom"), scrape)?;
        Ok(self.fleet.list())
    }
}

/// Creates the per-job registry + runtime entry, then admits the spec.
/// The side entry is inserted first (the runner may start instantly) and
/// rolled back if admission refuses.
fn submit_job(
    shared: &Arc<FleetShared>,
    fleet: &Fleet,
    request: FleetJobRequest,
) -> Result<String, AdmitError> {
    let id = match request.id {
        Some(id) => id,
        None => loop {
            let n = shared.auto_id.fetch_add(1, Ordering::SeqCst);
            let candidate = format!("job-{n}");
            if !shared
                .jobs
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .contains_key(&candidate)
            {
                break candidate;
            }
        },
    };
    let registry = Metrics::new();
    preregister_series_in(&registry);
    let (high_water, max_spill) = derive_job_caps(
        shared.options.fleet_limits.memory_budget_bytes,
        fleet.active_count() + 1,
    );
    let initial_phases = StreamingAnalyzer::new(StreamingConfig::default())
        .report()
        .to_json();
    let runtime = Arc::new(JobRuntime {
        published_metrics: Mutex::new(Arc::new(registry.snapshot())),
        published_phases: Mutex::new(Arc::new(initial_phases)),
        publish_version: AtomicU64::new(0),
        registry,
        tenant: request.tenant.clone(),
        workload: request.config.model.clone(),
        streaming: Arc::new(Mutex::new(StreamingAnalyzer::new(
            StreamingConfig::default(),
        ))),
        store_fault_prob: request.store_fault_prob,
        store_fault_seed: request.store_fault_seed,
        high_water,
        max_spill,
    });
    {
        // Checked here, under the side-table lock, so a duplicate id can
        // never overwrite (and then roll back) the original's runtime.
        let mut jobs = shared
            .jobs
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if jobs.contains_key(&id) {
            return Err(AdmitError::Duplicate(id));
        }
        jobs.insert(id.clone(), runtime);
    }
    let spec = JobSpec {
        id: id.clone(),
        tenant: request.tenant,
        config: request.config,
        pace_us: request.pace_us.unwrap_or(shared.options.serve_pace_us),
    };
    match fleet.submit(spec) {
        Ok(()) => Ok(id),
        Err(err) => {
            shared
                .jobs
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .remove(&id);
            Err(err)
        }
    }
}

/// Maps an admission refusal to its HTTP status: client mistakes are
/// 4xx (400 invalid, 409 duplicate, 429 backpressure — including an
/// exhausted fleet memory budget), drain is 503.
fn admit_status(err: &AdmitError) -> u16 {
    match err {
        AdmitError::InvalidId(_) => 400,
        AdmitError::Duplicate(_) => 409,
        AdmitError::Saturated { .. }
        | AdmitError::TenantQuota { .. }
        | AdmitError::MemoryBudget { .. } => 429,
        AdmitError::Closed => 503,
    }
}

fn job_status_json(status: &JobStatus) -> String {
    format!(
        concat!(
            "{{\"id\": {:?}, \"tenant\": {:?}, \"phase\": {:?}, ",
            "\"step\": {}, \"steps_completed\": {}, \"error\": {}}}"
        ),
        status.id,
        status.tenant,
        status.phase.as_str(),
        status.step,
        status.steps_completed,
        status
            .error
            .as_deref()
            .map(|e| format!("{e:?}"))
            .unwrap_or_else(|| "null".to_owned()),
    )
}

fn jobs_json(statuses: &[JobStatus]) -> String {
    let rows: Vec<String> = statuses.iter().map(job_status_json).collect();
    format!("{{\"jobs\": [{}]}}\n", rows.join(", "))
}

/// Parses a `POST /jobs` body into a [`FleetJobRequest`]: `workload` is
/// required (a suite id, as listed by `tpupoint workloads`); `id`,
/// `tenant`, `generation`, `scale`, `seed`, `naive`, `pace_us`,
/// `store_fault_prob`, and `store_fault_seed` are optional.
fn parse_job_request(body: &str) -> Result<FleetJobRequest, String> {
    let value: serde_json::Value =
        serde_json::from_str(body).map_err(|err| format!("invalid JSON body: {err}"))?;
    let workload = value
        .get("workload")
        .and_then(serde_json::Value::as_str)
        .ok_or("missing required field \"workload\"")?;
    let workload_id: WorkloadId = workload.parse().map_err(|err| format!("{err}"))?;
    let generation = match value
        .get("generation")
        .and_then(serde_json::Value::as_str)
        .unwrap_or("v2")
    {
        "v2" | "V2" => tpupoint_hw::TpuGeneration::V2,
        "v3" | "V3" => tpupoint_hw::TpuGeneration::V3,
        other => return Err(format!("\"generation\" must be v2 or v3, got {other:?}")),
    };
    let scale = value
        .get("scale")
        .and_then(serde_json::Value::as_f64)
        .unwrap_or_else(|| workload_id.default_sim_scale());
    let opts = BuildOptions {
        scale,
        seed: value
            .get("seed")
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(42),
        variant: if value
            .get("naive")
            .and_then(serde_json::Value::as_bool)
            .unwrap_or(false)
        {
            Variant::Naive
        } else {
            Variant::Tuned
        },
        ..BuildOptions::default()
    };
    let mut request = FleetJobRequest::new(build(workload_id, generation, &opts));
    if let Some(id) = value.get("id").and_then(serde_json::Value::as_str) {
        request = request.id(id);
    }
    if let Some(tenant) = value.get("tenant").and_then(serde_json::Value::as_str) {
        request = request.tenant(tenant);
    }
    if let Some(pace) = value.get("pace_us").and_then(serde_json::Value::as_u64) {
        request = request.pace_us(pace);
    }
    let fault_prob = value
        .get("store_fault_prob")
        .and_then(serde_json::Value::as_f64)
        .unwrap_or(0.0);
    if fault_prob > 0.0 {
        request = request.store_fault(
            fault_prob,
            value
                .get("store_fault_seed")
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0xFA117),
        );
    }
    Ok(request)
}

/// Routes the `/jobs` control API; returns `None` for paths the built-in
/// table should keep handling.
fn route_jobs(
    shared: &Arc<FleetShared>,
    fleet: &Arc<Fleet>,
    request: &Request,
) -> Option<Response> {
    if request.path == "/jobs" {
        return Some(match request.method.as_str() {
            "GET" => Response::json(jobs_json(&fleet.list())),
            "POST" => match parse_job_request(&request.body) {
                Ok(job) => match submit_job(shared, fleet, job) {
                    Ok(id) => Response::json_status(
                        201,
                        format!("{{\"id\": {id:?}, \"phase\": \"queued\"}}\n"),
                    ),
                    Err(err) => Response::json_status(
                        admit_status(&err),
                        format!("{{\"error\": {:?}}}\n", err.to_string()),
                    ),
                },
                Err(err) => Response::json_status(400, format!("{{\"error\": {err:?}}}\n")),
            },
            _ => Response::text(405, "method not allowed\n"),
        });
    }
    let id = request.path.strip_prefix("/jobs/")?;
    if let Some(id) = id.strip_suffix("/phases") {
        // Published slot only: a wedged analyzer cannot stall this route.
        let job = shared
            .jobs
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(id)
            .cloned();
        return Some(match job {
            Some(job) => Response::json(job.phases_view().as_str().to_owned()),
            None => Response::json_status(404, format!("{{\"error\": \"no job {id:?}\"}}\n")),
        });
    }
    Some(match request.method.as_str() {
        "GET" => match fleet.status(id) {
            Some(status) => Response::json(format!("{}\n", job_status_json(&status))),
            None => Response::json_status(404, format!("{{\"error\": \"no job {id:?}\"}}\n")),
        },
        "DELETE" => match fleet.cancel(id) {
            Some(phase) => Response::json(format!(
                "{{\"id\": {id:?}, \"phase\": {:?}}}\n",
                phase.as_str()
            )),
            None => Response::json_status(404, format!("{{\"error\": \"no job {id:?}\"}}\n")),
        },
        _ => Response::text(405, "method not allowed\n"),
    })
}

impl TpuPoint {
    /// Starts fleet mode; see the module docs. Returns as soon as the
    /// scrape plane is up — jobs arrive through `POST /jobs` or
    /// [`FleetSession::submit`], and [`FleetSession::wait`] blocks until
    /// graceful shutdown.
    ///
    /// Sharded stores live under `<output_dir>/jobs/<id>/` (default root
    /// `tpupoint-fleet`); admission bounds come from
    /// [`TpuPointBuilder::fleet_limits`].
    ///
    /// # Errors
    ///
    /// Returns an error if the listen address cannot be bound.
    pub fn serve_fleet(&self) -> io::Result<FleetSession> {
        let options = self.options.clone();
        let listen = options
            .serve_listen
            .clone()
            .unwrap_or_else(|| "127.0.0.1:0".to_owned());
        let root = options
            .output_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("tpupoint-fleet"));
        preregister_series();
        let metrics = tpupoint_obs::metrics();
        for gauge in [
            "fleet.jobs_running",
            "fleet.jobs_queued",
            "fleet.jobs_total",
            "fleet.memory_budget_bytes",
            "fleet.memory_inuse_bytes",
        ] {
            metrics.gauge(gauge);
        }
        metrics.counter("fleet.poisoned");
        metrics.counter("fleet.snapshot_publishes");
        if options.serve_sigint {
            sigint::install();
        }

        let shared = Arc::new(FleetShared {
            options: options.clone(),
            root,
            jobs: Mutex::new(BTreeMap::new()),
            auto_id: AtomicU64::new(0),
            aggregate: Mutex::new(None),
        });
        // Coarse-cadence publisher: refreshes every job's published
        // metrics between seal points, so idle or slow-sealing jobs still
        // converge on /metrics within ~200 ms. Phases republish only at
        // seals (the analyzer state only changes there).
        let publisher_stop = Arc::new(AtomicBool::new(false));
        let publisher = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&publisher_stop);
            std::thread::Builder::new()
                .name("tpupoint-fleet-publish".to_owned())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(200));
                        for (_, job) in shared.job_list() {
                            job.publish_metrics();
                        }
                    }
                })?
        };
        let runner_shared = Arc::clone(&shared);
        let fleet = Arc::new(Fleet::new(
            options.fleet_limits,
            Box::new(move |spec: &JobSpec, ctl: &JobControl| {
                run_fleet_job(&runner_shared, spec, ctl)
            }),
        ));
        let quit = Arc::new(AtomicBool::new(false));

        let metrics_shared = Arc::clone(&shared);
        let health_shared = Arc::clone(&shared);
        let phases_shared = Arc::clone(&shared);
        let status_fleet = Arc::clone(&fleet);
        let route_shared = Arc::clone(&shared);
        let route_fleet = Arc::clone(&fleet);
        let hook_quit = Arc::clone(&quit);
        let server = MetricsServer::bind(
            &listen,
            ServeHooks {
                metrics: Box::new(move || metrics_shared.render_metrics()),
                health: Box::new(move || health_shared.render_health()),
                status: Box::new(move || {
                    let statuses = status_fleet.list();
                    let count =
                        |phase: JobPhase| statuses.iter().filter(|s| s.phase == phase).count();
                    format!(
                        concat!(
                            "{{\"jobs\": {}, \"queued\": {}, \"running\": {}, ",
                            "\"draining\": {}, \"completed\": {}, \"failed\": {}, ",
                            "\"cancelled\": {}}}\n"
                        ),
                        statuses.len(),
                        count(JobPhase::Queued),
                        count(JobPhase::Running),
                        count(JobPhase::Draining),
                        count(JobPhase::Completed),
                        count(JobPhase::Failed),
                        count(JobPhase::Cancelled),
                    )
                }),
                phases: Box::new(move || phases_shared.render_phases()),
                quit: Box::new(move || hook_quit.store(true, Ordering::SeqCst)),
                route: Some(Box::new(move |request: &Request| {
                    route_jobs(&route_shared, &route_fleet, request)
                })),
            },
        )?;

        Ok(FleetSession {
            server,
            fleet,
            shared,
            quit,
            sigint: options.serve_sigint,
            publisher_stop,
            publisher: Some(publisher),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tpupoint-fleet-{tag}-{}", std::process::id()))
    }

    fn fleet_at(root: &Path) -> FleetSession {
        TpuPoint::builder()
            .analyzer(true)
            .output_dir(root)
            .serve("127.0.0.1:0")
            .serve_pace_us(0)
            .build()
            .serve_fleet()
            .expect("fleet starts")
    }

    fn http(addr: SocketAddr, request: &str) -> String {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).expect("connects");
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        http(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
    }

    #[test]
    fn fleet_runs_jobs_with_labeled_series_and_sharded_stores() {
        let root = temp_root("basic");
        let _ = std::fs::remove_dir_all(&root);
        let session = fleet_at(&root);
        let id = session
            .submit(
                FleetJobRequest::new(JobConfig::demo())
                    .id("demo-a")
                    .tenant("alice"),
            )
            .expect("admits");
        assert_eq!(id, "demo-a");
        session.wait_jobs_idle();
        assert_eq!(session.status("demo-a").unwrap().phase, JobPhase::Completed);

        let scrape = session.scrape();
        assert!(
            scrape.contains("job=\"demo-a\"") && scrape.contains("tenant=\"alice\""),
            "per-job labels missing:\n{scrape}"
        );
        assert!(
            scrape.contains(&format!("job=\"{AGGREGATE_JOB_ID}\"")),
            "aggregate series missing:\n{scrape}"
        );
        // One header per family even with three groups of the same series.
        let headers = scrape
            .matches("# TYPE tpupoint_profiler_windows_sealed")
            .count();
        assert_eq!(headers, 1, "{scrape}");
        assert!(root.join("jobs/demo-a/records/steps.jsonl").exists());
        assert!(root.join("jobs/demo-a/profile.json").exists());

        session.request_quit();
        let statuses = session.wait().expect("drains");
        assert_eq!(statuses.len(), 1);
        assert!(root.join("metrics.prom").exists(), "final fleet scrape");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn jobs_api_drives_the_lifecycle_over_http() {
        let root = temp_root("api");
        let _ = std::fs::remove_dir_all(&root);
        let session = fleet_at(&root);
        let addr = session.addr();

        let body =
            "{\"workload\": \"bert-mrpc\", \"id\": \"b1\", \"tenant\": \"t1\", \"scale\": 0.05}";
        let response = http(
            addr,
            &format!(
                "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            ),
        );
        assert!(response.starts_with("HTTP/1.1 201"), "{response}");
        assert!(response.contains("\"id\": \"b1\""), "{response}");

        let listing = get(addr, "/jobs");
        assert!(listing.contains("\"id\": \"b1\""), "{listing}");
        let one = get(addr, "/jobs/b1");
        assert!(one.contains("\"tenant\": \"t1\""), "{one}");
        assert!(get(addr, "/jobs/nope").starts_with("HTTP/1.1 404"));

        // Unknown workloads and bad JSON are client errors, not 500s.
        let bad = http(
            addr,
            "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\n\r\n{}",
        );
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

        session.wait_jobs_idle();
        let cancelled = http(addr, "DELETE /jobs/b1 HTTP/1.1\r\nHost: t\r\n\r\n");
        // Already terminal: cancel is a no-op that reports the phase.
        assert!(cancelled.contains("completed"), "{cancelled}");

        let quit = http(addr, "POST /quit HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(quit.starts_with("HTTP/1.1 200"), "{quit}");
        session.wait().expect("drains");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn duplicate_and_invalid_submissions_map_to_http_statuses() {
        let root = temp_root("statuses");
        let _ = std::fs::remove_dir_all(&root);
        let session = fleet_at(&root);
        session
            .submit(FleetJobRequest::new(JobConfig::demo()).id("dup"))
            .unwrap();
        let err = session
            .submit(FleetJobRequest::new(JobConfig::demo()).id("dup"))
            .unwrap_err();
        assert_eq!(admit_status(&err), 409);
        let err = session
            .submit(FleetJobRequest::new(JobConfig::demo()).id("NOT VALID"))
            .unwrap_err();
        assert_eq!(admit_status(&err), 400);
        // A refused submission leaves no runtime entry behind.
        assert_eq!(session.shared.jobs.lock().unwrap().len(), 1);
        session.request_quit();
        session.wait().expect("drains");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn derive_job_caps_scales_with_budget_and_clamps() {
        // No budget: single-job defaults.
        assert_eq!(derive_job_caps(0, 10), (256, 100_000));
        // 64 MiB across 8 jobs → 8 MiB share → 4 MiB per queue →
        // 1024 records, clamped to the 256 high-water default.
        let (hw, spill) = derive_job_caps(64 * 1024 * 1024, 8);
        assert_eq!(hw, 256);
        assert_eq!(spill, 1024);
        // A starvation-level share still leaves the floors.
        let (hw, spill) = derive_job_caps(1024 * 1024, 64);
        assert_eq!(hw, 16);
        assert_eq!(spill, 100);
    }

    #[test]
    fn scrapes_survive_a_job_wedged_inside_a_streaming_update() {
        let root = temp_root("wedged");
        let _ = std::fs::remove_dir_all(&root);
        let session = fleet_at(&root);
        let addr = session.addr();
        let id = session
            .submit(FleetJobRequest::new(JobConfig::demo()).id("wedge"))
            .expect("admits");
        session.wait_jobs_idle();

        // Wedge the job's analyzer: a thread grabs its streaming lock and
        // sits on it, as if an observe_seal were stuck mid-update.
        let job = Arc::clone(session.shared.jobs.lock().unwrap().get(&id).unwrap());
        let release = Arc::new(AtomicBool::new(false));
        let wedge = {
            let job = Arc::clone(&job);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                let _guard = job.streaming.lock().unwrap();
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        while !job.streaming.try_lock().is_err() {
            std::thread::sleep(Duration::from_millis(1));
        }

        // Every scrape-plane route must answer from published snapshots,
        // far faster than any wedge-release path could explain.
        let bound = Duration::from_secs(2);
        for path in ["/metrics", "/healthz", "/phases", "/jobs/wedge/phases"] {
            let start = std::time::Instant::now();
            let response = get(addr, path);
            let elapsed = start.elapsed();
            assert!(
                elapsed < bound,
                "{path} took {elapsed:?} with a wedged streaming lock"
            );
            if path == "/healthz" {
                // Parallel tests fault the process-global registry, so
                // health may legitimately report 503 — it only matters
                // that it answered within the bound.
                assert!(response.starts_with("HTTP/1.1"), "{path}: {response}");
            } else {
                assert!(response.starts_with("HTTP/1.1 200"), "{path}: {response}");
            }
        }
        let scrape = get(addr, "/metrics");
        assert!(scrape.contains("job=\"wedge\""), "{scrape}");

        release.store(true, Ordering::SeqCst);
        wedge.join().unwrap();
        session.request_quit();
        session.wait().expect("drains");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
