//! The `TpuPoint` object: Start → train → Stop, plus analysis and
//! optimization entry points.

use std::io;
use std::path::{Path, PathBuf};
use tpupoint_analyzer::{checkpoint::PhaseCheckpoint, Analyzer, AnalyzerOptions, PhaseSet};
use tpupoint_optimizer::{OptimizerReport, TpuPointOptimizer};
use tpupoint_profiler::{
    BinaryStore, BinaryStoreConfig, FaultConfig, FaultStore, JsonlStore, PipelineConfig, Profile,
    ProfilerOptions, ProfilerSink, RecordStore, RetryPolicy, RetryStore, StoreFormat,
};
use tpupoint_runtime::{FleetLimits, JobConfig, RunReport, TrainingJob};

/// A profiled training session: the runtime's ground-truth report plus the
/// profiler's statistical view.
#[derive(Debug, Clone)]
pub struct ProfiledRun {
    /// Ground-truth run metrics from the simulator.
    pub report: RunReport,
    /// The statistical profile TPUPoint-Profiler captured.
    pub profile: Profile,
}

/// Results of running TPUPoint-Analyzer on a profile.
#[derive(Debug, Clone)]
pub struct AnalysisArtifacts {
    /// Phases from the online linear scan at the configured threshold.
    pub ols_phases: PhaseSet,
    /// Nearest checkpoint per OLS phase.
    pub phase_checkpoints: Vec<Option<PhaseCheckpoint>>,
    /// Path of the Chrome-tracing JSON, when an output directory is set.
    pub trace_path: Option<PathBuf>,
    /// Path of the phase CSV, when an output directory is set.
    pub csv_path: Option<PathBuf>,
}

/// Configuration-first builder for [`TpuPoint`].
#[derive(Debug, Clone)]
pub struct TpuPointBuilder {
    pub(crate) analyzer: bool,
    pub(crate) output_dir: Option<PathBuf>,
    pub(crate) profiler_options: ProfilerOptions,
    pub(crate) ols_threshold: f64,
    pub(crate) profiling_overhead_frac: f64,
    pub(crate) threads: usize,
    pub(crate) store_retries: u32,
    pub(crate) store_fault_prob: f64,
    pub(crate) store_fault_seed: u64,
    pub(crate) store_format: StoreFormat,
    pub(crate) store_segment_bytes: u64,
    pub(crate) store_retention_bytes: u64,
    pub(crate) pipeline_profiler: bool,
    pub(crate) serve_listen: Option<String>,
    pub(crate) serve_pace_us: u64,
    pub(crate) serve_real_backoff: bool,
    pub(crate) serve_sigint: bool,
    pub(crate) paired_baseline: bool,
    pub(crate) stop_on_stable: Option<u64>,
    pub(crate) sim_lanes: usize,
    pub(crate) fleet_limits: FleetLimits,
}

impl Default for TpuPointBuilder {
    fn default() -> Self {
        TpuPointBuilder {
            analyzer: true,
            output_dir: None,
            profiler_options: ProfilerOptions::default(),
            ols_threshold: 0.7,
            profiling_overhead_frac: 0.03,
            threads: 0,
            store_retries: RetryPolicy::default().max_retries,
            store_fault_prob: 0.0,
            store_fault_seed: FaultConfig::default().seed,
            store_format: StoreFormat::Jsonl,
            store_segment_bytes: BinaryStoreConfig::default().segment_bytes,
            store_retention_bytes: 0,
            pipeline_profiler: false,
            serve_listen: None,
            serve_pace_us: 500,
            serve_real_backoff: true,
            serve_sigint: false,
            paired_baseline: false,
            stop_on_stable: None,
            sim_lanes: 1,
            fleet_limits: FleetLimits::default(),
        }
    }
}

impl TpuPointBuilder {
    /// Enables analyzer mode: profile records are also persisted to the
    /// output directory (the paper's `Start(analyzer=true)`).
    pub fn analyzer(mut self, enabled: bool) -> Self {
        self.analyzer = enabled;
        self
    }

    /// Directory for recorded profiles and visualization files.
    pub fn output_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.output_dir = Some(dir.into());
        self
    }

    /// Overrides the profiler's window caps.
    pub fn profiler_options(mut self, options: ProfilerOptions) -> Self {
        self.profiler_options = options;
        self
    }

    /// OLS similarity threshold used by [`TpuPoint::analyze`].
    pub fn ols_threshold(mut self, threshold: f64) -> Self {
        self.ols_threshold = threshold;
        self
    }

    /// Fractional host slowdown caused by the profiling thread.
    pub fn profiling_overhead(mut self, frac: f64) -> Self {
        self.profiling_overhead_frac = frac.max(0.0);
        self
    }

    /// Analyzer worker threads; `0` (the default) auto-sizes from
    /// `TPUPOINT_THREADS` or the machine. Results are identical for any
    /// value — only wall time changes.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Retries per record-store operation before spilling to memory
    /// (default 3; `0` disables the retry/spill decorator entirely, so
    /// store failures surface directly in the profile).
    pub fn store_retries(mut self, retries: u32) -> Self {
        self.store_retries = retries;
        self
    }

    /// Selects the analyzer-mode record encoding: JSON lines (the
    /// default) or checksummed binary segments with background compaction
    /// ([`tpupoint_profiler::BinaryStore`]). Both formats share the
    /// manifest and crash-recovery contract; `analyze --recover`
    /// auto-detects whichever was written.
    pub fn store_format(mut self, format: StoreFormat) -> Self {
        self.store_format = format;
        self
    }

    /// Rotation threshold of the binary store's segments, in bytes.
    /// Ignored under the JSONL format.
    pub fn store_segment_bytes(mut self, bytes: u64) -> Self {
        self.store_segment_bytes = bytes.max(1);
        self
    }

    /// Retention budget over sealed binary segments, in bytes: while the
    /// sealed total exceeds it, the oldest segments are retired with
    /// manifest accounting (never counted as lost). `0` (the default)
    /// keeps everything. Ignored under the JSONL format. In fleet mode
    /// the budget applies per job, bounding every tenant's footprint.
    pub fn store_retention_bytes(mut self, bytes: u64) -> Self {
        self.store_retention_bytes = bytes;
        self
    }

    /// Injects faults into the analyzer-mode record store: each store
    /// operation fails independently with probability `probability`, from
    /// a stream seeded by `seed` (deterministic replay).
    pub fn store_fault(mut self, probability: f64, seed: u64) -> Self {
        self.store_fault_prob = probability.clamp(0.0, 1.0);
        self.store_fault_seed = seed;
        self
    }

    /// Moves analyzer-mode window sealing off the simulation thread: full
    /// windows are handed to a bounded queue drained by the shared
    /// [`tpupoint_par`] pool, so the training loop never blocks on the
    /// record store. Sealed output is byte-identical to the serial path
    /// for any thread count.
    pub fn pipeline_profiler(mut self, enabled: bool) -> Self {
        self.pipeline_profiler = enabled;
        self
    }

    /// Enables serve mode at the given listen address (e.g.
    /// `127.0.0.1:9090`, or port `0` for an ephemeral port): a later
    /// [`TpuPoint::serve`] runs the job on a wall-clock recording thread
    /// and exposes `/metrics`, `/healthz`, `/status`, and `/quit` over
    /// HTTP at this address.
    pub fn serve(mut self, listen: impl Into<String>) -> Self {
        self.serve_listen = Some(listen.into());
        self
    }

    /// Real milliseconds-scale pacing per training step on the serve
    /// lane (default 500 µs). `0` disables pacing — the job runs at
    /// batch speed while still serving scrapes.
    pub fn serve_pace_us(mut self, pace_us: u64) -> Self {
        self.serve_pace_us = pace_us;
        self
    }

    /// Whether serve mode's recording thread actually sleeps the
    /// recorded retry-backoff schedule
    /// ([`RetryPolicy::sleep_backoff`]; default `true`). Batch
    /// [`TpuPoint::profile`] never sleeps regardless.
    pub fn serve_real_backoff(mut self, enabled: bool) -> Self {
        self.serve_real_backoff = enabled;
        self
    }

    /// Installs a SIGINT handler while serving so Ctrl-C triggers the
    /// same graceful shutdown as `POST /quit` (default off; tests keep
    /// the process signal state untouched).
    pub fn serve_sigint(mut self, enabled: bool) -> Self {
        self.serve_sigint = enabled;
        self
    }

    /// Also runs an *uninstrumented* twin of every profiled job (same
    /// config and seed, no profiling overhead, events discarded) and
    /// reports the **measured** instrumented-to-uninstrumented wall
    /// ratio instead of the modeled `1 + profiling_overhead_frac`. Both
    /// walls are simulated time, so the measurement is deterministic
    /// and unaffected by serve-mode pacing; the measured ratio is
    /// usually *below* the modeled bound because pipeline overlap
    /// absorbs part of the host slowdown.
    pub fn paired_baseline(mut self, enabled: bool) -> Self {
        self.paired_baseline = enabled;
        self
    }

    /// SeqPoint-style early stop for serve mode: end the run gracefully
    /// (exactly like `POST /quit`) once the streaming analyzer's phase
    /// assignments have been stable for `k` consecutive updates. The
    /// remaining steps still execute at batch speed, so the recorded
    /// profile stays complete — only the paced wall-clock tail is
    /// skipped.
    pub fn stop_on_stable(mut self, k: u64) -> Self {
        self.stop_on_stable = Some(k);
        self
    }

    /// Runs [`TpuPoint::profile`] jobs on the laned simulation engine with
    /// this many process shards (default 1 = serial engine). The trace,
    /// JSONL records, and profile are byte-identical for any value — lanes
    /// move sink work off the simulation's critical path onto the
    /// `tpupoint-par` pool, they never change results. The paired-baseline
    /// twin always runs serially; its report is identical either way.
    pub fn sim_lanes(mut self, lanes: usize) -> Self {
        self.sim_lanes = lanes.max(1);
        self
    }

    /// Admission and concurrency bounds for [`TpuPoint::serve_fleet`]:
    /// how many jobs run at once, how deep the admission queue goes, and
    /// how many active jobs any one tenant may hold.
    pub fn fleet_limits(mut self, limits: FleetLimits) -> Self {
        self.fleet_limits = limits;
        self
    }

    /// Fleet-wide memory budget in MiB for [`TpuPoint::serve_fleet`]
    /// (CLI: `--fleet-memory-mib`; 0 = unbounded). Admissions past the
    /// budget are shed with 429, and each admitted job's seal-queue
    /// high-water and spill cap are sized from its share.
    pub fn fleet_memory_mib(mut self, mib: u64) -> Self {
        self.fleet_limits.memory_budget_bytes = mib * 1024 * 1024;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> TpuPoint {
        TpuPoint { options: self }
    }
}

/// A started profiler, mirroring Figure 2's imperative flow:
///
/// ```
/// use tpupoint::{TpuPoint, runtime::{JobConfig, TrainingJob}};
///
/// let job = TrainingJob::new(JobConfig::demo());
/// let tp = TpuPoint::builder().analyzer(false).build();
/// let mut tpprofiler = tp.start(&job);     // tpprofiler.Start(...)
/// let report = job.run(&mut tpprofiler);   // estimator.train(...)
/// let profile = tpprofiler.stop();         // tpprofiler.Stop()
/// assert_eq!(profile.step_marks.len() as u64, report.steps_completed);
/// ```
///
/// The handle is a [`tpupoint_simcore::trace::TraceSink`], so it plugs
/// directly into [`TrainingJob::run`]. Prefer [`TpuPoint::profile`] when
/// you do not need to interleave your own logic between start and stop.
#[derive(Debug)]
pub struct ProfilerHandle {
    sink: ProfilerSink,
}

impl ProfilerHandle {
    /// Events observed so far.
    pub fn events_seen(&self) -> u64 {
        self.sink.events_seen()
    }

    /// Stops profiling and returns the captured profile (the paper's
    /// `Stop()`, which also kicks off post-processing when analyzer mode
    /// is on — here, the caller passes the profile to
    /// [`TpuPoint::analyze`]).
    pub fn stop(self) -> Profile {
        self.sink.finish()
    }
}

impl tpupoint_simcore::trace::TraceSink for ProfilerHandle {
    fn record(&mut self, event: &tpupoint_simcore::trace::TraceEvent) {
        self.sink.record(event);
    }

    fn on_step(&mut self, step: u64, at: tpupoint_simcore::SimTime) {
        self.sink.on_step(step, at);
    }

    fn on_checkpoint(&mut self, step: u64, at: tpupoint_simcore::SimTime) {
        self.sink.on_checkpoint(step, at);
    }
}

/// The TPUPoint toolchain handle.
#[derive(Debug, Clone)]
pub struct TpuPoint {
    pub(crate) options: TpuPointBuilder,
}

impl TpuPoint {
    /// Starts building a `TpuPoint`.
    pub fn builder() -> TpuPointBuilder {
        TpuPointBuilder::default()
    }

    /// Starts a profiler for `job` (the paper's `Start()`): the returned
    /// handle is the trace sink to pass to [`TrainingJob::run`]. Note that
    /// the profiling overhead on the host is only modeled when the job's
    /// config carries a non-zero `host_overhead_frac`;
    /// [`TpuPoint::profile`] sets it automatically.
    pub fn start(&self, job: &TrainingJob) -> ProfilerHandle {
        let mut sink = ProfilerSink::new(job.catalog().clone(), self.options.profiler_options);
        sink.set_source(&job.config().model, &job.config().dataset.name);
        ProfilerHandle { sink }
    }

    /// Profiles an entire training session (the paper's Start → train →
    /// Stop sequence). Profiling overhead is charged to the host while the
    /// profiler runs.
    ///
    /// # Errors
    ///
    /// Returns an error if analyzer-mode recording to the output directory
    /// fails.
    pub fn profile(&self, mut config: JobConfig) -> io::Result<ProfiledRun> {
        let _span = tpupoint_obs::span!(
            "tpupoint.profile",
            analyzer = self.options.analyzer,
            overhead_frac = self.options.profiling_overhead_frac
        );
        // The paired baseline runs the *clean* config — before the
        // profiling overhead is charged — so its simulated wall is what
        // an uninstrumented run of the same seed would take.
        let baseline_wall = if self.options.paired_baseline {
            let _twin_span = tpupoint_obs::span!("tpupoint.paired_baseline");
            let twin = TrainingJob::new(config.clone());
            let report = twin.run(&mut tpupoint_simcore::trace::NullSink);
            Some(report.session_wall)
        } else {
            None
        };
        config.host_overhead_frac += self.options.profiling_overhead_frac;
        let job = TrainingJob::new(config);
        let mut sink = if self.options.analyzer {
            if let Some(dir) = &self.options.output_dir {
                let store = self.build_store(&dir.join("records"), false)?;
                if self.options.pipeline_profiler {
                    ProfilerSink::with_pipelined_store(
                        job.catalog().clone(),
                        self.options.profiler_options,
                        store,
                        PipelineConfig::default(),
                    )
                } else {
                    ProfilerSink::with_store(
                        job.catalog().clone(),
                        self.options.profiler_options,
                        store,
                    )
                }
            } else {
                ProfilerSink::new(job.catalog().clone(), self.options.profiler_options)
            }
        } else {
            ProfilerSink::new(job.catalog().clone(), self.options.profiler_options)
        };
        sink.set_source(&job.config().model, &job.config().dataset.name);
        let report = if self.options.sim_lanes > 1 {
            job.run_laned(self.options.sim_lanes, &mut sink)
        } else {
            job.run(&mut sink)
        };
        let profile = sink.finish();
        let measured = baseline_wall.map(|baseline| {
            report.session_wall.as_micros() as f64 / baseline.as_micros().max(1) as f64
        });
        self.publish_run_gauges(&profile, measured);
        Ok(ProfiledRun { report, profile })
    }

    /// Builds the analyzer-mode record store: the configured backend
    /// (JSONL lines or binary segments), wrapped in fault injection when
    /// configured, wrapped in retry/spill resilience unless retries are
    /// disabled. `sleep_backoff` selects the wall-clock lane: serve mode
    /// passes `true` so the recorded retry schedule is actually slept.
    pub(crate) fn build_store(
        &self,
        dir: &Path,
        sleep_backoff: bool,
    ) -> io::Result<Box<dyn RecordStore + Send>> {
        let mut store: Box<dyn RecordStore + Send> = match self.options.store_format {
            StoreFormat::Jsonl => Box::new(JsonlStore::create(dir)?),
            StoreFormat::Binary => Box::new(BinaryStore::with_config(
                dir,
                BinaryStoreConfig {
                    segment_bytes: self.options.store_segment_bytes,
                    retention_bytes: self.options.store_retention_bytes,
                    ..BinaryStoreConfig::default()
                },
            )?),
        };
        if self.options.store_fault_prob > 0.0 {
            store = Box::new(FaultStore::new(
                store,
                FaultConfig {
                    error_probability: self.options.store_fault_prob,
                    seed: self.options.store_fault_seed,
                    ..FaultConfig::default()
                },
            ));
        }
        if self.options.store_retries > 0 {
            store = Box::new(RetryStore::with_policy(
                store,
                RetryPolicy {
                    max_retries: self.options.store_retries,
                    sleep_backoff,
                    ..RetryPolicy::default()
                },
            ));
        }
        Ok(store)
    }

    /// Publishes the run-level observability gauges: the
    /// instrumented-vs-uninstrumented wall ratio (measured against the
    /// paired-baseline twin when one ran, modeled as
    /// `1 + profiling_overhead_frac` otherwise) and the window-audit
    /// health of the captured profile. The `profiler.overhead_measured`
    /// marker gauge is only ever set on the measured path — obs-report
    /// uses its presence to label the ratio's provenance.
    pub(crate) fn publish_run_gauges(&self, profile: &Profile, measured_ratio: Option<f64>) {
        let metrics = tpupoint_obs::metrics();
        match measured_ratio {
            Some(ratio) => {
                metrics.gauge("profiler.overhead_ratio").set(ratio);
                metrics.gauge("profiler.overhead_measured").set(1.0);
            }
            None => {
                metrics
                    .gauge("profiler.overhead_ratio")
                    .set(1.0 + self.options.profiling_overhead_frac);
            }
        }
        let audit = tpupoint_profiler::audit_windows(
            &profile.windows,
            tpupoint_simcore::SimDuration::from_millis(1),
        );
        metrics.gauge("audit.gaps").set(audit.gaps.len() as f64);
        metrics
            .gauge("audit.overlaps")
            .set(audit.overlaps.len() as f64);
        metrics
            .gauge("audit.unobserved_fraction")
            .set(audit.unobserved_fraction());
    }

    /// Runs TPUPoint-Analyzer: OLS phases at the configured threshold,
    /// checkpoint association, and (with an output directory) the
    /// Chrome-tracing JSON and CSV files.
    ///
    /// # Errors
    ///
    /// Returns an error if the visualization files cannot be written.
    pub fn analyze(&self, profile: &Profile) -> io::Result<AnalysisArtifacts> {
        let analyzer = Analyzer::with_options(
            profile,
            AnalyzerOptions {
                threads: self.options.threads,
                ..AnalyzerOptions::default()
            },
        );
        let ols_phases = analyzer.ols_phases(self.options.ols_threshold);
        let phase_checkpoints = analyzer.checkpoints_for(&ols_phases);
        let (trace_path, csv_path) = match &self.options.output_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let trace = dir.join(format!("{}-trace.json", profile.model));
                let csv = dir.join(format!("{}-phases.csv", profile.model));
                let steps = dir.join(format!("{}-steps.csv", profile.model));
                analyzer.write_chrome_trace(&ols_phases, std::fs::File::create(&trace)?)?;
                analyzer.write_phase_csv(&ols_phases, std::fs::File::create(&csv)?)?;
                analyzer.write_step_csv(std::fs::File::create(&steps)?)?;
                (Some(trace), Some(csv))
            }
            None => (None, None),
        };
        Ok(AnalysisArtifacts {
            ols_phases,
            phase_checkpoints,
            trace_path,
            csv_path,
        })
    }

    /// Runs TPUPoint-Optimizer on a job.
    pub fn optimize(&self, config: JobConfig) -> OptimizerReport {
        TpuPointOptimizer::new(config).optimize()
    }

    /// The configured output directory, if any.
    pub fn output_dir(&self) -> Option<&Path> {
        self.options.output_dir.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> JobConfig {
        JobConfig::demo()
    }

    #[test]
    fn profile_produces_matching_report_and_profile() {
        let tp = TpuPoint::builder().analyzer(false).build();
        let run = tp.profile(demo()).expect("in-memory profiling");
        assert_eq!(
            run.profile.step_marks.len() as u64,
            run.report.steps_completed
        );
        assert_eq!(run.profile.model, "demo-mlp");
    }

    #[test]
    fn sim_lanes_do_not_change_the_profile() {
        let serial = TpuPoint::builder().analyzer(false).build();
        let laned = TpuPoint::builder().analyzer(false).sim_lanes(2).build();
        let a = serial.profile(demo()).expect("serial profiling");
        let b = laned.profile(demo()).expect("laned profiling");
        assert_eq!(a.report, b.report);
        assert_eq!(a.profile.windows, b.profile.windows);
        assert_eq!(a.profile.steps, b.profile.steps);
        assert_eq!(a.profile.step_marks, b.profile.step_marks);
    }

    #[test]
    fn profiling_overhead_is_applied() {
        let slow = TpuPoint::builder()
            .analyzer(false)
            .profiling_overhead(0.5)
            .build();
        let fast = TpuPoint::builder()
            .analyzer(false)
            .profiling_overhead(0.0)
            .build();
        let mut cfg = demo();
        cfg.jitter_sigma = 0.0;
        cfg.pipeline = tpupoint_graph::PipelineSpec::naive(cfg.pipeline.batch_size);
        cfg.dataset.host_us_per_batch = 100_000.0;
        let r_slow = slow.profile(cfg.clone()).unwrap();
        let r_fast = fast.profile(cfg).unwrap();
        assert!(r_slow.report.session_wall > r_fast.report.session_wall);
    }

    #[test]
    fn paired_baseline_emits_a_measured_overhead_ratio() {
        let tp = TpuPoint::builder()
            .analyzer(false)
            .profiling_overhead(0.5)
            .paired_baseline(true)
            .build();
        // Host-bound configuration so the charged host overhead actually
        // moves the session wall: no jitter, no pipelining, slow host.
        let mut cfg = demo();
        cfg.jitter_sigma = 0.0;
        cfg.pipeline = tpupoint_graph::PipelineSpec::naive(cfg.pipeline.batch_size);
        cfg.dataset.host_us_per_batch = 100_000.0;
        tp.profile(cfg).expect("profiling with twin");
        let snapshot = tpupoint_obs::metrics().snapshot();
        assert_eq!(
            snapshot.gauges.get("profiler.overhead_measured"),
            Some(&1.0),
            "measured marker emitted"
        );
        let ratio = snapshot.gauges["profiler.overhead_ratio"];
        // Measured against the twin: strictly above 1 (overhead is real)
        // and at most the modeled 1.5 bound (overlap can only absorb).
        assert!(ratio > 1.0 && ratio <= 1.5 + 1e-9, "measured ratio {ratio}");
    }

    #[test]
    fn analyze_writes_artifacts_when_output_dir_set() {
        let dir = std::env::temp_dir().join(format!("tpupoint-facade-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tp = TpuPoint::builder().analyzer(true).output_dir(&dir).build();
        let run = tp.profile(demo()).expect("profiling with store");
        let analysis = tp.analyze(&run.profile).expect("analysis");
        assert!(analysis
            .trace_path
            .as_ref()
            .expect("trace written")
            .exists());
        assert!(analysis.csv_path.as_ref().expect("csv written").exists());
        assert!(dir.join("records/steps.jsonl").exists());
        assert!(!analysis.ols_phases.is_empty());
        assert_eq!(analysis.phase_checkpoints.len(), analysis.ols_phases.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_store_with_retries_loses_no_acknowledged_record() {
        let dir = std::env::temp_dir().join(format!("tpupoint-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tp = TpuPoint::builder()
            .analyzer(true)
            .output_dir(&dir)
            .store_fault(0.5, 7)
            .store_retries(10)
            .build();
        let run = tp.profile(demo()).expect("profiling survives faults");
        // Every record the profiler produced must be on disk, despite the
        // 50% per-call failure rate: the retry/spill layer absorbed it all.
        let summary = tpupoint_profiler::JsonlStore::recover(&dir.join("records"))
            .expect("records recoverable");
        assert_eq!(summary.steps.len(), run.profile.steps.len());
        assert_eq!(summary.windows.len(), run.profile.windows.len());
        assert!(!summary.is_torn());
        assert_eq!(run.profile.store_errors, 0, "retries hid the faults");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_store_without_retries_degrades_the_profile() {
        let dir = std::env::temp_dir().join(format!("tpupoint-fault-raw-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tp = TpuPoint::builder()
            .analyzer(true)
            .output_dir(&dir)
            .store_fault(1.0, 7)
            .store_retries(0)
            .build();
        let run = tp.profile(demo()).expect("profiling still completes");
        assert!(run.profile.store_errors > 0);
        assert!(run.profile.is_degraded());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn optimize_delegates_and_preserves_output() {
        let tp = TpuPoint::builder().build();
        let mut cfg = demo();
        cfg.train_steps = 20;
        let report = tp.optimize(cfg);
        assert!(report.output_preserved());
    }
}
