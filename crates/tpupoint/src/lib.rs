//! # tpupoint
//!
//! The facade crate of the TPUPoint reproduction: *automatic
//! characterization of hardware-accelerated machine-learning behavior for
//! cloud computing* (Wudenhe & Tseng, ISPASS 2021), rebuilt as a pure-Rust
//! simulation-backed toolchain.
//!
//! The paper's Figure 2 workflow —
//!
//! ```python
//! tpprofiler = TPUPoint(...)
//! tpprofiler.Start(analyzer=True)
//! estimator.train(...)
//! tpprofiler.Stop()
//! ```
//!
//! — maps here to:
//!
//! ```
//! use tpupoint::{TpuPoint, workloads::{build, BuildOptions, WorkloadId}};
//! use tpupoint::hw::TpuGeneration;
//!
//! # fn main() -> std::io::Result<()> {
//! let config = build(
//!     WorkloadId::DcganCifar10,
//!     TpuGeneration::V2,
//!     &BuildOptions { scale: 0.005, ..BuildOptions::default() },
//! );
//! let tp = TpuPoint::builder().analyzer(true).build();
//! let run = tp.profile(config)?;            // Start + train + Stop
//! let analysis = tp.analyze(&run.profile)?; // TPUPoint-Analyzer
//! assert!(analysis.ols_phases.coverage_top(3) > 0.5);
//! # Ok(())
//! # }
//! ```
//!
//! The sub-crates are re-exported under topic modules: [`sim`], [`hw`],
//! [`graph`], [`runtime`], [`profiler`], [`analyzer`], [`optimizer`],
//! [`workloads`], and [`obs`].

pub mod facade;
pub mod fleet;
pub mod serve;

pub use facade::{AnalysisArtifacts, ProfiledRun, ProfilerHandle, TpuPoint, TpuPointBuilder};
pub use fleet::{FleetJobRequest, FleetSession};
pub use serve::ServeSession;

/// The discrete-event simulation engine.
pub mod sim {
    pub use tpupoint_simcore::*;
}

/// Hardware models: TPU chips, hosts, links, cost model.
pub mod hw {
    pub use tpupoint_hw::*;
}

/// The TensorFlow-like graph substrate.
pub mod graph {
    pub use tpupoint_graph::*;
}

/// The training-job executor.
pub mod runtime {
    pub use tpupoint_runtime::*;
}

/// TPUPoint-Profiler.
pub mod profiler {
    pub use tpupoint_profiler::*;
}

/// TPUPoint-Analyzer.
pub mod analyzer {
    pub use tpupoint_analyzer::*;
}

/// TPUPoint-Optimizer.
pub mod optimizer {
    pub use tpupoint_optimizer::*;
}

/// The paper's workload suite.
pub mod workloads {
    pub use tpupoint_workloads::*;
}

/// Self-observability: the metrics registry, span tracer, exporters, and
/// the [`obs::ObsReport`] summarizer the toolchain instruments itself
/// with.
pub mod obs {
    pub use tpupoint_obs::*;
}

/// Convenience imports for examples and the benchmark harness.
pub mod prelude {
    pub use crate::facade::{AnalysisArtifacts, ProfiledRun, TpuPoint};
    pub use tpupoint_analyzer::{Analyzer, PhaseSet};
    pub use tpupoint_hw::{TpuChipSpec, TpuGeneration};
    pub use tpupoint_optimizer::{OptimizerReport, TpuPointOptimizer};
    pub use tpupoint_profiler::{Profile, ProfilerOptions, ProfilerSink};
    pub use tpupoint_runtime::{JobConfig, RunReport, TrainingJob};
    pub use tpupoint_simcore::trace::NullSink;
    pub use tpupoint_workloads::{build, BuildOptions, Variant, WorkloadId};
}

/// Re-exports used by the calibration probe binary.
#[doc(hidden)]
pub mod prelude_probe {
    pub use tpupoint_hw::TpuGeneration;
    pub use tpupoint_runtime::TrainingJob;
    pub use tpupoint_simcore::trace::NullSink;
    pub use tpupoint_workloads::{build, BuildOptions, WorkloadId};
}
