//! Minimal CSV writing for experiment outputs.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Writes `rows` (with a `header`) to `<dir>/<name>.csv`, creating the
/// directory as needed. Returns the file path.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv(
    dir: &Path,
    name: &str,
    header: &str,
    rows: impl IntoIterator<Item = String>,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut w = BufWriter::new(File::create(&path)?);
    writeln!(w, "{header}")?;
    for row in rows {
        writeln!(w, "{row}")?;
    }
    w.flush()?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let dir = std::env::temp_dir().join(format!("tpupoint-csv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_csv(&dir, "test", "a,b", ["1,2".to_owned(), "3,4".to_owned()]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
