//! Calibration probe: iteratively tunes each workload's host cost and MXU
//! efficiency to the per-workload targets, then prints the constants to
//! hardcode in `tpupoint-workloads` and a final report for both TPU
//! generations.

use tpupoint::prelude::*;

/// `(workload, idle target v2, mxu target v2)`.
fn targets() -> Vec<(WorkloadId, f64, f64)> {
    vec![
        (WorkloadId::BertMrpc, 0.40, 0.18),
        (WorkloadId::BertSquad, 0.33, 0.22),
        (WorkloadId::BertCola, 0.42, 0.17),
        (WorkloadId::BertMnli, 0.33, 0.22),
        (WorkloadId::DcganCifar10, 0.50, 0.12),
        (WorkloadId::DcganMnist, 0.55, 0.10),
        (WorkloadId::QanetSquad, 0.30, 0.16),
        (WorkloadId::RetinanetCoco, 0.35, 0.46),
        (WorkloadId::ResnetImagenet, 0.18, 0.45),
    ]
}

/// Measures through the same facade path the figures use: profiling
/// overhead applied, metrics from the profiler's statistical records.
fn measure(id: WorkloadId, generation: TpuGeneration, host_us: f64, eff: f64) -> (f64, f64, f64) {
    let opts = BuildOptions {
        scale: id.default_sim_scale(),
        ..BuildOptions::default()
    };
    let mut cfg = build(id, generation, &opts);
    cfg.dataset.host_us_per_batch = host_us;
    cfg.chip.mxu_efficiency = eff;
    let tp = TpuPoint::builder().analyzer(false).build();
    let run = tp.profile(cfg).expect("in-memory profiling");
    (
        run.profile.steady_tpu_idle_fraction(),
        run.profile.steady_mxu_utilization(),
        run.report.steady_window.as_secs_f64(),
    )
}

fn main() {
    for (id, idle_t, mxu_t) in targets() {
        let opts = BuildOptions {
            scale: id.default_sim_scale(),
            ..BuildOptions::default()
        };
        let base = build(id, TpuGeneration::V2, &opts);
        let mut host_us = base.dataset.host_us_per_batch.max(1_000.0);
        let mut eff = base.chip.mxu_efficiency;
        for _round in 0..12 {
            let (idle, mxu, _) = measure(id, TpuGeneration::V2, host_us, eff);
            // Window correction: mxu ∝ 1/window (fixed flops), so scale the
            // host knob by the mxu error.
            if mxu > 1e-6 {
                host_us = (host_us * (mxu / mxu_t).clamp(0.5, 2.0)).clamp(1_000.0, 5.0e7);
            }
            // Busy correction: busy fraction should be 1 - idle_target;
            // busy time ∝ 1/eff for compute-bound graphs.
            let busy_frac = 1.0 - idle;
            let busy_target = 1.0 - idle_t;
            eff = (eff * (busy_frac / busy_target).clamp(0.6, 1.6)).clamp(0.05, 0.92);
        }
        let final_measure = |generation: TpuGeneration| {
            let opts = BuildOptions {
                scale: id.default_sim_scale(),
                ..BuildOptions::default()
            };
            // No overrides: exercise the suite's hardcoded calibration,
            // including the V3 per-MXU efficiency derating.
            let tp = TpuPoint::builder().analyzer(false).build();
            let run = tp.profile(build(id, generation, &opts)).expect("profiling");
            (
                run.profile.steady_tpu_idle_fraction(),
                run.profile.steady_mxu_utilization(),
            )
        };
        let (i2, m2) = final_measure(TpuGeneration::V2);
        let (i3, m3) = final_measure(TpuGeneration::V3);
        println!(
            "{:18} host_us {:>10.0} eff {:.3} | V2 idle {:4.1}% (t {:4.1}) mxu {:4.1}% (t {:4.1}) | V3 idle {:4.1}% mxu {:4.1}%",
            id.label(),
            host_us,
            eff,
            i2 * 100.0,
            idle_t * 100.0,
            m2 * 100.0,
            mxu_t * 100.0,
            i3 * 100.0,
            m3 * 100.0
        );
    }
}
