//! Regenerates every table and figure of the TPUPoint paper's evaluation.
//!
//! ```text
//! cargo run -p tpupoint-bench --release --bin reproduce            # all
//! cargo run -p tpupoint-bench --release --bin reproduce -- fig10  # one
//! cargo run -p tpupoint-bench --release --bin reproduce -- --out results fig4 fig6
//! ```
//!
//! CSV series land in `results/` (or `--out <dir>`); a summary of each
//! experiment prints to stdout. See EXPERIMENTS.md for the paper-versus-
//! measured comparison.

use std::path::PathBuf;
use std::process::ExitCode;
use tpupoint_bench::{experiments, Suite};

fn main() -> ExitCode {
    let mut out_dir = PathBuf::from("results");
    let mut requested: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: reproduce [--out DIR] [EXPERIMENT...]");
                println!("experiments: {}", experiments::ALL.join(" "));
                return ExitCode::SUCCESS;
            }
            other => requested.push(other.to_owned()),
        }
    }
    if requested.is_empty() {
        requested = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }

    let suite = Suite::new();
    let started = std::time::Instant::now();
    for id in &requested {
        let t0 = std::time::Instant::now();
        match experiments::run(id, &suite, &out_dir) {
            Ok(summary) => {
                println!(
                    "{summary}  [{id} done in {:.2}s]\n",
                    t0.elapsed().as_secs_f64()
                );
            }
            Err(err) => {
                eprintln!("experiment {id} failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "wrote {} experiment(s) to {} in {:.1}s",
        requested.len(),
        out_dir.display(),
        started.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
