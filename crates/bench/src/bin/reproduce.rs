//! Regenerates every table and figure of the TPUPoint paper's evaluation.
//!
//! ```text
//! cargo run -p tpupoint-bench --release --bin reproduce            # all
//! cargo run -p tpupoint-bench --release --bin reproduce -- fig10  # one
//! cargo run -p tpupoint-bench --release --bin reproduce -- --out results fig4 fig6
//! cargo run -p tpupoint-bench --release --bin reproduce -- --grid fig10 fig12
//! ```
//!
//! CSV series land in `results/` (or `--out <dir>`); a summary of each
//! experiment prints to stdout. See EXPERIMENTS.md for the paper-versus-
//! measured comparison.
//!
//! `--grid` runs the requested experiments concurrently on the shared
//! worker pool (sized by `TPUPOINT_THREADS`), sharing one suite cache so
//! each workload cell is still profiled exactly once. The `bench_*`
//! experiments always run serially afterwards — they resize the pool and
//! measure wall time, which concurrency would corrupt.

use std::path::PathBuf;
use std::process::ExitCode;
use tpupoint_bench::{experiments, Suite};

fn main() -> ExitCode {
    let mut out_dir = PathBuf::from("results");
    let mut requested: Vec<String> = Vec::new();
    let mut grid = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--grid" => grid = true,
            "--help" | "-h" => {
                println!("usage: reproduce [--out DIR] [--grid] [EXPERIMENT...]");
                println!("experiments: {}", experiments::ALL.join(" "));
                println!("--grid runs experiments concurrently on the shared pool");
                println!("       (bench_* experiments still run serially afterwards)");
                return ExitCode::SUCCESS;
            }
            other => requested.push(other.to_owned()),
        }
    }
    if requested.is_empty() {
        requested = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }

    let suite = Suite::new();
    let mut total_us = 0u64;

    let (parallel, serial): (Vec<String>, Vec<String>) = if grid {
        requested
            .into_iter()
            .partition(|id| experiments::grid_safe(id))
    } else {
        (Vec::new(), requested)
    };
    let experiment_count = parallel.len() + serial.len();

    if !parallel.is_empty() {
        // Per-experiment timing uses a local Instant: the global span
        // histogram would charge every experiment with everyone's overlap.
        let outcomes = tpupoint_par::pool().par_map(&parallel, |_, id| {
            let t = std::time::Instant::now();
            let result = experiments::run(id, &suite, &out_dir);
            (t.elapsed().as_micros() as u64, result)
        });
        let wall = outcomes.iter().map(|(us, _)| *us).max().unwrap_or(0);
        total_us += wall;
        for (id, (elapsed_us, result)) in parallel.iter().zip(outcomes) {
            match result {
                Ok(summary) => {
                    println!(
                        "{summary}  [{id} done in {:.2}s, grid]\n",
                        elapsed_us as f64 / 1e6
                    );
                }
                Err(err) => {
                    eprintln!("experiment {id} failed: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    // Timing comes from the obs self-tracer instead of ad-hoc Instants:
    // each experiment runs under a span, and the per/total durations are
    // read back from the `span.bench.experiment` histogram.
    let experiment_hist = tpupoint_obs::metrics().histogram("span.bench.experiment");
    for id in &serial {
        let before_us = experiment_hist.snapshot().sum;
        let result = {
            let _span = tpupoint_obs::span!("bench.experiment", id = id.as_str());
            experiments::run(id, &suite, &out_dir)
        };
        let elapsed_us = experiment_hist.snapshot().sum.saturating_sub(before_us);
        total_us += elapsed_us;
        match result {
            Ok(summary) => {
                println!(
                    "{summary}  [{id} done in {:.2}s]\n",
                    elapsed_us as f64 / 1e6
                );
            }
            Err(err) => {
                eprintln!("experiment {id} failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "wrote {} experiment(s) to {} in {:.1}s",
        experiment_count,
        out_dir.display(),
        total_us as f64 / 1e6
    );
    ExitCode::SUCCESS
}
