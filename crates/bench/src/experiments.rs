//! One function per table/figure of the paper's evaluation.
//!
//! Every function prints the series the paper plots and writes it as CSV;
//! absolute values come from the simulated platform, so the *shapes*
//! (who wins, where elbows/crossovers fall) are the reproduction target.

use crate::csvout::write_csv;
use crate::suite::Suite;
use std::io;
use std::path::Path;
use tpupoint::analyzer::{dbscan, kmeans};
use tpupoint::optimizer::TpuPointOptimizer;
use tpupoint::prelude::*;

/// All experiment ids: the paper's artifacts in paper order, then the
/// beyond-the-paper ablations.
pub const ALL: &[&str] = &[
    "table1",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table2",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "ablation_fusion",
    "ablation_pipeline",
    "ablation_substitution",
    "ablation_seeds",
    "bench_analyzer",
    "bench_pipeline",
    "bench_streaming",
    "bench_simcore",
    "bench_fleet",
    "bench_store",
];

/// True for experiments that are safe to run concurrently from a
/// grid-parallel `reproduce --grid` sweep. The `bench_*` experiments are
/// excluded: they resize the global worker pool and measure real wall
/// time, both of which other in-flight experiments would corrupt.
pub fn grid_safe(id: &str) -> bool {
    !id.starts_with("bench_")
}

/// Runs one experiment by id, writing CSVs under `out_dir` and returning a
/// console summary.
///
/// # Errors
///
/// Returns an error if output files cannot be written, or
/// `InvalidInput` for an unknown id.
pub fn run(id: &str, suite: &Suite, out_dir: &Path) -> io::Result<String> {
    match id {
        "table1" => table1(out_dir),
        "fig4" => fig4(suite, out_dir),
        "fig5" => fig5(suite, out_dir),
        "fig6" => fig6(suite, out_dir),
        "fig7" => fig7(suite, out_dir),
        "fig8" => fig8(suite, out_dir),
        "fig9" => fig9(suite, out_dir),
        "table2" => table2(suite, out_dir),
        "fig10" => fig10_11(suite, out_dir, "fig10", Metric::Idle),
        "fig11" => fig10_11(suite, out_dir, "fig11", Metric::Mxu),
        "fig12" => fig12_13(suite, out_dir, "fig12", Metric::Idle),
        "fig13" => fig12_13(suite, out_dir, "fig13", Metric::Mxu),
        "fig14" => fig14(suite, out_dir),
        "fig15" => fig15_16(suite, out_dir, "fig15", Metric::Idle),
        "fig16" => fig15_16(suite, out_dir, "fig16", Metric::Mxu),
        "ablation_fusion" => ablation_fusion(suite, out_dir),
        "ablation_pipeline" => ablation_pipeline(suite, out_dir),
        "ablation_substitution" => ablation_substitution(suite, out_dir),
        "ablation_seeds" => ablation_seeds(suite, out_dir),
        "bench_analyzer" => bench_analyzer(suite, out_dir),
        "bench_pipeline" => bench_pipeline(out_dir),
        "bench_streaming" => bench_streaming(out_dir),
        "bench_simcore" => bench_simcore(out_dir),
        "bench_fleet" => bench_fleet(out_dir),
        "bench_store" => bench_store(out_dir),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unknown experiment `{other}`; known: {ALL:?}"),
        )),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Metric {
    Idle,
    Mxu,
}

impl Metric {
    fn of(self, profile: &Profile) -> f64 {
        match self {
            Metric::Idle => profile.steady_tpu_idle_fraction(),
            Metric::Mxu => profile.steady_mxu_utilization(),
        }
    }

    fn of_report(self, report: &RunReport) -> f64 {
        match self {
            Metric::Idle => report.tpu_idle_fraction(),
            Metric::Mxu => report.mxu_utilization(),
        }
    }

    fn label(self) -> &'static str {
        match self {
            Metric::Idle => "tpu_idle_fraction",
            Metric::Mxu => "mxu_utilization",
        }
    }
}

/// Table I: workload breakdown and specifications.
fn table1(out_dir: &Path) -> io::Result<String> {
    let mut rows = Vec::new();
    let mut summary = String::from("Table I — workload breakdown:\n");
    for id in WorkloadId::paper_nine() {
        let cfg = build(id, TpuGeneration::V2, &BuildOptions::default());
        let row = format!(
            "{},{},{},{},{:.2},{},{}",
            id.label(),
            cfg.model,
            cfg.dataset.name,
            cfg.dataset.num_examples,
            cfg.dataset.size_bytes as f64 / (1024.0 * 1024.0),
            cfg.pipeline.batch_size,
            cfg.train_steps,
        );
        summary.push_str(&format!(
            "  {:18} {:10} batch {:5} train_steps {:7} dataset {:9.2} MiB\n",
            id.label(),
            cfg.dataset.name,
            cfg.pipeline.batch_size,
            cfg.train_steps,
            cfg.dataset.size_bytes as f64 / (1024.0 * 1024.0),
        ));
        rows.push(row);
    }
    write_csv(
        out_dir,
        "table1",
        "workload,model,dataset,examples,size_mib,batch_size,train_steps",
        rows,
    )?;
    Ok(summary)
}

/// Figure 4: k-means sum of squared distances for k = 1..15.
fn fig4(suite: &Suite, out_dir: &Path) -> io::Result<String> {
    let mut rows = Vec::new();
    let mut summary = String::from("Figure 4 — k-means elbow (normalized SSE, elbow k):\n");
    for id in WorkloadId::paper_nine() {
        let run = suite.tuned(id, TpuGeneration::V2);
        let analyzer = Analyzer::new(&run.profile);
        let sweep = analyzer.kmeans_sweep(1..=15);
        let base = sweep.first().map(|(_, s)| *s).unwrap_or(1.0).max(1e-12);
        for (k, sse) in &sweep {
            rows.push(format!("{},{},{:.6}", id.label(), k, sse / base));
        }
        let elbow = kmeans::elbow_k(&sweep).unwrap_or(0);
        summary.push_str(&format!("  {:18} elbow at k = {}\n", id.label(), elbow));
    }
    write_csv(out_dir, "fig4", "workload,k,normalized_sse", rows)?;
    Ok(summary)
}

/// Figure 5: DBSCAN noise ratio across the min-samples grid.
fn fig5(suite: &Suite, out_dir: &Path) -> io::Result<String> {
    let mut rows = Vec::new();
    let mut summary = String::from("Figure 5 — DBSCAN noise ratio (elbow min-samples):\n");
    for id in WorkloadId::paper_nine() {
        let run = suite.tuned(id, TpuGeneration::V2);
        let analyzer = Analyzer::new(&run.profile);
        match analyzer.dbscan_sweep() {
            Ok(sweep) => {
                for (m, noise, clusters) in &sweep {
                    rows.push(format!("{},{},{:.6},{}", id.label(), m, noise, clusters));
                }
                let elbow = dbscan::elbow_min_samples(&sweep).unwrap_or(0);
                let at = sweep.iter().find(|(m, _, _)| *m == elbow);
                summary.push_str(&format!(
                    "  {:18} elbow at min_samples = {:3} ({} clusters)\n",
                    id.label(),
                    elbow,
                    at.map(|(_, _, c)| *c).unwrap_or(0)
                ));
            }
            Err(err) => {
                summary.push_str(&format!("  {:18} {}\n", id.label(), err));
                rows.push(format!("{},,,memory-limit", id.label()));
            }
        }
    }
    write_csv(
        out_dir,
        "fig5",
        "workload,min_samples,noise_ratio,clusters",
        rows,
    )?;
    Ok(summary)
}

/// Figure 6: OLS phase counts vs similarity threshold.
fn fig6(suite: &Suite, out_dir: &Path) -> io::Result<String> {
    let thresholds: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let mut rows = Vec::new();
    let mut summary = String::from("Figure 6 — OLS phases vs threshold (70% / 100%):\n");
    for id in WorkloadId::paper_nine() {
        let run = suite.tuned(id, TpuGeneration::V2);
        let analyzer = Analyzer::new(&run.profile);
        let sweep = analyzer.ols_threshold_sweep(&thresholds);
        for (t, phases) in &sweep {
            rows.push(format!("{},{:.0},{}", id.label(), t * 100.0, phases));
        }
        let at = |t: f64| {
            sweep
                .iter()
                .find(|(x, _)| (*x - t).abs() < 1e-9)
                .map(|(_, p)| *p)
                .unwrap_or(0)
        };
        summary.push_str(&format!(
            "  {:18} phases@70% = {:3}   phases@100% = {:4}\n",
            id.label(),
            at(0.7),
            at(1.0)
        ));
    }
    write_csv(out_dir, "fig6", "workload,threshold_pct,phases", rows)?;
    Ok(summary)
}

fn coverage_rows(
    name: &str,
    sets: Vec<(WorkloadId, PhaseSet)>,
    out_dir: &Path,
) -> io::Result<String> {
    let mut rows = Vec::new();
    let mut summary = format!("{name} — top-3 phase coverage of execution time:\n");
    for (id, set) in sets {
        let fractions = set.top_coverages(3);
        let total: f64 = fractions.iter().sum();
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4},{}",
            id.label(),
            fractions.first().copied().unwrap_or(0.0),
            fractions.get(1).copied().unwrap_or(0.0),
            fractions.get(2).copied().unwrap_or(0.0),
            total,
            set.len(),
        ));
        summary.push_str(&format!(
            "  {:18} top3 = {:5.1}%  (phases: {})\n",
            id.label(),
            total * 100.0,
            set.len()
        ));
    }
    write_csv(
        out_dir,
        name,
        "workload,phase1,phase2,phase3,top3_total,phase_count",
        rows,
    )?;
    Ok(summary)
}

/// Figure 7: top-3 coverage, OLS at the 70% threshold.
fn fig7(suite: &Suite, out_dir: &Path) -> io::Result<String> {
    let sets = WorkloadId::paper_nine()
        .into_iter()
        .map(|id| {
            let run = suite.tuned(id, TpuGeneration::V2);
            (id, Analyzer::new(&run.profile).ols_phases(0.7))
        })
        .collect();
    coverage_rows("fig7", sets, out_dir)
}

/// Figure 8: top-3 coverage, DBSCAN with min-samples 30 (noise counted as
/// a cluster).
fn fig8(suite: &Suite, out_dir: &Path) -> io::Result<String> {
    let sets = WorkloadId::paper_nine()
        .into_iter()
        .map(|id| {
            let run = suite.tuned(id, TpuGeneration::V2);
            let set = Analyzer::new(&run.profile)
                .dbscan_phases(30)
                .expect("sim-scale profiles fit the memory limit");
            (id, set)
        })
        .collect();
    coverage_rows("fig8", sets, out_dir)
}

/// Figure 9: top-3 coverage, k-means with k = 5.
fn fig9(suite: &Suite, out_dir: &Path) -> io::Result<String> {
    let sets = WorkloadId::paper_nine()
        .into_iter()
        .map(|id| {
            let run = suite.tuned(id, TpuGeneration::V2);
            (id, Analyzer::new(&run.profile).kmeans_phases(5))
        })
        .collect();
    coverage_rows("fig9", sets, out_dir)
}

/// Table II: top-5 operators of the most time-consuming phase per
/// workload and algorithm, plus per-generation appearance totals.
fn table2(suite: &Suite, out_dir: &Path) -> io::Result<String> {
    use std::collections::BTreeMap;
    let mut rows = Vec::new();
    let mut totals: BTreeMap<(String, &'static str, &'static str), u32> = BTreeMap::new();
    for generation in [TpuGeneration::V2, TpuGeneration::V3] {
        let gen_label = match generation {
            TpuGeneration::V2 => "TPUv2",
            TpuGeneration::V3 => "TPUv3",
        };
        for id in WorkloadId::paper_nine() {
            let run = suite.tuned(id, generation);
            let analyzer = Analyzer::new(&run.profile);
            let sets: Vec<(&str, PhaseSet)> = vec![
                ("k-means", analyzer.kmeans_phases(5)),
                (
                    "DBSCAN",
                    analyzer
                        .dbscan_phases(30)
                        .expect("sim-scale profiles fit the memory limit"),
                ),
                ("OLS", analyzer.ols_phases(0.7)),
            ];
            for (algo, set) in sets {
                let Some(top) = analyzer.top_operators_of_longest(&set, 5) else {
                    continue;
                };
                for (side, list) in [("host", &top.host), ("tpu", &top.tpu)] {
                    for (rank, (op, dur, count)) in list.iter().enumerate() {
                        rows.push(format!(
                            "{gen_label},{},{algo},{side},{},{op},{},{count}",
                            id.label(),
                            rank + 1,
                            dur.as_micros(),
                        ));
                        *totals.entry((op.clone(), side, gen_label)).or_default() += 1;
                    }
                }
            }
        }
    }
    write_csv(
        out_dir,
        "table2",
        "generation,workload,algorithm,side,rank,op,total_us,invocations",
        rows,
    )?;
    let mut total_rows = Vec::new();
    let mut summary = String::from(
        "Table II — appearances of each op in per-(workload,algorithm) top-5 lists:\n",
    );
    // Collect per-op totals across generations for the summary.
    let mut by_op: BTreeMap<(String, &'static str), (u32, u32)> = BTreeMap::new();
    for ((op, side, generation), count) in &totals {
        let entry = by_op.entry((op.clone(), side)).or_default();
        if *generation == "TPUv2" {
            entry.0 = *count;
        } else {
            entry.1 = *count;
        }
    }
    let mut ranked: Vec<_> = by_op.into_iter().collect();
    ranked.sort_by_key(|(_, (v2, v3))| std::cmp::Reverse(v2 + v3));
    for ((op, side), (v2, v3)) in &ranked {
        total_rows.push(format!("{op},{side},{v2},{v3}"));
    }
    for ((op, side), (v2, v3)) in ranked.iter().take(12) {
        summary.push_str(&format!("  {side:4} {op:32} TPUv2 {v2:3}   TPUv3 {v3:3}\n"));
    }
    write_csv(
        out_dir,
        "table2_totals",
        "op,side,total_tpuv2,total_tpuv3",
        total_rows,
    )?;
    Ok(summary)
}

/// Figures 10 and 11: idle / MXU across workloads on both generations.
fn fig10_11(suite: &Suite, out_dir: &Path, name: &str, metric: Metric) -> io::Result<String> {
    let mut rows = Vec::new();
    let mut summary = format!("{name} — {} (TPUv2 / TPUv3):\n", metric.label());
    let mut sums = (0.0, 0.0);
    for id in WorkloadId::paper_nine() {
        let v2 = metric.of(&suite.tuned(id, TpuGeneration::V2).profile);
        let v3 = metric.of(&suite.tuned(id, TpuGeneration::V3).profile);
        sums.0 += v2;
        sums.1 += v3;
        rows.push(format!("{},{:.4},{:.4}", id.label(), v2, v3));
        summary.push_str(&format!(
            "  {:18} {:5.1}%  /  {:5.1}%\n",
            id.label(),
            v2 * 100.0,
            v3 * 100.0
        ));
    }
    let n = WorkloadId::paper_nine().len() as f64;
    summary.push_str(&format!(
        "  {:18} {:5.1}%  /  {:5.1}%\n",
        "AVERAGE",
        sums.0 / n * 100.0,
        sums.1 / n * 100.0
    ));
    write_csv(
        out_dir,
        name,
        &format!("workload,{}_v2,{}_v3", metric.label(), metric.label()),
        rows,
    )?;
    Ok(summary)
}

/// Figures 12 and 13: reduced-dataset runs (QANet, RetinaNet halved;
/// ResNet fed CIFAR-10), compared with the originals.
fn fig12_13(suite: &Suite, out_dir: &Path, name: &str, metric: Metric) -> io::Result<String> {
    let pairs = [
        (WorkloadId::QanetSquad, WorkloadId::QanetSquadHalf),
        (WorkloadId::RetinanetCoco, WorkloadId::RetinanetCocoHalf),
        (WorkloadId::ResnetImagenet, WorkloadId::ResnetCifar10),
    ];
    let mut rows = Vec::new();
    let mut summary = format!(
        "{name} — {} with reduced datasets (TPUv2 / TPUv3, original in parens):\n",
        metric.label()
    );
    for (orig, reduced) in pairs {
        let r2 = metric.of(&suite.tuned(reduced, TpuGeneration::V2).profile);
        let r3 = metric.of(&suite.tuned(reduced, TpuGeneration::V3).profile);
        let o2 = metric.of(&suite.tuned(orig, TpuGeneration::V2).profile);
        let o3 = metric.of(&suite.tuned(orig, TpuGeneration::V3).profile);
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4}",
            reduced.label(),
            r2,
            r3,
            o2,
            o3
        ));
        summary.push_str(&format!(
            "  {:18} {:5.1}% ({:5.1}%)  /  {:5.1}% ({:5.1}%)\n",
            reduced.label(),
            r2 * 100.0,
            o2 * 100.0,
            r3 * 100.0,
            o3 * 100.0
        ));
    }
    write_csv(
        out_dir,
        name,
        &format!(
            "workload,{m}_v2,{m}_v3,original_{m}_v2,original_{m}_v3",
            m = metric.label()
        ),
        rows,
    )?;
    Ok(summary)
}

/// Figure 14: TPUPoint-Optimizer speedups over default parameters on
/// TPUv2. Long-running workloads (QANet, RetinaNet) benefit; short ones
/// (BERT, DCGAN) do not amortize the tuning overhead.
fn fig14(suite: &Suite, out_dir: &Path) -> io::Result<String> {
    let entries = [
        (WorkloadId::QanetSquad, true),
        (WorkloadId::RetinanetCoco, true),
        (WorkloadId::BertMrpc, false),
        (WorkloadId::DcganCifar10, false),
    ];
    let mut rows = Vec::new();
    let mut summary =
        String::from("Figure 14 — TPUPoint-Optimizer speedup over defaults (TPUv2):\n");
    for (id, long_running) in entries {
        let cfg = suite.config(id, TpuGeneration::V2, Variant::Tuned);
        let report = TpuPointOptimizer::new(cfg).optimize();
        let full_steps = build(id, TpuGeneration::V2, &BuildOptions::default())
            .step_plan()
            .len() as u64;
        let projected = report.projected_full_run_speedup(full_steps);
        let throughput = report.throughput_speedup();
        assert!(report.output_preserved(), "{id}: output guard violated");
        rows.push(format!(
            "{},{:.4},{:.4},{},{}",
            id.label(),
            projected,
            throughput,
            full_steps,
            if long_running { "long" } else { "short" }
        ));
        summary.push_str(&format!(
            "  {:18} projected {:.3}x (throughput {:.3}x, {} run)\n",
            id.label(),
            projected,
            throughput,
            if long_running { "long" } else { "short" }
        ));
    }
    write_csv(
        out_dir,
        "fig14",
        "workload,projected_speedup,throughput_speedup,full_plan_steps,class",
        rows,
    )?;
    Ok(summary)
}

/// Figures 15 and 16: naive implementations with and without
/// TPUPoint-Optimizer on both generations.
fn fig15_16(suite: &Suite, out_dir: &Path, name: &str, metric: Metric) -> io::Result<String> {
    let ids = [WorkloadId::QanetSquad, WorkloadId::RetinanetCoco];
    let mut rows = Vec::new();
    let mut summary = format!(
        "{name} — naive implementations, {} without → with optimizer:\n",
        metric.label()
    );
    for id in ids {
        for generation in [TpuGeneration::V2, TpuGeneration::V3] {
            let cfg = suite.config(id, generation, Variant::Naive);
            let report = TpuPointOptimizer::new(cfg).optimize();
            let before = metric.of_report(&report.baseline);
            let after = metric.of_report(&report.optimized);
            let gen_label = match generation {
                TpuGeneration::V2 => "TPUv2",
                TpuGeneration::V3 => "TPUv3",
            };
            rows.push(format!(
                "{},{gen_label},{:.4},{:.4}",
                id.label(),
                before,
                after
            ));
            summary.push_str(&format!(
                "  {:18} {gen_label}: {:5.1}% → {:5.1}%\n",
                id.label(),
                before * 100.0,
                after * 100.0
            ));
        }
    }
    write_csv(
        out_dir,
        name,
        &format!(
            "workload,generation,naive_{m},optimized_{m}",
            m = metric.label()
        ),
        rows,
    )?;
    Ok(summary)
}

/// Ablation: XLA fusion on versus off. Quantifies why `fusion` tops
/// Table II — without the pass, element-wise intermediates round-trip HBM
/// and steps slow down.
fn ablation_fusion(suite: &Suite, out_dir: &Path) -> io::Result<String> {
    use tpupoint::workloads::models;
    let mut rows = Vec::new();
    let mut summary = String::from("Ablation — fusion on/off (TPUv2):\n");
    let graphs: Vec<(
        &str,
        tpupoint::graph::Graph,
        tpupoint::graph::Graph,
        WorkloadId,
    )> = vec![
        (
            "BERT",
            models::bert::train_graph_raw(32, 128),
            models::bert::train_graph(32, 128),
            WorkloadId::BertMrpc,
        ),
        (
            "DCGAN",
            models::dcgan::train_graph_raw(1024),
            models::dcgan::train_graph(1024),
            WorkloadId::DcganCifar10,
        ),
        (
            "ResNet-50",
            models::resnet::train_graph_raw(1024, 224),
            models::resnet::train_graph(1024, 224),
            WorkloadId::ResnetImagenet,
        ),
    ];
    for (name, raw, fused, id) in graphs {
        // Static effect: nodes and HBM traffic.
        let hbm_saved = 1.0 - fused.total_hbm_bytes() / raw.total_hbm_bytes();
        // Dynamic effect: run short jobs with each graph.
        let mut unfused_cfg = suite.config(id, TpuGeneration::V2, Variant::Tuned);
        unfused_cfg.train_steps = unfused_cfg.train_steps.min(60);
        unfused_cfg.steps_per_eval = None;
        unfused_cfg.eval_steps = 0;
        let mut fused_cfg = unfused_cfg.clone();
        unfused_cfg.train_graph = raw.clone();
        fused_cfg.train_graph = fused.clone();
        let r_raw = TrainingJob::new(unfused_cfg).run(&mut NullSink);
        let r_fused = TrainingJob::new(fused_cfg).run(&mut NullSink);
        let speedup = r_raw.steady_window.as_secs_f64() / r_fused.steady_window.as_secs_f64();
        rows.push(format!(
            "{name},{},{},{:.4},{:.4}",
            raw.node_count(),
            fused.node_count(),
            hbm_saved,
            speedup
        ));
        summary.push_str(&format!(
            "  {:10} nodes {:>4} -> {:>3}, HBM traffic -{:.1}%, step speedup {:.3}x\n",
            name,
            raw.node_count(),
            fused.node_count(),
            hbm_saved * 100.0,
            speedup
        ));
    }
    write_csv(
        out_dir,
        "ablation_fusion",
        "model,nodes_raw,nodes_fused,hbm_traffic_saved,fused_speedup",
        rows,
    )?;
    Ok(summary)
}

/// Ablation: pipeline-knob sweep on QANet — the response surface the
/// optimizer hill-climbs (idle falls with threads until the TPU binds).
fn ablation_pipeline(suite: &Suite, out_dir: &Path) -> io::Result<String> {
    let mut rows = Vec::new();
    let mut summary =
        String::from("Ablation — decode threads vs idle/throughput (QANet, TPUv2):\n");
    for threads in [1u32, 2, 4, 8, 16, 32, 64] {
        let mut cfg = suite.config(WorkloadId::QanetSquad, TpuGeneration::V2, Variant::Tuned);
        cfg.train_steps = cfg.train_steps.min(200);
        cfg.steps_per_eval = None;
        cfg.eval_steps = 0;
        cfg.pipeline.num_parallel_calls = threads;
        let report = TrainingJob::new(cfg).run(&mut NullSink);
        rows.push(format!(
            "{threads},{:.4},{:.3}",
            report.tpu_idle_fraction(),
            report.throughput_steps_per_sec()
        ));
        summary.push_str(&format!(
            "  threads {:>2}: idle {:>5.1}%  {:>7.2} steps/s\n",
            threads,
            report.tpu_idle_fraction() * 100.0,
            report.throughput_steps_per_sec()
        ));
    }
    write_csv(
        out_dir,
        "ablation_pipeline",
        "decode_threads,tpu_idle_fraction,steps_per_sec",
        rows,
    )?;
    Ok(summary)
}

/// Ablation: operator-substitution rate vs OLS fragmentation at the 100%
/// threshold — the design choice behind Figure 6's per-workload tails.
fn ablation_substitution(suite: &Suite, out_dir: &Path) -> io::Result<String> {
    let mut rows = Vec::new();
    let mut summary =
        String::from("Ablation — substitution rate vs OLS phases @100% (BERT-CoLA, TPUv2):\n");
    for prob in [0.0, 0.005, 0.01, 0.02, 0.05] {
        let mut cfg = suite.config(WorkloadId::BertCola, TpuGeneration::V2, Variant::Tuned);
        cfg.substitution_prob = prob;
        let tp = TpuPoint::builder().analyzer(false).build();
        let run = tp.profile(cfg)?;
        let analyzer = Analyzer::new(&run.profile);
        let sweep = analyzer.ols_threshold_sweep(&[0.7, 1.0]);
        rows.push(format!("{prob},{},{}", sweep[0].1, sweep[1].1));
        summary.push_str(&format!(
            "  q = {:>5.3}: phases@70% = {:>2}, phases@100% = {:>4}\n",
            prob, sweep[0].1, sweep[1].1
        ));
    }
    write_csv(
        out_dir,
        "ablation_substitution",
        "substitution_prob,phases_at_70,phases_at_100",
        rows,
    )?;
    Ok(summary)
}

/// Ablation: seed stability. The jitter seed must not change any reported
/// conclusion — phases, coverage, idle, and MXU stay put across seeds.
fn ablation_seeds(suite: &Suite, out_dir: &Path) -> io::Result<String> {
    let mut rows = Vec::new();
    let mut summary = String::from("Ablation — seed stability (DCGAN-CIFAR10, TPUv2):\n");
    let mut idles = Vec::new();
    for seed in [1u64, 7, 42, 1234, 99999] {
        let mut cfg = suite.config(WorkloadId::DcganCifar10, TpuGeneration::V2, Variant::Tuned);
        cfg.seed = seed;
        let tp = TpuPoint::builder().analyzer(false).build();
        let run = tp.profile(cfg)?;
        let analyzer = Analyzer::new(&run.profile);
        let phases = analyzer.ols_phases(0.7);
        let idle = run.profile.steady_tpu_idle_fraction();
        idles.push(idle);
        rows.push(format!(
            "{seed},{:.4},{:.4},{},{:.4}",
            idle,
            run.profile.steady_mxu_utilization(),
            phases.len(),
            phases.coverage_top(3)
        ));
        summary.push_str(&format!(
            "  seed {:>6}: idle {:.2}%  mxu {:.2}%  phases@70% = {}\n",
            seed,
            idle * 100.0,
            run.profile.steady_mxu_utilization() * 100.0,
            phases.len()
        ));
    }
    let mean = idles.iter().sum::<f64>() / idles.len() as f64;
    let spread = idles
        .iter()
        .map(|x| (x - mean).abs())
        .fold(0.0f64, f64::max);
    summary.push_str(&format!(
        "  max idle deviation across seeds: {:.3} points\n",
        spread * 100.0
    ));
    write_csv(
        out_dir,
        "ablation_seeds",
        "seed,tpu_idle_fraction,mxu_utilization,ols_phases_70,top3_coverage",
        rows,
    )?;
    Ok(summary)
}

/// Analyzer parallel-engine benchmark: the three sweep hot paths timed in
/// the baseline configuration (one worker, cold-start k-means, one full
/// neighbor scan per DBSCAN grid point — what the analyzer did before the
/// parallel engine) and on the current engine (shared neighbor cache,
/// warm-started k-means, 4 workers). Writes `BENCH_analyzer.json` with
/// the serial-vs-parallel wall times alongside the CSV summary.
fn bench_analyzer(suite: &Suite, out_dir: &Path) -> io::Result<String> {
    use std::time::Instant;
    use tpupoint::analyzer::{AnalyzerOptions, DbscanConfig, KmeansConfig};

    const THREADS: usize = 4;
    let id = WorkloadId::DcganCifar10;
    let profile = &suite.tuned(id, TpuGeneration::V2).profile;
    let us = |t: Instant| t.elapsed().as_secs_f64() * 1e6;

    // Baseline: one worker, pre-parallel-engine algorithms.
    tpupoint_par::set_threads(1);
    let t = Instant::now();
    let serial_analyzer = Analyzer::with_options(
        profile,
        AnalyzerOptions {
            threads: 1,
            ..AnalyzerOptions::default()
        },
    );
    let serial_pca_us = us(t);
    let features = serial_analyzer.features();
    let cold = KmeansConfig {
        warm_start: false,
        ..KmeansConfig::default()
    };
    let t = Instant::now();
    let serial_kmeans = kmeans::sweep(features, 1..=15, &cold);
    let serial_kmeans_us = us(t);
    let t = Instant::now();
    let eps = dbscan::auto_eps(features);
    let mut serial_dbscan = Vec::new();
    for m in dbscan::paper_grid() {
        let result = dbscan::run(
            features,
            &DbscanConfig {
                eps: Some(eps),
                min_samples: m,
                ..DbscanConfig::default()
            },
        )
        .map_err(|e| io::Error::other(e.to_string()))?;
        serial_dbscan.push((m, result.noise_ratio(), result.clusters));
    }
    let serial_dbscan_us = us(t);

    // Parallel engine: shared cache, warm start, THREADS workers.
    let t = Instant::now();
    let analyzer = Analyzer::with_options(
        profile,
        AnalyzerOptions {
            threads: THREADS,
            ..AnalyzerOptions::default()
        },
    );
    let parallel_pca_us = us(t);
    let t = Instant::now();
    let parallel_kmeans = analyzer.kmeans_sweep(1..=15);
    let parallel_kmeans_us = us(t);
    let t = Instant::now();
    let parallel_dbscan = analyzer
        .dbscan_sweep()
        .map_err(|e| io::Error::other(e.to_string()))?;
    let parallel_dbscan_us = us(t);
    tpupoint_par::set_threads(0);

    // The shared cache must reproduce the per-run baseline bit for bit,
    // and the warm-started SSD curve must stay monotone non-increasing.
    assert_eq!(
        parallel_dbscan, serial_dbscan,
        "shared neighbor cache changed DBSCAN results"
    );
    for pair in parallel_kmeans.windows(2) {
        assert!(pair[1].1 <= pair[0].1 + 1e-12, "warm sweep rose: {pair:?}");
    }

    let serial_total_us = serial_pca_us + serial_kmeans_us + serial_dbscan_us;
    let parallel_total_us = parallel_pca_us + parallel_kmeans_us + parallel_dbscan_us;
    let speedup = |serial: f64, parallel: f64| serial / parallel.max(1.0);
    let doc = serde_json::json!({
        "workload": id.label(),
        "threads": THREADS,
        "sweeps": {
            "kmeans": {
                "serial_us": serial_kmeans_us,
                "parallel_us": parallel_kmeans_us,
                "speedup": speedup(serial_kmeans_us, parallel_kmeans_us),
                "serial_elbow_k": kmeans::elbow_k(&serial_kmeans),
                "parallel_elbow_k": kmeans::elbow_k(&parallel_kmeans),
            },
            "dbscan": {
                "serial_us": serial_dbscan_us,
                "parallel_us": parallel_dbscan_us,
                "speedup": speedup(serial_dbscan_us, parallel_dbscan_us),
                "results_identical": true,
            },
            "pca": {
                "serial_us": serial_pca_us,
                "parallel_us": parallel_pca_us,
                "speedup": speedup(serial_pca_us, parallel_pca_us),
            },
        },
        "end_to_end": {
            "serial_us": serial_total_us,
            "parallel_us": parallel_total_us,
            "speedup": speedup(serial_total_us, parallel_total_us),
        },
    });
    std::fs::create_dir_all(out_dir)?;
    let json = serde_json::to_string_pretty(&doc).map_err(|e| io::Error::other(e.to_string()))?;
    std::fs::write(out_dir.join("BENCH_analyzer.json"), json)?;

    let mut summary = format!(
        "Analyzer parallel-engine benchmark ({}, {THREADS} threads vs serial baseline):\n",
        id.label()
    );
    for (name, serial, parallel) in [
        ("k-means sweep", serial_kmeans_us, parallel_kmeans_us),
        ("DBSCAN sweep", serial_dbscan_us, parallel_dbscan_us),
        ("PCA + features", serial_pca_us, parallel_pca_us),
        ("end to end", serial_total_us, parallel_total_us),
    ] {
        summary.push_str(&format!(
            "  {name:16} {:>9.1} ms -> {:>9.1} ms  ({:.2}x)\n",
            serial / 1e3,
            parallel / 1e3,
            speedup(serial, parallel)
        ));
    }
    Ok(summary)
}

/// Pipelined-profiler benchmark: the same throttled record store (a fixed
/// real sleep per store call, standing in for slow cloud storage) driven
/// once by the serial sink — every window seal blocks the simulation
/// thread — and once by the seal pipeline, which hands full windows to the
/// shared worker pool. The reproduction target is the simulation thread's
/// wall time: sealing off the critical path must recover (nearly) all of
/// the store latency while producing byte-identical records. Writes
/// `BENCH_pipeline.json`.
fn bench_pipeline(out_dir: &Path) -> io::Result<String> {
    use std::time::{Duration, Instant};
    use tpupoint::profiler::{
        JsonlStore, PipelineConfig, ProfilerSink, RecordStore, ThrottledStore,
    };

    const THREADS: usize = 4;
    const THROTTLE_US: u64 = 500;
    const WINDOW_MAX_EVENTS: u64 = 256;
    let id = WorkloadId::DcganMnist;
    let config = build(id, TpuGeneration::V2, &BuildOptions::default());
    let options = ProfilerOptions {
        window_max_events: WINDOW_MAX_EVENTS,
        ..ProfilerOptions::default()
    };
    let us = |t: Instant| t.elapsed().as_secs_f64() * 1e6;
    let tmp = std::env::temp_dir().join(format!("tpupoint-bench-pipeline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let throttled = |dir: &Path| -> io::Result<Box<dyn RecordStore + Send>> {
        Ok(Box::new(ThrottledStore::new(
            JsonlStore::create(dir)?,
            Duration::from_micros(THROTTLE_US),
        )))
    };
    tpupoint_par::set_threads(THREADS);

    // Serial lane: every store call runs on the simulation thread.
    let serial_dir = tmp.join("serial");
    let job = TrainingJob::new(config.clone());
    let mut sink =
        ProfilerSink::with_store(job.catalog().clone(), options, throttled(&serial_dir)?);
    sink.set_source(&config.model, &config.dataset.name);
    let t = Instant::now();
    let serial_report = job.run(&mut sink);
    let serial_run_us = us(t);
    let t = Instant::now();
    let serial_profile = sink.finish();
    let serial_finish_us = us(t);

    // Pipelined lane: windows seal on pool workers; the high-water mark is
    // raised past the full op count (windows plus the steps the sink
    // streams at window seals) so the simulation thread never waits.
    let pipelined_dir = tmp.join("pipelined");
    let job = TrainingJob::new(config.clone());
    let mut sink = ProfilerSink::with_pipelined_store(
        job.catalog().clone(),
        options,
        throttled(&pipelined_dir)?,
        PipelineConfig { high_water: 16384 },
    );
    sink.set_source(&config.model, &config.dataset.name);
    let t = Instant::now();
    let pipelined_report = job.run(&mut sink);
    let pipelined_run_us = us(t);
    let t = Instant::now();
    let pipelined_profile = sink.finish();
    let pipelined_finish_us = us(t);
    tpupoint_par::set_threads(0);

    // Off-critical-path sealing must not change a single byte of output.
    assert_eq!(serial_report, pipelined_report, "run reports diverged");
    assert_eq!(serial_profile, pipelined_profile, "profiles diverged");
    for file in ["steps.jsonl", "windows.jsonl"] {
        let a = std::fs::read(serial_dir.join(file))?;
        let b = std::fs::read(pipelined_dir.join(file))?;
        assert!(a == b, "{file} diverged between serial and pipelined lanes");
        assert!(!a.is_empty(), "{file} empty — throttle saw no traffic");
    }

    let speedup = serial_run_us / pipelined_run_us.max(1.0);
    let doc = serde_json::json!({
        "workload": id.label(),
        "threads": THREADS,
        "store_throttle_us_per_op": THROTTLE_US,
        "window_max_events": WINDOW_MAX_EVENTS,
        "windows_sealed": serial_profile.windows.len(),
        "steps_recorded": serial_profile.steps.len(),
        "simulation_wall": {
            "serial_us": serial_run_us,
            "pipelined_us": pipelined_run_us,
            "speedup": speedup,
            "target_speedup": 1.2,
        },
        "drain_barrier": {
            "serial_finish_us": serial_finish_us,
            "pipelined_finish_us": pipelined_finish_us,
        },
        "end_to_end": {
            "serial_us": serial_run_us + serial_finish_us,
            "pipelined_us": pipelined_run_us + pipelined_finish_us,
        },
        "byte_identical": true,
    });
    std::fs::create_dir_all(out_dir)?;
    let json = serde_json::to_string_pretty(&doc).map_err(|e| io::Error::other(e.to_string()))?;
    std::fs::write(out_dir.join("BENCH_pipeline.json"), json)?;
    std::fs::remove_dir_all(&tmp)?;

    Ok(format!(
        "Pipelined-profiler benchmark ({}, {THREADS} threads, {}us/store-op throttle):\n  \
         simulation wall {:>9.1} ms -> {:>9.1} ms  ({speedup:.2}x, target >= 1.2x)\n  \
         drain barrier   {:>9.1} ms -> {:>9.1} ms  (finish: steps + remaining queue)\n  \
         {} windows sealed, records byte-identical across lanes\n",
        id.label(),
        THROTTLE_US,
        serial_run_us / 1e3,
        pipelined_run_us / 1e3,
        serial_finish_us / 1e3,
        pipelined_finish_us / 1e3,
        serial_profile.windows.len(),
    ))
}

/// Streaming early-stop benchmark: the same paced serve run twice — once
/// to completion and once with `--stop-on-stable` — measuring the real
/// wall-clock win from skipping the paced tail after the live phase
/// structure latches. Early stop cancels only the pacing: the remaining
/// steps rush at batch speed, so both runs' recorded JSONL must stay
/// byte-identical. Writes `BENCH_streaming.json`.
fn bench_streaming(out_dir: &Path) -> io::Result<String> {
    use std::time::Instant;

    const PACE_US: u64 = 2_000;
    const STABLE_K: u64 = 3;
    let id = WorkloadId::BertMrpc;
    let config = || {
        build(
            id,
            TpuGeneration::V2,
            &BuildOptions {
                scale: 0.3,
                seed: 7,
                ..BuildOptions::default()
            },
        )
    };
    let tmp = std::env::temp_dir().join(format!("tpupoint-bench-streaming-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);

    let serve_once = |dir: &Path, stop: Option<u64>| -> io::Result<(f64, u64)> {
        let mut builder = TpuPoint::builder()
            .analyzer(true)
            .output_dir(dir)
            .serve("127.0.0.1:0")
            .serve_pace_us(PACE_US);
        if let Some(k) = stop {
            builder = builder.stop_on_stable(k);
        }
        let t = Instant::now();
        let run = builder.build().serve(config())?.wait()?;
        Ok((t.elapsed().as_secs_f64() * 1e6, run.report.steps_completed))
    };

    let full_dir = tmp.join("full");
    let (full_us, steps) = serve_once(&full_dir, None)?;
    let early_dir = tmp.join("early");
    let (early_us, early_steps) = serve_once(&early_dir, Some(STABLE_K))?;

    // Early stop skips pacing, never recording.
    assert_eq!(steps, early_steps, "early stop lost recorded steps");
    for file in ["steps.jsonl", "windows.jsonl"] {
        let a = std::fs::read(full_dir.join("records").join(file))?;
        let b = std::fs::read(early_dir.join("records").join(file))?;
        assert!(a == b, "{file} diverged under --stop-on-stable");
        assert!(!a.is_empty(), "{file} empty");
    }

    let speedup = full_us / early_us.max(1.0);
    let doc = serde_json::json!({
        "workload": id.label(),
        "scale": 0.3,
        "pace_us_per_step": PACE_US,
        "stop_on_stable_k": STABLE_K,
        "steps_recorded": steps,
        "serve_wall": {
            "full_us": full_us,
            "early_stop_us": early_us,
            "speedup": speedup,
        },
        "byte_identical_records": true,
    });
    std::fs::create_dir_all(out_dir)?;
    let json = serde_json::to_string_pretty(&doc).map_err(|e| io::Error::other(e.to_string()))?;
    std::fs::write(out_dir.join("BENCH_streaming.json"), json)?;
    std::fs::remove_dir_all(&tmp)?;

    Ok(format!(
        "Streaming early-stop benchmark ({}, {PACE_US}us/step pace, K = {STABLE_K}):\n  \
         serve wall {:>9.1} ms -> {:>9.1} ms  ({speedup:.2}x via --stop-on-stable)\n  \
         {steps} steps recorded either way, records byte-identical\n",
        id.label(),
        full_us / 1e3,
        early_us / 1e3,
    ))
}

/// Parallel-simulation benchmark: the same throttled record store as
/// `bench_pipeline` (a fixed real sleep per store call, standing in for
/// slow cloud storage) driven over a (workload, seed) grid three ways —
/// serial engine one cell at a time, laned engine one cell at a time, and
/// laned engine grid-parallel over the cells on the shared pool.
/// End-to-end wall (run + drain) is the reproduction target: the laned
/// engine flushes sink work — and with it every store write, including
/// the steps the sink now streams at window seals instead of hoarding for
/// the finish barrier — off the simulation thread, and the grid overlaps
/// whole cells, while every record stays byte-identical to the serial
/// engine. A cell's own store sleeps are sequential on its flusher, so
/// the laned row alone is bounded by the sleep chain (close to 1x when
/// store latency dominates compute); the 2x target belongs to the grid
/// row, where cells hide each other's latency. Writes
/// `BENCH_simcore.json`.
fn bench_simcore(out_dir: &Path) -> io::Result<String> {
    use std::time::{Duration, Instant};
    use tpupoint::profiler::{JsonlStore, RecordStore, ThrottledStore};

    const THREADS: usize = 4;
    const LANES: usize = 2;
    const THROTTLE_US: u64 = 75;
    const WINDOW_MAX_EVENTS: u64 = 256;
    const SCALE: f64 = 0.35;
    let cells: &[(WorkloadId, u64)] = &[
        (WorkloadId::DcganMnist, 7),
        (WorkloadId::DcganMnist, 11),
        (WorkloadId::DcganMnist, 13),
        (WorkloadId::DcganMnist, 17),
    ];
    let tmp = std::env::temp_dir().join(format!("tpupoint-bench-simcore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);

    let cell_dir = |phase: &str, (id, seed): (WorkloadId, u64)| {
        tmp.join(phase).join(format!("{}-{seed}", id.label()))
    };
    // One cell, end to end: build the job, run it into a throttled JSONL
    // store, finish the profile. `lanes = 1` is the serial engine.
    let run_cell = |dir: &Path,
                    (id, seed): (WorkloadId, u64),
                    lanes: usize|
     -> io::Result<(RunReport, Profile)> {
        let config = build(
            id,
            TpuGeneration::V2,
            &BuildOptions {
                scale: SCALE,
                seed,
                ..BuildOptions::default()
            },
        );
        let job = TrainingJob::new(config.clone());
        let store: Box<dyn RecordStore + Send> = Box::new(ThrottledStore::new(
            JsonlStore::create(dir)?,
            Duration::from_micros(THROTTLE_US),
        ));
        let options = ProfilerOptions {
            window_max_events: WINDOW_MAX_EVENTS,
            ..ProfilerOptions::default()
        };
        let mut sink = ProfilerSink::with_store(job.catalog().clone(), options, store);
        sink.set_source(&config.model, &config.dataset.name);
        let report = job.run_laned(lanes, &mut sink);
        Ok((report, sink.finish()))
    };
    let us = |t: Instant| t.elapsed().as_secs_f64() * 1e6;
    tpupoint_par::set_threads(THREADS);

    // Phase 1: serial engine, cells one after another — every store sleep
    // lands on the simulation thread.
    let t = Instant::now();
    let mut serial_runs = Vec::new();
    for &cell in cells {
        serial_runs.push(run_cell(&cell_dir("serial", cell), cell, 1)?);
    }
    let serial_us = us(t);

    // Phase 2: laned engine, still one cell at a time — isolates the
    // lanes' own contribution (sink work, store sleeps included, flushed
    // off the critical path).
    let t = Instant::now();
    let mut laned_runs = Vec::new();
    for &cell in cells {
        laned_runs.push(run_cell(&cell_dir("laned", cell), cell, LANES)?);
    }
    let laned_us = us(t);

    // Phase 3: laned engine, cells grid-parallel across the pool.
    let t = Instant::now();
    let grid_runs: Vec<io::Result<(RunReport, Profile)>> = tpupoint_par::pool()
        .par_map(cells, |_, &cell| {
            run_cell(&cell_dir("grid", cell), cell, LANES)
        });
    let grid_us = us(t);
    tpupoint_par::set_threads(0);

    // Neither lanes nor the grid may change a single byte of output.
    for (i, &cell) in cells.iter().enumerate() {
        let (serial_report, serial_profile) = &serial_runs[i];
        let grid = grid_runs[i]
            .as_ref()
            .map_err(|e| io::Error::other(e.to_string()))?;
        for (flavor, (report, profile)) in [("laned", &laned_runs[i]), ("grid", grid)] {
            assert_eq!(serial_report, report, "{flavor} report diverged");
            assert_eq!(serial_profile, profile, "{flavor} profile diverged");
        }
        for file in ["steps.jsonl", "windows.jsonl"] {
            let reference = std::fs::read(cell_dir("serial", cell).join(file))?;
            assert!(!reference.is_empty(), "{file} empty for {cell:?}");
            for phase in ["laned", "grid"] {
                let other = std::fs::read(cell_dir(phase, cell).join(file))?;
                assert!(
                    reference == other,
                    "{file} diverged between serial and {phase} for {cell:?}"
                );
            }
        }
    }
    let windows_sealed: usize = serial_runs.iter().map(|(_, p)| p.windows.len()).sum();
    let steps_recorded: usize = serial_runs.iter().map(|(_, p)| p.steps.len()).sum();

    let speedup = |base: f64, new: f64| base / new.max(1.0);
    let doc = serde_json::json!({
        "cells": cells
            .iter()
            .map(|(id, seed)| format!("{}-{seed}", id.label()))
            .collect::<Vec<_>>(),
        "scale": SCALE,
        "threads": THREADS,
        "sim_lanes": LANES,
        "store_throttle_us_per_op": THROTTLE_US,
        "window_max_events": WINDOW_MAX_EVENTS,
        "windows_sealed": windows_sealed,
        "steps_recorded": steps_recorded,
        "end_to_end": {
            "serial_us": serial_us,
            "laned_us": laned_us,
            "grid_us": grid_us,
            "laned_speedup": speedup(serial_us, laned_us),
            "grid_speedup": speedup(serial_us, grid_us),
            "target_speedup": 2.0,
        },
        "byte_identical": true,
    });
    std::fs::create_dir_all(out_dir)?;
    let json = serde_json::to_string_pretty(&doc).map_err(|e| io::Error::other(e.to_string()))?;
    std::fs::write(out_dir.join("BENCH_simcore.json"), json)?;
    std::fs::remove_dir_all(&tmp)?;

    Ok(format!(
        "Parallel-simulation benchmark ({} cells, {THREADS} threads, {LANES} lanes, \
         {THROTTLE_US}us/store-op throttle):\n  \
         serial engine    {:>9.1} ms  (sequential cells)\n  \
         laned engine     {:>9.1} ms  ({:.2}x, sequential cells)\n  \
         grid + lanes     {:>9.1} ms  ({:.2}x, target >= 2.0x)\n  \
         {windows_sealed} windows / {steps_recorded} steps stored, \
         records byte-identical across all three\n",
        cells.len(),
        serial_us / 1e3,
        laned_us / 1e3,
        speedup(serial_us, laned_us),
        grid_us / 1e3,
        speedup(serial_us, grid_us),
    ))
}

/// Multi-job fleet benchmark: the same (workload, seed) grid as a
/// sequential chain of solo batch profiles and as one fleet of concurrent
/// serve-style jobs behind a single scrape plane, at dozens-of-tenants
/// scale with churn. 16 steady cells are submitted over the real
/// `POST /jobs` control API (each its own tenant) and 12 churn jobs are
/// submitted and then cancelled in waves mid-run, while two scraper
/// threads hammer `GET /metrics` and `GET /healthz` on a 2 ms cadence
/// for the whole run, collecting every scrape latency; resident memory
/// is sampled throughout against an explicit `--fleet-memory-mib`-style
/// budget. The reproduction targets: every job's series stays separately
/// labeled on the one scrape plane, the plane keeps serving under churn
/// (p99 scrape latency within bound — scrapes read published snapshots,
/// never a live job registry), memory stays under the configured budget,
/// and each steady job's sealed JSONL is **byte-identical** to its solo
/// run. The end-to-end wall is reported against the sequential chain
/// alongside the host's core count — on a single-core host the sim
/// threads only interleave, so the honest ceiling there is parity minus
/// contention, not a speedup. Writes `BENCH_fleet.json`.
fn bench_fleet(out_dir: &Path) -> io::Result<String> {
    use std::io::{Read, Write};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    const STEADY_JOBS: u64 = 16;
    const CHURN_WAVES: u64 = 3;
    const CHURN_PER_WAVE: u64 = 4;
    const SCALE: f64 = 0.15;
    const CHURN_SCALE: f64 = 0.05;
    const MEMORY_BUDGET_MIB: u64 = 1024;
    const P99_BOUND_US: u64 = 250_000;
    let id = WorkloadId::DcganMnist;
    let config = |seed: u64| {
        build(
            id,
            TpuGeneration::V2,
            &BuildOptions {
                scale: SCALE,
                seed,
                ..BuildOptions::default()
            },
        )
    };
    let tmp = std::env::temp_dir().join(format!("tpupoint-bench-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let us = |t: Instant| t.elapsed().as_secs_f64() * 1e6;
    let rss_bytes = || -> u64 {
        std::fs::read_to_string("/proc/self/statm")
            .ok()
            .and_then(|s| s.split_whitespace().nth(1)?.parse::<u64>().ok())
            .map(|pages| pages * 4096)
            .unwrap_or(0)
    };

    // Baseline: the steady cells one after another as solo batch profiles
    // — the byte-identity references and the sequential wall.
    let t = Instant::now();
    for seed in 0..STEADY_JOBS {
        TpuPoint::builder()
            .analyzer(true)
            .output_dir(tmp.join("solo").join(format!("cell-{seed}")))
            .build()
            .profile(config(seed))?;
    }
    let solo_us = us(t);

    // The fleet: every steady cell admitted through the control API under
    // its own tenant, running concurrently at batch speed behind one
    // scrape plane, with an explicit memory budget.
    let fleet_dir = tmp.join("fleet");
    let session = TpuPoint::builder()
        .analyzer(true)
        .output_dir(&fleet_dir)
        .serve("127.0.0.1:0")
        .serve_pace_us(0)
        .fleet_limits(tpupoint::runtime::FleetLimits {
            max_running: 8,
            max_queued: 256,
            per_tenant_active: 4,
            ..tpupoint::runtime::FleetLimits::default()
        })
        .fleet_memory_mib(MEMORY_BUDGET_MIB)
        .build()
        .serve_fleet()
        .map_err(|e| io::Error::other(format!("fleet: {e}")))?;
    let addr = session.addr();
    let http = move |request: &str| -> io::Result<String> {
        let mut stream = std::net::TcpStream::connect(addr)?;
        stream.write_all(request.as_bytes())?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        Ok(response)
    };

    // Scrapers ride along for the whole fleet run: real HTTP clients
    // pulling the multi-job exposition and health on a 2 ms cadence
    // while jobs execute and churn, recording every scrape's latency.
    let done = Arc::new(AtomicBool::new(false));
    let latencies = Arc::new(Mutex::new(Vec::<u64>::new()));
    let peak_rss = Arc::new(AtomicU64::new(rss_bytes()));
    let scrapers: Vec<_> = (0..2)
        .map(|_| {
            let done = Arc::clone(&done);
            let latencies = Arc::clone(&latencies);
            let peak_rss = Arc::clone(&peak_rss);
            std::thread::spawn(move || {
                while !done.load(Ordering::SeqCst) {
                    let t = Instant::now();
                    let metrics = http("GET /metrics HTTP/1.1\r\nHost: b\r\n\r\n");
                    let elapsed = us(t) as u64;
                    let _ = http("GET /healthz HTTP/1.1\r\nHost: b\r\n\r\n");
                    if metrics.is_ok() {
                        latencies.lock().unwrap().push(elapsed);
                    }
                    peak_rss.fetch_max(rss_bytes(), Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            })
        })
        .collect();

    let rss_before = rss_bytes();
    let t = Instant::now();
    for seed in 0..STEADY_JOBS {
        let body = format!(
            "{{\"workload\": \"{}\", \"id\": \"cell-{seed}\", \"tenant\": \"tenant-{seed}\", \
             \"scale\": {SCALE}, \"seed\": {seed}}}",
            id.label()
        );
        let response = http(&format!(
            "POST /jobs HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ))?;
        assert!(response.starts_with("HTTP/1.1 201"), "{response}");
    }
    // Churn storm: waves of short-lived tenants admitted and cancelled
    // while the steady cells execute — the admission queue, the cancel
    // path, and the scrape plane all take the hit at once.
    for wave in 0..CHURN_WAVES {
        for i in 0..CHURN_PER_WAVE {
            let body = format!(
                "{{\"workload\": \"{}\", \"id\": \"churn-{wave}-{i}\", \
                 \"tenant\": \"churn-{wave}-{i}\", \"scale\": {CHURN_SCALE}, \
                 \"seed\": {}}}",
                id.label(),
                100 + wave * CHURN_PER_WAVE + i
            );
            let response = http(&format!(
                "POST /jobs HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ))?;
            assert!(response.starts_with("HTTP/1.1 201"), "{response}");
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        for i in 0..CHURN_PER_WAVE {
            let response = http(&format!(
                "DELETE /jobs/churn-{wave}-{i} HTTP/1.1\r\nHost: b\r\n\r\n"
            ))?;
            assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        }
    }
    session.wait_jobs_idle();
    let fleet_us = us(t);
    done.store(true, Ordering::SeqCst);
    for scraper in scrapers {
        let _ = scraper.join();
    }

    // Every steady job completed, separately labeled on the one
    // exposition; churn jobs all settled in a legal terminal phase.
    let scrape = session.scrape();
    let mut steps_recorded = 0;
    for job in session.list() {
        if job.id.starts_with("cell-") {
            assert_eq!(
                job.phase.as_str(),
                "completed",
                "{}: {:?}",
                job.id,
                job.error
            );
            steps_recorded += job.steps_completed;
        } else {
            assert!(
                matches!(job.phase.as_str(), "completed" | "cancelled"),
                "{}: {} ({:?})",
                job.id,
                job.phase.as_str(),
                job.error
            );
        }
        assert!(
            scrape.contains(&format!("job=\"{}\"", job.id)),
            "missing series for {}:\n{scrape}",
            job.id
        );
    }
    let total_jobs = session.list().len() as u64;
    assert!(total_jobs >= 24, "only {total_jobs} jobs in the storm");
    assert!(scrape.contains("job=\"fleet\""), "aggregate missing");
    assert!(
        scrape.contains("tpupoint_fleet_memory_budget_bytes"),
        "budget gauge missing"
    );
    let header_count = scrape
        .matches("# TYPE tpupoint_profiler_windows_sealed")
        .count();
    assert_eq!(
        header_count, 1,
        "one header per family across {total_jobs} jobs"
    );

    // Sharded stores match the solo references byte for byte.
    for seed in 0..STEADY_JOBS {
        for file in ["steps.jsonl", "windows.jsonl"] {
            let solo = std::fs::read(
                tmp.join("solo")
                    .join(format!("cell-{seed}"))
                    .join("records")
                    .join(file),
            )?;
            let fleet = std::fs::read(
                fleet_dir
                    .join("jobs")
                    .join(format!("cell-{seed}"))
                    .join("records")
                    .join(file),
            )?;
            assert!(!solo.is_empty(), "cell-{seed} {file} empty");
            assert!(
                solo == fleet,
                "cell-{seed} {file} diverged between solo and fleet"
            );
        }
    }
    session.request_quit();
    session
        .wait()
        .map_err(|e| io::Error::other(format!("drain: {e}")))?;

    let budget_bytes = MEMORY_BUDGET_MIB * 1024 * 1024;
    let rss_growth = peak_rss.load(Ordering::SeqCst).saturating_sub(rss_before);
    assert!(
        rss_growth < budget_bytes,
        "fleet overran its memory budget: RSS grew by {rss_growth} of {budget_bytes} bytes"
    );
    let mut sorted = latencies.lock().unwrap().clone();
    sorted.sort_unstable();
    assert!(!sorted.is_empty(), "no scrape ever succeeded mid-run");
    let percentile = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    let (p50, p99, max) = (percentile(0.5), percentile(0.99), sorted[sorted.len() - 1]);
    assert!(
        p99 < P99_BOUND_US,
        "p99 scrape latency {p99} us blew the {P99_BOUND_US} us bound"
    );

    let speedup = solo_us / fleet_us.max(1.0);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let doc = serde_json::json!({
        "workload": id.label(),
        "scale": SCALE,
        "jobs": total_jobs,
        "steady_jobs": STEADY_JOBS,
        "churn_jobs": CHURN_WAVES * CHURN_PER_WAVE,
        "steps_recorded": steps_recorded,
        "end_to_end": {
            "solo_sequential_us": solo_us,
            "fleet_concurrent_us": fleet_us,
            "speedup": speedup,
            "host_cores": cores,
        },
        "scrape_plane": {
            "scrapes_served_mid_run": sorted.len(),
            "scrape_p50_us": p50,
            "scrape_p99_us": p99,
            "max_scrape_us": max,
            "scrape_p99_bound_us": P99_BOUND_US,
            "scrape_p99_within_bound": true,
            "one_header_per_family": true,
        },
        "memory": {
            "rss_growth_bytes": rss_growth,
            "budget_bytes": budget_bytes,
            "within_budget": true,
        },
        "byte_identical_to_solo": true,
    });
    std::fs::create_dir_all(out_dir)?;
    let json = serde_json::to_string_pretty(&doc).map_err(|e| io::Error::other(e.to_string()))?;
    std::fs::write(out_dir.join("BENCH_fleet.json"), json)?;
    std::fs::remove_dir_all(&tmp)?;

    Ok(format!(
        "Fleet benchmark ({total_jobs} {} jobs: {STEADY_JOBS} steady + {} churned, \
         one scrape plane, {cores} core(s)):\n  \
         solo chain  {:>9.1} ms -> fleet {:>9.1} ms  ({speedup:.2}x)\n  \
         {} mid-run scrapes served (p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms), \
         RSS growth {:.1} MiB of {MEMORY_BUDGET_MIB} MiB budget\n  \
         {steps_recorded} steps recorded, every steady job byte-identical to its solo run\n",
        id.label(),
        CHURN_WAVES * CHURN_PER_WAVE,
        solo_us / 1e3,
        fleet_us / 1e3,
        sorted.len(),
        p50 as f64 / 1e3,
        p99 as f64 / 1e3,
        max as f64 / 1e3,
        rss_growth as f64 / (1024.0 * 1024.0),
    ))
}

/// Record-store format benchmark: the same synthetic record stream
/// ingested once through the JSONL store and once through the binary
/// segment store, measuring records/sec on the write path and the
/// recovery wall on the read-back path. Compaction is disabled so both
/// lanes do identical work per record; the reproduction target is the
/// binary format's framing win — >= 2x JSONL ingest throughput with a
/// smaller on-disk footprint and equal recovered records. Writes
/// `BENCH_store.json`.
fn bench_store(out_dir: &Path) -> io::Result<String> {
    use std::collections::BTreeMap;
    use std::time::Instant;
    use tpupoint::profiler::{
        recover_records, BinaryStore, BinaryStoreConfig, JsonlStore, OpStats, RecordStore,
        StepRecord, WindowRecord,
    };
    use tpupoint::sim::{OpId, SimDuration, SimTime};

    const STEPS: u64 = 40_000;
    const WINDOWS: u64 = 4_000;
    const OPS_PER_STEP: u64 = 4;
    const FLUSH_EVERY: u64 = 1_024;

    // Deterministic synthetic records: field values vary with the index so
    // neither encoder benefits from degenerate constant payloads.
    let synth_step = |i: u64| {
        let mut ops = BTreeMap::new();
        for op in 0..OPS_PER_STEP {
            ops.insert(
                OpId((op * 7 + i % 3) as u32),
                OpStats {
                    count: 1 + i % 5,
                    total: SimDuration::from_micros(200 + (i * 37 + op * 11) % 900),
                },
            );
        }
        StepRecord {
            step: i,
            ops,
            tpu_time: SimDuration::from_micros(2_000 + i % 700),
            mxu_time: SimDuration::from_micros(1_000 + i % 350),
            host_time: SimDuration::from_micros(500 + i % 130),
            first_start: SimTime::from_micros(i * 3_000),
            last_end: SimTime::from_micros(i * 3_000 + 2_800),
        }
    };
    let synth_window = |i: u64| WindowRecord {
        index: i,
        start: SimTime::from_micros(i * 30_000),
        end: SimTime::from_micros((i + 1) * 30_000),
        events: 1_000 + i % 97,
        tpu_busy: SimDuration::from_micros(24_000 + i % 3_000),
        mxu_busy: SimDuration::from_micros(12_000 + i % 1_500),
        first_step: i * 10,
        last_step: i * 10 + 9,
    };

    let ingest = |store: &mut dyn RecordStore| -> io::Result<f64> {
        let t = Instant::now();
        let mut windows = 0u64;
        for i in 0..STEPS {
            store.put_step(&synth_step(i))?;
            // Interleave windows at the profiler's natural ratio.
            if (i + 1) % (STEPS / WINDOWS) == 0 && windows < WINDOWS {
                store.put_window(&synth_window(windows))?;
                windows += 1;
            }
            if (i + 1) % FLUSH_EVERY == 0 {
                store.flush()?;
            }
        }
        store.seal()?;
        Ok(t.elapsed().as_secs_f64() * 1e6)
    };
    let disk_bytes = |dir: &Path| -> io::Result<u64> {
        let mut total = 0;
        for entry in std::fs::read_dir(dir)? {
            total += entry?.metadata()?.len();
        }
        Ok(total)
    };

    let tmp = std::env::temp_dir().join(format!("tpupoint-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let jsonl_dir = tmp.join("jsonl");
    let binary_dir = tmp.join("binary");

    let mut store = JsonlStore::create(&jsonl_dir)?;
    let jsonl_ingest_us = ingest(&mut store)?;
    drop(store);
    let mut store = BinaryStore::with_config(
        &binary_dir,
        BinaryStoreConfig {
            compact_segments: usize::MAX,
            background: false,
            ..BinaryStoreConfig::default()
        },
    )?;
    let binary_ingest_us = ingest(&mut store)?;
    drop(store);

    let t = Instant::now();
    let jsonl_recovered = recover_records(&jsonl_dir)?;
    let jsonl_recover_us = t.elapsed().as_secs_f64() * 1e6;
    let t = Instant::now();
    let binary_recovered = recover_records(&binary_dir)?;
    let binary_recover_us = t.elapsed().as_secs_f64() * 1e6;

    // Both formats must hand back the identical record stream.
    assert_eq!(jsonl_recovered.steps.len() as u64, STEPS);
    assert_eq!(jsonl_recovered.windows.len() as u64, WINDOWS);
    assert_eq!(jsonl_recovered.steps, binary_recovered.steps);
    assert_eq!(jsonl_recovered.windows, binary_recovered.windows);
    assert_eq!(jsonl_recovered.missing_acknowledged(), (0, 0));
    assert_eq!(binary_recovered.missing_acknowledged(), (0, 0));

    let records = STEPS + WINDOWS;
    let jsonl_rps = records as f64 / (jsonl_ingest_us / 1e6).max(1e-9);
    let binary_rps = records as f64 / (binary_ingest_us / 1e6).max(1e-9);
    let speedup = binary_rps / jsonl_rps.max(1e-9);
    let jsonl_bytes = disk_bytes(&jsonl_dir)?;
    let binary_bytes = disk_bytes(&binary_dir)?;

    let doc = serde_json::json!({
        "steps": STEPS,
        "windows": WINDOWS,
        "ops_per_step": OPS_PER_STEP,
        "flush_every": FLUSH_EVERY,
        "ingest": {
            "jsonl": { "wall_us": jsonl_ingest_us, "records_per_sec": jsonl_rps, "disk_bytes": jsonl_bytes },
            "binary": { "wall_us": binary_ingest_us, "records_per_sec": binary_rps, "disk_bytes": binary_bytes },
            "speedup": speedup,
            "target_speedup": 2.0,
        },
        "recovery": {
            "jsonl_wall_us": jsonl_recover_us,
            "binary_wall_us": binary_recover_us,
        },
        "compression_ratio": jsonl_bytes as f64 / binary_bytes.max(1) as f64,
        "recovered_equal": true,
    });
    std::fs::create_dir_all(out_dir)?;
    let json = serde_json::to_string_pretty(&doc).map_err(|e| io::Error::other(e.to_string()))?;
    std::fs::write(out_dir.join("BENCH_store.json"), json)?;
    std::fs::remove_dir_all(&tmp)?;

    Ok(format!(
        "Record-store format benchmark ({records} records, flush every {FLUSH_EVERY}):\n  \
         ingest   jsonl {:>9.1} ms ({:>9.0} rec/s) -> binary {:>9.1} ms ({:>9.0} rec/s)  ({speedup:.2}x, target >= 2x)\n  \
         recovery jsonl {:>9.1} ms -> binary {:>9.1} ms\n  \
         on disk  jsonl {:.2} MiB -> binary {:.2} MiB ({:.2}x smaller), recovered records identical\n",
        jsonl_ingest_us / 1e3,
        jsonl_rps,
        binary_ingest_us / 1e3,
        binary_rps,
        jsonl_recover_us / 1e3,
        binary_recover_us / 1e3,
        jsonl_bytes as f64 / (1024.0 * 1024.0),
        binary_bytes as f64 / (1024.0 * 1024.0),
        jsonl_bytes as f64 / binary_bytes.max(1) as f64,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_id_dispatches() {
        // Smoke: the cheap experiments actually run end to end; the heavy
        // ones at least resolve to a handler (checked via the unknown-id
        // error NOT firing — compile-time match coverage).
        let suite = Suite::new();
        let dir = std::env::temp_dir().join(format!("tpupoint-exp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for id in ["table1", "fig6", "fig7"] {
            let summary = run(id, &suite, &dir).expect(id);
            assert!(!summary.is_empty());
            assert!(dir.join(format!("{id}.csv")).exists());
        }
        let err = run("fig99", &suite, &dir).expect_err("unknown id");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_list_has_no_duplicates() {
        let mut ids: Vec<&str> = ALL.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL.len());
    }
}
