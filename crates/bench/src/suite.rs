//! Cached profiled runs of the workload suite, shared across experiments.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tpupoint::prelude::*;

type Key = (WorkloadId, TpuGeneration, u8);

/// One cache slot. The outer map lock is held only long enough to find or
/// insert the slot; the slot's own lock serializes the (expensive) profiling
/// of that cell, so concurrent requests for *different* cells profile in
/// parallel while concurrent requests for the *same* cell profile it exactly
/// once.
#[derive(Default)]
struct CacheCell(Mutex<Option<Arc<ProfiledRun>>>);

/// Lazily profiles each (workload, generation, variant) once and caches
/// the result; every figure draws from the same runs, exactly as the
/// paper's figures all come from one set of profiled executions.
///
/// The cache is thread-safe: experiments may request cells concurrently
/// (e.g. from a `tpupoint_par::par_map` grid sweep) and each cell is still
/// profiled exactly once.
#[derive(Default)]
pub struct Suite {
    cache: Mutex<BTreeMap<Key, Arc<CacheCell>>>,
    profiles_run: AtomicU64,
    sim_lanes: usize,
}

impl Suite {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache whose profiled runs use the laned simulation
    /// engine with `lanes` shards. Results are byte-identical to the
    /// default serial engine — only wall time changes.
    pub fn with_sim_lanes(lanes: usize) -> Self {
        Suite {
            sim_lanes: lanes,
            ..Self::default()
        }
    }

    fn variant_key(variant: Variant) -> u8 {
        match variant {
            Variant::Tuned => 0,
            Variant::Naive => 1,
        }
    }

    /// Builds the job config used for profiled runs (simulation scale).
    pub fn config(&self, id: WorkloadId, generation: TpuGeneration, variant: Variant) -> JobConfig {
        build(
            id,
            generation,
            &BuildOptions {
                scale: id.default_sim_scale(),
                variant,
                ..BuildOptions::default()
            },
        )
    }

    /// Number of profiling runs actually executed (cache misses). Always
    /// the number of distinct cells requested, regardless of concurrency.
    pub fn profiles_run(&self) -> u64 {
        self.profiles_run.load(Ordering::Relaxed)
    }

    /// Profiles every given cell, in parallel on the shared
    /// [`tpupoint_par`] pool, so later cache hits are instant. Duplicate
    /// cells in the input are profiled once.
    pub fn prewarm(&self, cells: &[(WorkloadId, TpuGeneration, Variant)]) {
        tpupoint_par::pool().par_map(cells, |_, &(id, generation, variant)| {
            self.profiled(id, generation, variant);
        });
    }

    /// Profiled run of a workload (cached).
    pub fn profiled(
        &self,
        id: WorkloadId,
        generation: TpuGeneration,
        variant: Variant,
    ) -> Arc<ProfiledRun> {
        let key = (id, generation, Self::variant_key(variant));
        let cell = {
            let mut table = self.cache.lock().expect("suite cache poisoned");
            table.entry(key).or_default().clone()
        };
        let mut slot = cell.0.lock().expect("suite cell poisoned");
        if let Some(hit) = slot.as_ref() {
            return hit.clone();
        }
        self.profiles_run.fetch_add(1, Ordering::Relaxed);
        let tp = TpuPoint::builder()
            .analyzer(false)
            .sim_lanes(self.sim_lanes.max(1))
            .build();
        let run = Arc::new(
            tp.profile(self.config(id, generation, variant))
                .expect("in-memory profiling cannot fail"),
        );
        *slot = Some(run.clone());
        run
    }

    /// Profiled run of the tuned variant.
    pub fn tuned(&self, id: WorkloadId, generation: TpuGeneration) -> Arc<ProfiledRun> {
        self.profiled(id, generation, Variant::Tuned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_returns_the_same_run() {
        let suite = Suite::new();
        let a = suite.tuned(WorkloadId::BertMrpc, TpuGeneration::V2);
        let b = suite.tuned(WorkloadId::BertMrpc, TpuGeneration::V2);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.report.steps_completed > 0);
        assert_eq!(suite.profiles_run(), 1);
    }

    #[test]
    fn variants_are_cached_separately() {
        let suite = Suite::new();
        let tuned = suite.profiled(WorkloadId::BertMrpc, TpuGeneration::V2, Variant::Tuned);
        let naive = suite.profiled(WorkloadId::BertMrpc, TpuGeneration::V2, Variant::Naive);
        assert!(!Arc::ptr_eq(&tuned, &naive));
        assert!(
            naive.report.tpu_idle_fraction() >= tuned.report.tpu_idle_fraction(),
            "naive pipelines idle the TPU at least as much"
        );
    }

    #[test]
    fn concurrent_requests_profile_each_cell_exactly_once() {
        tpupoint_par::set_threads(4);
        let suite = Suite::new();
        // 8 concurrent requests for 2 distinct cells.
        let cells: Vec<_> = (0..8)
            .map(|i| {
                let variant = if i % 2 == 0 {
                    Variant::Tuned
                } else {
                    Variant::Naive
                };
                (WorkloadId::BertMrpc, TpuGeneration::V2, variant)
            })
            .collect();
        suite.prewarm(&cells);
        tpupoint_par::set_threads(0);
        assert_eq!(suite.profiles_run(), 2);
        // And hits afterwards are free.
        suite.tuned(WorkloadId::BertMrpc, TpuGeneration::V2);
        assert_eq!(suite.profiles_run(), 2);
    }

    #[test]
    fn laned_suite_matches_serial_suite() {
        let serial = Suite::new();
        let laned = Suite::with_sim_lanes(2);
        let a = serial.tuned(WorkloadId::BertMrpc, TpuGeneration::V2);
        let b = laned.tuned(WorkloadId::BertMrpc, TpuGeneration::V2);
        assert_eq!(a.report, b.report);
        assert_eq!(a.profile.windows, b.profile.windows);
        assert_eq!(a.profile.steps, b.profile.steps);
    }
}
