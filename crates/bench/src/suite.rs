//! Cached profiled runs of the workload suite, shared across experiments.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use tpupoint::prelude::*;

/// Lazily profiles each (workload, generation, variant) once and caches
/// the result; every figure draws from the same runs, exactly as the
/// paper's figures all come from one set of profiled executions.
#[derive(Default)]
pub struct Suite {
    #[allow(clippy::type_complexity)]
    cache: RefCell<BTreeMap<(WorkloadId, TpuGeneration, u8), Rc<ProfiledRun>>>,
}

impl Suite {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn variant_key(variant: Variant) -> u8 {
        match variant {
            Variant::Tuned => 0,
            Variant::Naive => 1,
        }
    }

    /// Builds the job config used for profiled runs (simulation scale).
    pub fn config(&self, id: WorkloadId, generation: TpuGeneration, variant: Variant) -> JobConfig {
        build(
            id,
            generation,
            &BuildOptions {
                scale: id.default_sim_scale(),
                variant,
                ..BuildOptions::default()
            },
        )
    }

    /// Profiled run of a workload (cached).
    pub fn profiled(
        &self,
        id: WorkloadId,
        generation: TpuGeneration,
        variant: Variant,
    ) -> Rc<ProfiledRun> {
        let key = (id, generation, Self::variant_key(variant));
        if let Some(hit) = self.cache.borrow().get(&key) {
            return hit.clone();
        }
        let tp = TpuPoint::builder().analyzer(false).build();
        let run = Rc::new(
            tp.profile(self.config(id, generation, variant))
                .expect("in-memory profiling cannot fail"),
        );
        self.cache.borrow_mut().insert(key, run.clone());
        run
    }

    /// Profiled run of the tuned variant.
    pub fn tuned(&self, id: WorkloadId, generation: TpuGeneration) -> Rc<ProfiledRun> {
        self.profiled(id, generation, Variant::Tuned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_returns_the_same_run() {
        let suite = Suite::new();
        let a = suite.tuned(WorkloadId::BertMrpc, TpuGeneration::V2);
        let b = suite.tuned(WorkloadId::BertMrpc, TpuGeneration::V2);
        assert!(Rc::ptr_eq(&a, &b));
        assert!(a.report.steps_completed > 0);
    }

    #[test]
    fn variants_are_cached_separately() {
        let suite = Suite::new();
        let tuned = suite.profiled(WorkloadId::BertMrpc, TpuGeneration::V2, Variant::Tuned);
        let naive = suite.profiled(WorkloadId::BertMrpc, TpuGeneration::V2, Variant::Naive);
        assert!(!Rc::ptr_eq(&tuned, &naive));
        assert!(
            naive.report.tpu_idle_fraction() >= tuned.report.tpu_idle_fraction(),
            "naive pipelines idle the TPU at least as much"
        );
    }
}
