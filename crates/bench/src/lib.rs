//! # tpupoint-bench
//!
//! The reproduction harness: one function per table/figure of the paper's
//! evaluation, shared by the `reproduce` binary (CSV + console output) and
//! the Criterion benches. See DESIGN.md's experiment index for the mapping
//! and EXPERIMENTS.md for paper-versus-measured results.

pub mod csvout;
pub mod experiments;
pub mod suite;

pub use suite::Suite;
