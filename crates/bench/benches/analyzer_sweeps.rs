//! Criterion benches for the analyzer's parallel sweep engine: each of
//! the three hot paths (k-means k-sweep, DBSCAN min-samples sweep, PCA
//! projection) measured at one worker and at four, plus the cold-start
//! k-means sweep as the pre-warm-start baseline.
//!
//! Run with `cargo bench -p tpupoint-bench --bench analyzer_sweeps`.
//! Set `TPUPOINT_BENCH_QUICK=1` to shrink the sample count to a CI-sized
//! smoke run. Every configuration produces bit-identical results — the
//! thread count only moves wall time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpupoint::analyzer::{dbscan, kmeans, pca, DbscanConfig, FeatureMatrix, KmeansConfig};
use tpupoint::prelude::*;
use tpupoint_bench::Suite;

const THREAD_COUNTS: [usize; 2] = [1, 4];

fn quick_or(samples: usize) -> usize {
    if std::env::var_os("TPUPOINT_BENCH_QUICK").is_some() {
        2
    } else {
        samples
    }
}

fn features_of(id: WorkloadId) -> (FeatureMatrix, FeatureMatrix) {
    let suite = Suite::new();
    let run = suite.tuned(id, TpuGeneration::V2);
    let raw = FeatureMatrix::from_profile(&run.profile);
    let reduced = Analyzer::new(&run.profile).features().clone();
    (raw, reduced)
}

fn bench_kmeans_sweep(c: &mut Criterion) {
    let (_, features) = features_of(WorkloadId::DcganCifar10);
    for threads in THREAD_COUNTS {
        tpupoint_par::set_threads(threads);
        c.bench_function(&format!("kmeans_sweep_warm/threads{threads}"), |b| {
            b.iter(|| black_box(kmeans::sweep(&features, 1..=15, &KmeansConfig::default())))
        });
        let cold = KmeansConfig {
            warm_start: false,
            ..KmeansConfig::default()
        };
        c.bench_function(&format!("kmeans_sweep_cold/threads{threads}"), |b| {
            b.iter(|| black_box(kmeans::sweep(&features, 1..=15, &cold)))
        });
    }
    tpupoint_par::set_threads(0);
}

fn bench_dbscan_sweep(c: &mut Criterion) {
    let (_, features) = features_of(WorkloadId::DcganCifar10);
    let grid = dbscan::paper_grid();
    for threads in THREAD_COUNTS {
        tpupoint_par::set_threads(threads);
        c.bench_function(&format!("dbscan_sweep_cached/threads{threads}"), |b| {
            b.iter(|| {
                black_box(
                    dbscan::sweep(&features, &grid, &DbscanConfig::default())
                        .expect("within memory limits"),
                )
            })
        });
    }
    tpupoint_par::set_threads(0);
    // The pre-cache baseline: one full neighbor scan per grid point.
    let eps = dbscan::auto_eps(&features);
    c.bench_function("dbscan_sweep_uncached_baseline", |b| {
        b.iter(|| {
            for &m in &grid {
                black_box(
                    dbscan::run(
                        &features,
                        &DbscanConfig {
                            eps: Some(eps),
                            min_samples: m,
                            ..DbscanConfig::default()
                        },
                    )
                    .expect("within memory limits"),
                );
            }
        })
    });
}

fn bench_pca_project(c: &mut Criterion) {
    let (raw, _) = features_of(WorkloadId::DcganCifar10);
    for threads in THREAD_COUNTS {
        tpupoint_par::set_threads(threads);
        c.bench_function(&format!("pca_project/threads{threads}"), |b| {
            b.iter(|| black_box(pca::project(&raw.rows, 100)))
        });
    }
    tpupoint_par::set_threads(0);
}

criterion_group! {
    name = analyzer_sweeps;
    config = Criterion::default().sample_size(quick_or(10));
    targets = bench_kmeans_sweep, bench_dbscan_sweep, bench_pca_project,
}
criterion_main!(analyzer_sweeps);
