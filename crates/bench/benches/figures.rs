//! Criterion benches: one group per paper artifact, measuring the cost of
//! the algorithm that produces it, plus the OLS-versus-clustering overhead
//! comparison of Section VI-B.
//!
//! Run with `cargo bench -p tpupoint-bench`. The actual figure *series*
//! are produced by the `reproduce` binary; these benches measure how long
//! each analysis costs on a real profile, and print the headline numbers
//! as they go.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use tpupoint::analyzer::{dbscan, kmeans, ols, DbscanConfig, KmeansConfig, OlsConfig};
use tpupoint::prelude::*;
use tpupoint_bench::Suite;

fn profile_for(id: WorkloadId) -> Profile {
    let suite = Suite::new();
    let run = suite.tuned(id, TpuGeneration::V2);
    run.profile.clone()
}

/// Figure 4: cost of one k-means sweep (k = 1..15) on a profile.
fn bench_fig4_kmeans(c: &mut Criterion) {
    let profile = profile_for(WorkloadId::DcganCifar10);
    let analyzer = Analyzer::new(&profile);
    c.bench_function("fig4_kmeans_sweep", |b| {
        b.iter(|| black_box(analyzer.kmeans_sweep(1..=15)))
    });
}

/// Figure 5: cost of the DBSCAN min-samples sweep.
fn bench_fig5_dbscan(c: &mut Criterion) {
    let profile = profile_for(WorkloadId::DcganCifar10);
    let analyzer = Analyzer::new(&profile);
    c.bench_function("fig5_dbscan_sweep", |b| {
        b.iter(|| black_box(analyzer.dbscan_sweep().expect("within memory limits")))
    });
}

/// Figure 6: cost of the OLS threshold sweep.
fn bench_fig6_ols(c: &mut Criterion) {
    let profile = profile_for(WorkloadId::DcganCifar10);
    let analyzer = Analyzer::new(&profile);
    let thresholds: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    c.bench_function("fig6_ols_sweep", |b| {
        b.iter(|| black_box(analyzer.ols_threshold_sweep(&thresholds)))
    });
}

/// Section VI-B: OLS competes with the clustering methods at a fraction of
/// their cost. Single-run comparison on the largest (ResNet) profile.
fn bench_ols_overhead(c: &mut Criterion) {
    let profile = profile_for(WorkloadId::ResnetImagenet);
    let analyzer = Analyzer::new(&profile);
    let features = analyzer.features().clone();
    let mut group = c.benchmark_group("ols_overhead");
    group.bench_function("ols_single_scan", |b| {
        b.iter(|| black_box(ols::scan(&profile.steps, &OlsConfig::default())))
    });
    group.bench_function("kmeans_single_k5", |b| {
        b.iter(|| {
            black_box(kmeans::run(
                &features,
                &KmeansConfig {
                    k: 5,
                    ..KmeansConfig::default()
                },
            ))
        })
    });
    group.bench_function("dbscan_single_min30", |b| {
        b.iter(|| {
            black_box(
                dbscan::run(
                    &features,
                    &DbscanConfig {
                        min_samples: 30,
                        ..DbscanConfig::default()
                    },
                )
                .expect("within memory limits"),
            )
        })
    });
    group.finish();
}

/// Figures 10–13 substrate: cost of simulating + profiling one workload.
fn bench_profile_capture(c: &mut Criterion) {
    let suite = Suite::new();
    let cfg = suite.config(WorkloadId::BertMrpc, TpuGeneration::V2, Variant::Tuned);
    c.bench_function("profile_capture_bert_mrpc", |b| {
        b.iter_batched(
            || cfg.clone(),
            |cfg| {
                let tp = TpuPoint::builder().analyzer(false).build();
                black_box(tp.profile(cfg).expect("in-memory profiling"))
            },
            BatchSize::SmallInput,
        )
    });
}

/// Figure 14: cost of one optimizer measurement segment (the unit the
/// online tuner pays per candidate).
fn bench_fig14_segment(c: &mut Criterion) {
    use tpupoint::optimizer::{SegmentRunner, Tuner, TunerOptions};
    let suite = Suite::new();
    let cfg = suite.config(WorkloadId::QanetSquad, TpuGeneration::V2, Variant::Tuned);
    c.bench_function("fig14_tuner_full_climb", |b| {
        b.iter_batched(
            || (cfg.clone(), cfg.pipeline.clone()),
            |(cfg, pipeline)| {
                let mut runner = SegmentRunner::new(cfg, 16);
                let tuner = Tuner::new(TunerOptions::default());
                let params = tpupoint::optimizer::discover(&pipeline).adjustable;
                black_box(tuner.tune(&pipeline, &params, &mut runner))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig4_kmeans,
        bench_fig5_dbscan,
        bench_fig6_ols,
        bench_ols_overhead,
        bench_profile_capture,
        bench_fig14_segment,
}
criterion_main!(figures);
