//! # tpupoint-workloads
//!
//! The paper's workload suite (Table I) as simulated training jobs:
//!
//! | Workload  | Model      | Datasets                       | Type |
//! |-----------|------------|--------------------------------|------|
//! | BERT      | BERT-base  | SQuAD, MRPC, MNLI, CoLA        | NLP  |
//! | DCGAN     | DCGAN      | CIFAR-10, MNIST                | image generation |
//! | QANet     | QANet      | SQuAD                          | Q/A NLP |
//! | RetinaNet | RetinaNet  | COCO                           | object detection |
//! | ResNet    | ResNet-50  | ImageNet (+ CIFAR-10 reduced)  | classification |
//!
//! Each model is built as a [`tpupoint_graph::Graph`] whose operator mix
//! and arithmetic volume approximate the real network (forward plus a
//! backward pass of roughly 2× forward FLOPs, normalization, reshapes and
//! transposes, gradient all-reduce, and optimizer updates). Datasets carry
//! the exact byte sizes of Table I, so the host-side pipeline cost — the
//! paper's central bottleneck — scales the way the real inputs do.
//!
//! [`suite::WorkloadId`] enumerates every workload×dataset pair of the
//! evaluation, including the reduced-dataset runs of Figures 12–13, and
//! [`suite::build`] produces a ready-to-run [`tpupoint_runtime::JobConfig`]
//! for any of them on either TPU generation.
//!
//! ```
//! use tpupoint_workloads::{build, BuildOptions, WorkloadId};
//! use tpupoint_hw::TpuGeneration;
//!
//! let config = build(
//!     WorkloadId::DcganCifar10,
//!     TpuGeneration::V2,
//!     &BuildOptions { scale: 0.01, ..BuildOptions::default() },
//! );
//! assert_eq!(config.model, "DCGAN");
//! assert_eq!(config.pipeline.batch_size, 1024);
//! ```

pub mod datasets;
pub mod models;
pub mod suite;

pub use suite::{build, BuildOptions, Variant, WorkloadId};
