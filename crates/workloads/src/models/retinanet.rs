//! RetinaNet (Lin et al.): one-stage object detection with a ResNet
//! backbone, feature-pyramid network, and dense class/box heads; batch
//! size 64 on 640×640 COCO images (Table I).

use super::{conv_block, conv_block_backward, training_tail};
use tpupoint_graph::{fusion, DType, Graph, GraphBuilder, NodeId, OpKind, Shape};

struct Net {
    class_logits: NodeId,
    box_regress: NodeId,
    params: Vec<NodeId>,
    bwd_sites: Vec<(NodeId, (u64, u64), u64, u64)>,
}

fn network(b: &mut GraphBuilder, batch: u64, image: u64) -> Net {
    let x = b.input("images", DType::BF16, Shape::of(&[batch, image, image, 3]));
    // Anchor boxes arrive from the host pipeline alongside the images.
    let anchors = b.input("anchor_boxes", DType::BF16, Shape::of(&[batch, 1000, 4]));
    let _ = anchors;
    let mut params = Vec::new();
    let mut bwd_sites: Vec<(NodeId, (u64, u64), u64, u64)> = vec![(x, (7, 7), 64, 2)];
    // Backbone: stem plus four downsampling conv stages (reduced ResNet).
    let mut cur = conv_block(b, x, (7, 7), 64, 2);
    let stem_w = b.parameter("stem.w", DType::BF16, Shape::of(&[7, 7, 3, 64]));
    params.push(stem_w);
    for (si, ch) in [128u64, 256, 512, 512].into_iter().enumerate() {
        bwd_sites.push((cur, (3, 3), ch, 2));
        cur = conv_block(b, cur, (3, 3), ch, 2);
        let w = b.parameter(
            &format!("backbone{si}.w"),
            DType::BF16,
            Shape::of(&[3, 3, ch, ch]),
        );
        params.push(w);
    }
    // FPN lateral + output convs on the top feature map.
    let lateral = conv_block(b, cur, (1, 1), 256, 1);
    let fpn = conv_block(b, lateral, (3, 3), 256, 1);
    let fpn_w = b.parameter("fpn.w", DType::BF16, Shape::of(&[3, 3, 512, 256]));
    params.push(fpn_w);
    bwd_sites.push((lateral, (3, 3), 256, 1));
    // Heads: four convs each for classification and box regression.
    let mut cls = fpn;
    let mut boxr = fpn;
    for i in 0..4 {
        cls = conv_block(b, cls, (3, 3), 256, 1);
        boxr = conv_block(b, boxr, (3, 3), 256, 1);
        let w = b.parameter(
            &format!("head{i}.w"),
            DType::BF16,
            Shape::of(&[3, 3, 256, 512]),
        );
        params.push(w);
    }
    bwd_sites.push((fpn, (3, 3), 256, 1));
    bwd_sites.push((fpn, (3, 3), 256, 1));
    // Output projections: 91 COCO classes x 9 anchors, 4 box coords x 9.
    let class_logits = b.conv2d(cls, (3, 3), 91 * 9, 1);
    let box_regress = b.conv2d(boxr, (3, 3), 4 * 9, 1);
    Net {
        class_logits,
        box_regress,
        params,
        bwd_sites,
    }
}

/// RetinaNet training step (XLA-fused).
pub fn train_graph(batch: u64, image: u64) -> Graph {
    fusion::fuse(&train_graph_raw(batch, image))
}

/// RetinaNet training step before fusion (for ablations), with
/// focal-loss-style element-wise math.
pub fn train_graph_raw(batch: u64, image: u64) -> Graph {
    let mut b = GraphBuilder::new("RetinaNet");
    let net = network(&mut b, batch, image);
    // Focal loss: softmax, pow/scale (Mul), masking (Maximum/Minimum).
    // The element-wise chain is single-consumer, so it fuses.
    let probs = b.softmax(net.class_logits);
    let focal = b.unary(OpKind::Mul, probs);
    let masked = b.unary(OpKind::Maximum, focal);
    let cls_loss = b.reduce_sum(masked);
    let clipped = b.unary(OpKind::Minimum, net.box_regress);
    let box_loss = b.l2_loss(clipped);
    for &(x, hw, oc, stride) in &net.bwd_sites {
        let _ = conv_block_backward(&mut b, x, hw, oc, stride);
    }
    let mut outs = training_tail(&mut b, net.class_logits, &net.params);
    outs.push(cls_loss);
    outs.push(box_loss);
    b.finish(&outs)
}

/// RetinaNet evaluation step: forward detection plus COCO-metric style
/// reductions.
pub fn eval_graph(batch: u64, image: u64) -> Graph {
    let mut b = GraphBuilder::new("RetinaNet-eval");
    let net = network(&mut b, batch, image);
    let probs = b.softmax(net.class_logits);
    // COCO-style proxies from training-graph op kinds (Eq. 1 merging).
    let map_proxy = b.reduce_sum(probs);
    let det_count = b.l2_loss(net.box_regress);
    fusion::fuse(&b.finish(&[map_proxy, det_count]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_step_is_teraflop_scale() {
        let g = train_graph(64, 640);
        let tflops = g.total_flops() / 1e12;
        assert!(
            (1.0..60.0).contains(&tflops),
            "RetinaNet step = {tflops} TFLOPs"
        );
    }

    #[test]
    fn has_detection_specific_op_mix() {
        let g = train_graph(8, 640);
        let has = |k: OpKind| g.nodes().iter().any(|n| n.kind == k);
        assert!(has(OpKind::Conv2D));
        assert!(has(OpKind::L2Loss));
        assert!(has(OpKind::Conv2DBackpropInput));
        // Focal-loss element-wise chain fuses.
        assert!(has(OpKind::Fusion));
    }

    #[test]
    fn eval_graph_is_cheaper() {
        let t = train_graph(8, 640);
        let e = eval_graph(8, 640);
        assert!(e.total_flops() < t.total_flops() / 2.0);
    }

    #[test]
    fn image_size_drives_cost() {
        let small = train_graph(8, 320);
        let big = train_graph(8, 640);
        assert!(big.total_flops() > 3.0 * small.total_flops());
    }
}
