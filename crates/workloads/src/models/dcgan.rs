//! DCGAN (Radford et al.): image generation at batch size 1024
//! (Table I). The generator upsamples by reshaping channel depth into
//! spatial extent between stride-1 convolutions; the discriminator is a
//! strided conv stack with leaky-ReLU (`Maximum`) activations.

use super::{conv_block_backward, training_tail};
use tpupoint_graph::{fusion, DType, Graph, GraphBuilder, NodeId, OpKind, Shape};

const NOISE: u64 = 100;

fn generator(b: &mut GraphBuilder, batch: u64) -> (NodeId, Vec<NodeId>) {
    let z = b.input("noise", DType::BF16, Shape::of(&[batch, NOISE]));
    let w_proj = b.parameter("g.project", DType::BF16, Shape::of(&[NOISE, 4 * 4 * 512]));
    let mut params = vec![w_proj];
    let proj = b.matmul(z, w_proj);
    let mut x = b.reshape(proj, Shape::of(&[batch, 4, 4, 512]));
    // Each stage: reshape-upsample (2x spatial, channels preserved in
    // element count) then a stride-1 conv that doubles channels.
    for (stage, (h, c)) in [(8u64, 128u64), (16, 64), (32, 32)].into_iter().enumerate() {
        x = b.reshape(x, Shape::of(&[batch, h, h, c]));
        let conv = b.conv2d(x, (5, 5), c * 2, 1);
        // Bias add fuses with the conv into an XLA `fusion` kernel.
        let biased = b.unary(OpKind::BiasAdd, conv);
        let norm = b.batch_norm(biased);
        x = b.relu(norm);
        let w = b.parameter(
            &format!("g.conv{stage}"),
            DType::BF16,
            Shape::of(&[5, 5, c, c * 2]),
        );
        params.push(w);
    }
    // Final image head: 3 channels, tanh (fuses with the conv).
    let head = b.conv2d(x, (5, 5), 3, 1);
    let img = b.unary(OpKind::Tanh, head);
    (img, params)
}

fn discriminator(
    b: &mut GraphBuilder,
    image: NodeId,
    batch: u64,
    prefix: &str,
) -> (NodeId, Vec<NodeId>) {
    let mut params = Vec::new();
    let mut x = image;
    let mut in_c = 3u64;
    for (stage, c) in [64u64, 128, 256].into_iter().enumerate() {
        let conv = b.conv2d(x, (5, 5), c, 2);
        let biased = b.unary(OpKind::BiasAdd, conv);
        let norm = b.batch_norm(biased);
        x = b.binary(OpKind::Maximum, norm, norm); // leaky ReLU stand-in
        let w = b.parameter(
            &format!("{prefix}.conv{stage}"),
            DType::BF16,
            Shape::of(&[5, 5, in_c, c]),
        );
        params.push(w);
        in_c = c;
    }
    let w_fc = b.parameter(
        &format!("{prefix}.fc"),
        DType::BF16,
        Shape::of(&[4 * 4 * 256, 1]),
    );
    params.push(w_fc);
    let flat = b.reshape(x, Shape::of(&[batch, 4 * 4 * 256]));
    let logit = b.matmul(flat, w_fc);
    (logit, params)
}

/// DCGAN training step (XLA-fused).
pub fn train_graph(batch: u64) -> Graph {
    fusion::fuse(&train_graph_raw(batch))
}

/// DCGAN training step before fusion (for ablations).
pub fn train_graph_raw(batch: u64) -> Graph {
    let mut b = GraphBuilder::new("DCGAN");
    let real = b.input("real_images", DType::BF16, Shape::of(&[batch, 32, 32, 3]));
    let (fake, g_params) = generator(&mut b, batch);
    let (d_fake, d_params) = discriminator(&mut b, fake, batch, "d");
    let (d_real, _) = discriminator(&mut b, real, batch, "d_shared");
    let g_loss = b.reduce_sum(d_fake);
    let d_gap = b.binary(OpKind::Sub, d_real, d_fake);
    let d_loss = b.reduce_sum(d_gap);
    // Backward: discriminator convs on both paths, one generator stage.
    let _ = conv_block_backward(&mut b, real, (5, 5), 64, 2);
    let _ = conv_block_backward(&mut b, fake, (5, 5), 64, 2);
    let up = b.reshape(fake, Shape::of(&[batch, 16, 16, 12]));
    let _ = conv_block_backward(&mut b, up, (5, 5), 24, 1);
    let mut params = g_params;
    params.extend(d_params);
    let mut outs = training_tail(&mut b, fake, &params);
    outs.push(g_loss);
    outs.push(d_loss);
    b.finish(&outs)
}

/// DCGAN evaluation step: generate images and score them.
pub fn eval_graph(batch: u64) -> Graph {
    let mut b = GraphBuilder::new("DCGAN-eval");
    let (fake, _) = generator(&mut b, batch);
    let (d_fake, _) = discriminator(&mut b, fake, batch, "d");
    // Score with operator kinds the training graph already uses so eval
    // steps merge into the training phase under Eq. 1.
    let score = b.reduce_sum(d_fake);
    let gap = b.binary(OpKind::Sub, d_fake, d_fake);
    let spread = b.reduce_sum(gap);
    fusion::fuse(&b.finish(&[score, spread]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_produces_images_discriminator_scores_them() {
        let g = train_graph(1024);
        let has = |k: OpKind| g.nodes().iter().any(|n| n.kind == k);
        // Forward convs fuse with their bias adds into MXU fusion kernels.
        assert!(g
            .nodes()
            .iter()
            .any(|n| n.kind == OpKind::Fusion && n.uses_mxu));
        assert!(has(OpKind::Reshape));
        assert!(has(OpKind::Conv2DBackpropFilter));
        assert!(has(OpKind::FusedBatchNormGradV3));
    }

    #[test]
    fn train_flops_fit_small_image_gan() {
        let g = train_graph(1024);
        let gflops = g.total_flops() / 1e9;
        assert!(
            (50.0..10_000.0).contains(&gflops),
            "DCGAN step = {gflops} GFLOPs"
        );
    }

    #[test]
    fn eval_graph_lacks_backward_ops() {
        let e = eval_graph(1024);
        assert!(!e
            .nodes()
            .iter()
            .any(|n| n.kind == OpKind::Conv2DBackpropFilter));
        assert!(e.nodes().iter().any(|n| n.kind == OpKind::Sum));
    }

    #[test]
    fn batch_size_scales_arithmetic() {
        let small = train_graph(256);
        let big = train_graph(1024);
        assert!(big.total_flops() > 3.0 * small.total_flops());
    }
}
