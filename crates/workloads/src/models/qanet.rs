//! QANet (Yu et al.): reading comprehension combining local convolution
//! with global self-attention, batch size 32 on SQuAD (Table I). Five
//! encoder blocks stand in for the published stack; each block is
//! conv → conv → self-attention → feed-forward with layer norms.

use super::{dense_backward, training_tail};
use tpupoint_graph::{fusion, DType, Graph, GraphBuilder, NodeId, OpKind, Shape};

const HIDDEN: u64 = 128;
const SEQ: u64 = 400;
const VOCAB: u64 = 90_000;
const BLOCKS: usize = 5;

struct Encoder {
    output: NodeId,
    params: Vec<NodeId>,
}

fn encoder(b: &mut GraphBuilder, batch: u64, backward: bool) -> Encoder {
    let ids = b.input("context_ids", DType::I32, Shape::of(&[batch, SEQ]));
    let q_ids = b.input("question_ids", DType::I32, Shape::of(&[batch, 64]));
    let table = b.parameter("embeddings", DType::BF16, Shape::of(&[VOCAB, HIDDEN]));
    let mut params = vec![table];
    let ctx = b.gather(table, ids); // [batch, SEQ, HIDDEN]
    let que = b.gather(table, q_ids);
    let _ = que;
    let mut x = b.layer_norm(ctx);
    for blk in 0..BLOCKS {
        // Depthwise-separable convs, modeled as NHWC convs on
        // [batch, 1, SEQ, HIDDEN].
        let as_img = b.reshape(x, Shape::of(&[batch, 1, SEQ, HIDDEN]));
        let c1 = b.conv2d(as_img, (1, 7), HIDDEN, 1);
        let r1 = b.relu(c1);
        let c2 = b.conv2d(r1, (1, 7), HIDDEN, 1);
        let r2 = b.relu(c2);
        let back = b.reshape(r2, Shape::of(&[batch, SEQ, HIDDEN]));
        let n1 = b.layer_norm(back);
        // Self-attention.
        let w_atn = b.parameter(
            &format!("b{blk}.w_atn"),
            DType::BF16,
            Shape::of(&[HIDDEN, HIDDEN]),
        );
        let flat = b.reshape(n1, Shape::of(&[batch * SEQ, HIDDEN]));
        let proj = b.matmul(flat, w_atn);
        let _p3 = b.reshape(proj, Shape::of(&[batch, SEQ, HIDDEN]));
        let keys_t = b.transpose(n1, &[0, 2, 1]);
        let scores = b.matmul(n1, keys_t);
        let probs = b.softmax(scores);
        let context = b.matmul(probs, n1);
        let n2 = b.layer_norm(context);
        // Feed-forward.
        let w_ff = b.parameter(
            &format!("b{blk}.w_ff"),
            DType::BF16,
            Shape::of(&[HIDDEN, HIDDEN]),
        );
        let n2f = b.reshape(n2, Shape::of(&[batch * SEQ, HIDDEN]));
        let ff = b.matmul(n2f, w_ff);
        let act = b.relu(ff);
        let act3 = b.reshape(act, Shape::of(&[batch, SEQ, HIDDEN]));
        let res = b.binary(OpKind::Add, act3, n2);
        x = b.layer_norm(res);
        params.extend([w_atn, w_ff]);
        if backward {
            let _ = dense_backward(b, flat, w_atn);
            let _ = dense_backward(b, n2f, w_ff);
            let _ = b.conv2d_backprop_filter(as_img, (1, 7), HIDDEN, 1);
            let _ = b.conv2d_backprop_input(as_img, (1, 7), HIDDEN, 1);
            let g = b.unary(OpKind::ReluGrad, act);
            let _ = g;
        }
    }
    Encoder { output: x, params }
}

/// QANet training step (XLA-fused).
pub fn train_graph(batch: u64) -> Graph {
    fusion::fuse(&train_graph_raw(batch))
}

/// QANet training step before fusion (for ablations).
pub fn train_graph_raw(batch: u64) -> Graph {
    let mut b = GraphBuilder::new("QANet");
    let starts = b.input("start_positions", DType::I32, Shape::of(&[batch]));
    let enc = encoder(&mut b, batch, true);
    let w_span = b.parameter("span.w", DType::BF16, Shape::of(&[HIDDEN, 2]));
    let flat = b.reshape(enc.output, Shape::of(&[batch * SEQ, HIDDEN]));
    let logits = b.matmul(flat, w_span);
    let loss = b.softmax_cross_entropy(logits, starts);
    let mut params = enc.params;
    params.push(w_span);
    let mut outs = training_tail(&mut b, enc.output, &params);
    outs.push(loss);
    b.finish(&outs)
}

/// QANet evaluation step: forward plus span-accuracy reductions.
pub fn eval_graph(batch: u64) -> Graph {
    let mut b = GraphBuilder::new("QANet-eval");
    let starts = b.input("start_positions", DType::I32, Shape::of(&[batch]));
    let enc = encoder(&mut b, batch, false);
    let w_span = b.parameter("span.w", DType::BF16, Shape::of(&[HIDDEN, 2]));
    let flat = b.reshape(enc.output, Shape::of(&[batch * SEQ, HIDDEN]));
    let logits = b.matmul(flat, w_span);
    // Span metrics with training-graph op kinds only (Eq. 1 merging).
    let em = b.softmax_cross_entropy(logits, starts);
    let f1 = b.l2_loss(logits);
    fusion::fuse(&b.finish(&[em, f1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_convolution_and_attention() {
        let g = train_graph(32);
        let has = |k: OpKind| g.nodes().iter().any(|n| n.kind == k);
        // Forward convs fuse with their activations into MXU fusion
        // kernels; the backward convs remain visible.
        assert!(
            g.nodes()
                .iter()
                .any(|n| n.kind == OpKind::Fusion && n.uses_mxu),
            "local convolution (fused)"
        );
        assert!(has(OpKind::Conv2DBackpropFilter), "conv backward");
        assert!(has(OpKind::MatMul), "global self-attention");
        assert!(has(OpKind::Softmax) || has(OpKind::Fusion));
        assert!(has(OpKind::GatherV2));
    }

    #[test]
    fn flops_are_moderate_for_batch_32() {
        let g = train_graph(32);
        let gflops = g.total_flops() / 1e9;
        assert!(
            (50.0..5_000.0).contains(&gflops),
            "QANet step = {gflops} GFLOPs"
        );
    }

    #[test]
    fn eval_has_metrics_but_no_backward() {
        let e = eval_graph(32);
        assert!(e.nodes().iter().any(|n| n.kind == OpKind::L2Loss));
        assert!(!e
            .nodes()
            .iter()
            .any(|n| n.kind == OpKind::Conv2DBackpropFilter));
    }
}
