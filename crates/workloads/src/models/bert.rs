//! BERT (Devlin et al.) as used by the paper's NLP workloads: max
//! sequence length 128, batch size 32 (Table I). Six transformer blocks
//! stand in for BERT-base's twelve; hidden and FFN widths are the real
//! 768/3072.

use super::{dense_backward, training_tail};
use tpupoint_graph::{fusion, DType, Graph, GraphBuilder, NodeId, OpKind, Shape};

const HIDDEN: u64 = 768;
const FFN: u64 = 3072;
const VOCAB: u64 = 30_522;
const LAYERS: usize = 6;

struct Encoder {
    output: NodeId,
    params: Vec<NodeId>,
}

fn encoder_stack(b: &mut GraphBuilder, batch: u64, seq: u64, backward: bool) -> Encoder {
    let ids = b.input("input_ids", DType::I32, Shape::of(&[batch, seq]));
    let mask = b.input("input_mask", DType::I32, Shape::of(&[batch, seq]));
    let _ = mask;
    let table = b.parameter("embeddings", DType::BF16, Shape::of(&[VOCAB, HIDDEN]));
    let mut params = vec![table];
    let emb = b.gather(table, ids);
    let mut x = b.layer_norm(emb); // [batch, seq, hidden]
    for layer in 0..LAYERS {
        let w_qkv = b.parameter(
            &format!("l{layer}.w_qkv"),
            DType::BF16,
            Shape::of(&[HIDDEN, 3 * HIDDEN]),
        );
        let w_o = b.parameter(
            &format!("l{layer}.w_o"),
            DType::BF16,
            Shape::of(&[HIDDEN, HIDDEN]),
        );
        let w_ff1 = b.parameter(
            &format!("l{layer}.w_ff1"),
            DType::BF16,
            Shape::of(&[HIDDEN, FFN]),
        );
        let w_ff2 = b.parameter(
            &format!("l{layer}.w_ff2"),
            DType::BF16,
            Shape::of(&[FFN, HIDDEN]),
        );
        params.extend([w_qkv, w_o, w_ff1, w_ff2]);

        // Attention.
        let flat = b.reshape(x, Shape::of(&[batch * seq, HIDDEN]));
        let qkv = b.matmul(flat, w_qkv); // [bs, 3h]
        let _heads = b.reshape(qkv, Shape::of(&[batch, seq, 3 * HIDDEN]));
        let keys_t = b.transpose(x, &[0, 2, 1]); // [batch, hidden, seq]
        let scores = b.matmul(x, keys_t); // [batch, seq, seq]
        let probs = b.softmax(scores);
        let context = b.matmul(probs, x); // [batch, seq, hidden]
        let ctx_flat = b.reshape(context, Shape::of(&[batch * seq, HIDDEN]));
        let attn_out = b.matmul(ctx_flat, w_o);
        let attn3 = b.reshape(attn_out, Shape::of(&[batch, seq, HIDDEN]));
        let res1 = b.binary(OpKind::Add, attn3, x);
        let norm1 = b.layer_norm(res1);

        // Feed-forward.
        let n_flat = b.reshape(norm1, Shape::of(&[batch * seq, HIDDEN]));
        let h1 = b.matmul(n_flat, w_ff1);
        let act = b.unary(OpKind::Tanh, h1); // GELU stand-in
        let h2 = b.matmul(act, w_ff2);
        let h23 = b.reshape(h2, Shape::of(&[batch, seq, HIDDEN]));
        let res2 = b.binary(OpKind::Add, h23, norm1);
        x = b.layer_norm(res2);

        if backward {
            let _ = dense_backward(b, n_flat, w_ff1);
            let _ = dense_backward(b, act, w_ff2);
            let _ = dense_backward(b, ctx_flat, w_o);
            let _ = dense_backward(b, flat, w_qkv);
            let g = b.layer_norm(x);
            let _ = b.unary(OpKind::ReluGrad, g);
        }
    }
    Encoder { output: x, params }
}

/// BERT fine-tuning training step (XLA-fused).
pub fn train_graph(batch: u64, seq: u64) -> Graph {
    fusion::fuse(&train_graph_raw(batch, seq))
}

/// BERT fine-tuning training step before fusion (for ablations).
pub fn train_graph_raw(batch: u64, seq: u64) -> Graph {
    let mut b = GraphBuilder::new("BERT");
    let labels = {
        // Declared before the stack so inputs stay grouped in the graph.
        b.input("labels", DType::I32, Shape::of(&[batch]))
    };
    let enc = encoder_stack(&mut b, batch, seq, true);
    let w_cls = b.parameter("classifier", DType::BF16, Shape::of(&[HIDDEN, 2]));
    let pooled = b.reshape(enc.output, Shape::of(&[batch, seq * HIDDEN]));
    let first_tok = b.reshape(pooled, Shape::of(&[batch * seq, HIDDEN]));
    let logits = b.matmul(first_tok, w_cls);
    let loss = b.softmax_cross_entropy(logits, labels);
    let mut params = enc.params;
    params.push(w_cls);
    let mut outs = training_tail(&mut b, enc.output, &params);
    outs.push(loss);
    b.finish(&outs)
}

/// BERT evaluation step: forward pass plus accuracy-style reductions.
pub fn eval_graph(batch: u64, seq: u64) -> Graph {
    let mut b = GraphBuilder::new("BERT-eval");
    let labels = b.input("labels", DType::I32, Shape::of(&[batch]));
    let enc = encoder_stack(&mut b, batch, seq, false);
    let w_cls = b.parameter("classifier", DType::BF16, Shape::of(&[HIDDEN, 2]));
    let flat = b.reshape(enc.output, Shape::of(&[batch * seq, HIDDEN]));
    let logits = b.matmul(flat, w_cls);
    // Metrics reuse operator kinds already present in the training graph,
    // so an eval step's operator *set* is a subset of a train step's and
    // Eq. 1's min-normalized similarity merges them into one OLS phase.
    let loss = b.softmax_cross_entropy(logits, labels);
    let norm = b.l2_loss(logits);
    fusion::fuse(&b.finish(&[loss, norm]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_graph_has_transformer_scale_arithmetic() {
        let g = train_graph(32, 128);
        // 6 layers x (qkv + out + 2 ffn + attention) forward plus ~2x
        // backward at batch 32, seq 128, hidden 768 lands in the
        // hundreds-of-GFLOPs range.
        let gflops = g.total_flops() / 1e9;
        assert!(
            (100.0..4_000.0).contains(&gflops),
            "BERT step = {gflops} GFLOPs"
        );
    }

    #[test]
    fn train_graph_contains_the_expected_op_mix() {
        let g = train_graph(32, 128);
        let has = |k: OpKind| g.nodes().iter().any(|n| n.kind == k);
        for kind in [
            OpKind::MatMul,
            OpKind::Reshape,
            OpKind::Transpose,
            OpKind::LayerNorm,
            OpKind::GatherV2,
            OpKind::CrossReplicaSum,
            OpKind::ResourceApplyAdam,
            OpKind::L2Loss,
            OpKind::Fusion,
        ] {
            assert!(has(kind), "missing {kind}");
        }
    }

    #[test]
    fn eval_graph_is_smaller_and_has_eval_only_ops() {
        let train = train_graph(32, 128);
        let eval = eval_graph(32, 128);
        assert!(eval.node_count() < train.node_count());
        assert!(eval.total_flops() < train.total_flops() / 2.0);
        // Eval op kinds are a subset of train op kinds (Eq. 1 merging).
        use std::collections::BTreeSet;
        let kinds = |g: &Graph| -> BTreeSet<OpKind> { g.nodes().iter().map(|n| n.kind).collect() };
        assert!(kinds(&eval).is_subset(&kinds(&train)));
    }

    #[test]
    fn parameter_bytes_are_tens_of_megabytes() {
        let g = train_graph(32, 128);
        let bytes: u64 = g
            .nodes()
            .iter()
            .filter(|n| n.kind == OpKind::Parameter)
            .map(|n| n.output.size_bytes())
            .sum();
        let mb = bytes / (1024 * 1024);
        assert!((80..200).contains(&mb), "BERT params = {mb} MB");
    }
}
