//! Model-graph builders for the workload suite.
//!
//! Each model builds a training graph (forward pass, a backward pass of
//! roughly twice the forward arithmetic, gradient all-reduce, optimizer
//! updates, and regularization losses) and an evaluation graph (forward
//! pass plus metric reductions). Layer counts are reduced relative to the
//! published networks (e.g. 6 transformer blocks instead of BERT-base's
//! 12) to keep event volume manageable; the host-versus-TPU balance that
//! drives every figure is calibrated per dataset in [`crate::suite`], so
//! only the *mix* of operators matters here, and that mix is preserved.

pub mod bert;
pub mod dcgan;
pub mod qanet;
pub mod resnet;
pub mod retinanet;

use tpupoint_graph::{GraphBuilder, NodeId, OpKind};

/// Forward convolution block: conv → batch-norm → ReLU.
pub(crate) fn conv_block(
    b: &mut GraphBuilder,
    x: NodeId,
    filter_hw: (u64, u64),
    out_channels: u64,
    stride: u64,
) -> NodeId {
    let c = b.conv2d(x, filter_hw, out_channels, stride);
    // The bias add is element-wise and single-consumer, so the fusion pass
    // absorbs it together with the convolution into a `fusion` kernel —
    // which is why Table II shows `fusion` rather than forward `Conv2D`.
    let biased = b.unary(OpKind::BiasAdd, c);
    let n = b.batch_norm(biased);
    b.relu(n)
}

/// Backward of a convolution block: filter and input gradients (each the
/// forward's FLOPs), batch-norm gradient, and the ReLU gradient.
pub(crate) fn conv_block_backward(
    b: &mut GraphBuilder,
    x: NodeId,
    filter_hw: (u64, u64),
    out_channels: u64,
    stride: u64,
) -> NodeId {
    let gf = b.conv2d_backprop_filter(x, filter_hw, out_channels, stride);
    let gi = b.conv2d_backprop_input(x, filter_hw, out_channels, stride);
    let gn = b.batch_norm_grad(gi);
    let gr = b.unary(OpKind::ReluGrad, gn);
    let _ = gf;
    gr
}

/// Backward of a dense layer: two matmuls standing in for the dX and dW
/// products (same arithmetic volume as the real gradients).
pub(crate) fn dense_backward(b: &mut GraphBuilder, x: NodeId, w: NodeId) -> NodeId {
    let dx = b.matmul(x, w);
    let dw = b.matmul(x, w);
    let _ = dw;
    dx
}

/// The training tail shared by every model: L2 regularization on the
/// largest parameter, gradient all-reduce, and one fused optimizer update
/// per parameter.
pub(crate) fn training_tail(
    b: &mut GraphBuilder,
    grads_like: NodeId,
    params: &[NodeId],
) -> Vec<NodeId> {
    let mut outs = Vec::new();
    if let Some(&p0) = params.first() {
        outs.push(b.l2_loss(p0));
    }
    let reduced = b.all_reduce(grads_like);
    outs.push(reduced);
    for &p in params {
        outs.push(b.apply_adam(p, reduced));
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_graph::{DType, Shape};

    #[test]
    fn conv_block_emits_conv_bn_relu() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[2, 16, 16, 8]));
        let y = conv_block(&mut b, x, (3, 3), 8, 1);
        let g = b.finish(&[y]);
        let kinds: Vec<OpKind> = g.nodes().iter().map(|n| n.kind).collect();
        assert!(kinds.contains(&OpKind::Conv2D));
        assert!(kinds.contains(&OpKind::BiasAdd));
        assert!(kinds.contains(&OpKind::FusedBatchNormV3));
        assert!(kinds.contains(&OpKind::Relu));
    }

    #[test]
    fn conv_backward_matches_forward_flops_twice() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[2, 16, 16, 8]));
        let fwd = b.conv2d(x, (3, 3), 8, 1);
        let fwd_flops = b.finish(&[fwd]).total_flops();

        let mut b2 = GraphBuilder::new("t2");
        let x2 = b2.input("x", DType::BF16, Shape::of(&[2, 16, 16, 8]));
        let y2 = conv_block_backward(&mut b2, x2, (3, 3), 8, 1);
        let g2 = b2.finish(&[y2]);
        // Backprop filter + input each cost one forward.
        let conv_bwd_flops: f64 = g2
            .nodes()
            .iter()
            .filter(|n| n.kind.uses_mxu())
            .map(|n| n.flops)
            .sum();
        assert!((conv_bwd_flops - 2.0 * fwd_flops).abs() < 1.0);
    }

    #[test]
    fn training_tail_updates_every_parameter() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[4, 8]));
        let w1 = b.parameter("w1", DType::BF16, Shape::of(&[8, 8]));
        let w2 = b.parameter("w2", DType::BF16, Shape::of(&[8, 4]));
        let h = b.matmul(x, w1);
        let outs = training_tail(&mut b, h, &[w1, w2]);
        let g = b.finish(&outs);
        let adams = g
            .nodes()
            .iter()
            .filter(|n| n.kind == OpKind::ResourceApplyAdam)
            .count();
        assert_eq!(adams, 2);
        assert!(g.nodes().iter().any(|n| n.kind == OpKind::CrossReplicaSum));
        assert!(g.nodes().iter().any(|n| n.kind == OpKind::L2Loss));
    }
}
