//! ResNet-50 (He et al.): image classification at batch size 1024 on
//! 224×224 inputs (Table I). Eight bottleneck blocks stand in for the
//! published sixteen; the stem, strided stage transitions, and the final
//! dense classifier are as in the original.

use super::{conv_block, conv_block_backward, training_tail};
use tpupoint_graph::{fusion, DType, Graph, GraphBuilder, NodeId, OpKind, Shape};

/// `(blocks, channels, stride-of-first-block)` per stage; halved depth.
const STAGES: [(usize, u64, u64); 4] = [(2, 64, 1), (2, 128, 2), (2, 256, 2), (2, 512, 2)];

struct Backbone {
    output: NodeId,
    params: Vec<NodeId>,
    /// `(input, filter, channels, stride)` of convolutions to differentiate.
    bwd_sites: Vec<(NodeId, (u64, u64), u64, u64)>,
}

fn backbone(b: &mut GraphBuilder, batch: u64, image: u64) -> Backbone {
    let x = b.input("images", DType::BF16, Shape::of(&[batch, image, image, 3]));
    let mut params = Vec::new();
    let mut bwd_sites = vec![(x, (7, 7), 64u64, 2u64)];
    let mut cur = conv_block(b, x, (7, 7), 64, 2);
    let stem_w = b.parameter("stem.w", DType::BF16, Shape::of(&[7, 7, 3, 64]));
    params.push(stem_w);
    for (si, (blocks, ch, first_stride)) in STAGES.into_iter().enumerate() {
        for blk in 0..blocks {
            let stride = if blk == 0 { first_stride } else { 1 };
            // Bottleneck: 1x1 reduce, 3x3, 1x1 expand.
            bwd_sites.push((cur, (1, 1), ch, stride));
            let c1 = conv_block(b, cur, (1, 1), ch, stride);
            bwd_sites.push((c1, (3, 3), ch, 1));
            let c2 = conv_block(b, c1, (3, 3), ch, 1);
            let c3 = b.conv2d(c2, (1, 1), ch * 4, 1);
            let n3 = b.batch_norm(c3);
            // Residual add (projection shortcut folded into the add cost).
            let res = b.binary(OpKind::Add, n3, n3);
            cur = b.relu(res);
            let w = b.parameter(
                &format!("s{si}b{blk}.w"),
                DType::BF16,
                Shape::of(&[3, 3, ch, ch * 4]),
            );
            params.push(w);
        }
    }
    Backbone {
        output: cur,
        params,
        bwd_sites,
    }
}

/// ResNet-50 training step (XLA-fused).
pub fn train_graph(batch: u64, image: u64) -> Graph {
    fusion::fuse(&train_graph_raw(batch, image))
}

/// ResNet-50 training step before fusion (for ablations).
pub fn train_graph_raw(batch: u64, image: u64) -> Graph {
    let mut b = GraphBuilder::new("ResNet-50");
    let labels = b.input("labels", DType::I32, Shape::of(&[batch]));
    let net = backbone(&mut b, batch, image);
    // Global average pool (approximated by reshapes; the final stage
    // yields [batch, image/16, image/16, 2048] given the stem's stride-2
    // and the three stride-2 stage transitions).
    let pooled_len = 2048u64;
    let pooled = {
        let spatial = (image / 16) * (image / 16);
        let r = b.reshape(net.output, Shape::of(&[batch, spatial, pooled_len]));
        b.reshape(r, Shape::of(&[batch * spatial, pooled_len]))
    };
    let w_fc = b.parameter("fc.w", DType::BF16, Shape::of(&[pooled_len, 1000]));
    let logits = b.matmul(pooled, w_fc);
    let loss = b.softmax_cross_entropy(logits, labels);
    // Backward pass over every conv site.
    for &(x, hw, oc, stride) in &net.bwd_sites {
        let _ = conv_block_backward(&mut b, x, hw, oc, stride);
    }
    let mut params = net.params;
    params.push(w_fc);
    let mut outs = training_tail(&mut b, net.output, &params);
    outs.push(loss);
    b.finish(&outs)
}

/// ResNet-50 evaluation step: forward plus top-1 metric reductions.
pub fn eval_graph(batch: u64, image: u64) -> Graph {
    let mut b = GraphBuilder::new("ResNet-50-eval");
    let labels = b.input("labels", DType::I32, Shape::of(&[batch]));
    let net = backbone(&mut b, batch, image);
    let w_fc = b.parameter("fc.w", DType::BF16, Shape::of(&[2048, 1000]));
    let flat = {
        let spatial = (image / 16) * (image / 16);
        let r = b.reshape(net.output, Shape::of(&[batch, spatial, 2048]));
        b.reshape(r, Shape::of(&[batch * spatial, 2048]))
    };
    let logits = b.matmul(flat, w_fc);
    // Top-1 metric built from training-graph op kinds (Eq. 1 merging).
    let acc = b.softmax_cross_entropy(logits, labels);
    let norm = b.l2_loss(logits);
    fusion::fuse(&b.finish(&[acc, norm]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_step_is_teraflop_scale_at_batch_1024() {
        let g = train_graph(1024, 224);
        let tflops = g.total_flops() / 1e12;
        assert!(
            (2.0..40.0).contains(&tflops),
            "ResNet step = {tflops} TFLOPs"
        );
    }

    #[test]
    fn conv_mix_dominates() {
        let g = train_graph(256, 224);
        let conv_flops: f64 = g
            .nodes()
            .iter()
            .filter(|n| n.uses_mxu)
            .map(|n| n.flops)
            .sum();
        assert!(conv_flops / g.total_flops() > 0.8);
    }

    #[test]
    fn backward_ops_present() {
        let g = train_graph(256, 224);
        let has = |k: OpKind| g.nodes().iter().any(|n| n.kind == k);
        assert!(has(OpKind::Conv2DBackpropFilter));
        assert!(has(OpKind::Conv2DBackpropInput));
        assert!(has(OpKind::FusedBatchNormGradV3));
    }

    #[test]
    fn eval_graph_is_forward_only() {
        let e = eval_graph(256, 224);
        assert!(!e
            .nodes()
            .iter()
            .any(|n| n.kind == OpKind::Conv2DBackpropFilter));
    }

    #[test]
    fn smaller_images_cost_less() {
        let small = train_graph(256, 32);
        let big = train_graph(256, 224);
        assert!(big.total_flops() > 10.0 * small.total_flops());
    }
}
