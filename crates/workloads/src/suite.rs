//! The workload suite: every model×dataset pair of the paper's
//! evaluation, buildable as a runnable job config.

use crate::{datasets, models};
use tpupoint_graph::PipelineSpec;
use tpupoint_hw::{HostSpec, TpuChipSpec, TpuGeneration};
use tpupoint_runtime::{DatasetSpec, JobConfig};

/// Pipeline quality of the built job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// Google-engineer-tuned reference pipeline (the public TF TPU models).
    #[default]
    Tuned,
    /// The naive implementation of Section VII-C: single-threaded decode,
    /// minimal buffering, redundant transform passes.
    Naive,
}

/// Options shared by every workload build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildOptions {
    /// Fraction of the paper's training steps to simulate (1.0 = full
    /// length). Eval/checkpoint cadence scales along, so the phase
    /// structure is preserved.
    pub scale: f64,
    /// Pipeline variant.
    pub variant: Variant,
    /// Simulation seed.
    pub seed: u64,
    /// Extra host cost while profiling (see
    /// [`JobConfig::host_overhead_frac`]).
    pub host_overhead_frac: f64,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            scale: 1.0,
            variant: Variant::Tuned,
            seed: 42,
            host_overhead_frac: 0.0,
        }
    }
}

/// Every workload×dataset pair of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadId {
    /// BERT fine-tuning on MRPC.
    BertMrpc,
    /// BERT fine-tuning on SQuAD.
    BertSquad,
    /// BERT fine-tuning on CoLA.
    BertCola,
    /// BERT fine-tuning on MNLI.
    BertMnli,
    /// DCGAN on CIFAR-10.
    DcganCifar10,
    /// DCGAN on MNIST.
    DcganMnist,
    /// QANet on SQuAD.
    QanetSquad,
    /// RetinaNet on COCO.
    RetinanetCoco,
    /// ResNet-50 on ImageNet.
    ResnetImagenet,
    /// QANet on half of SQuAD (Figures 12–13).
    QanetSquadHalf,
    /// RetinaNet on half of COCO (Figures 12–13).
    RetinanetCocoHalf,
    /// ResNet-50 fed CIFAR-10 through the ImageNet pipeline
    /// (Figures 12–13).
    ResnetCifar10,
}

impl WorkloadId {
    /// The nine primary workload×dataset pairs of Table I.
    pub fn paper_nine() -> [WorkloadId; 9] {
        [
            WorkloadId::BertMrpc,
            WorkloadId::BertSquad,
            WorkloadId::BertCola,
            WorkloadId::BertMnli,
            WorkloadId::DcganCifar10,
            WorkloadId::DcganMnist,
            WorkloadId::QanetSquad,
            WorkloadId::RetinanetCoco,
            WorkloadId::ResnetImagenet,
        ]
    }

    /// Every workload, primary and reduced.
    pub fn all() -> [WorkloadId; 12] {
        [
            WorkloadId::BertMrpc,
            WorkloadId::BertSquad,
            WorkloadId::BertCola,
            WorkloadId::BertMnli,
            WorkloadId::DcganCifar10,
            WorkloadId::DcganMnist,
            WorkloadId::QanetSquad,
            WorkloadId::RetinanetCoco,
            WorkloadId::ResnetImagenet,
            WorkloadId::QanetSquadHalf,
            WorkloadId::RetinanetCocoHalf,
            WorkloadId::ResnetCifar10,
        ]
    }

    /// The reduced-dataset runs of Figures 12 and 13.
    pub fn reduced_three() -> [WorkloadId; 3] {
        [
            WorkloadId::QanetSquadHalf,
            WorkloadId::RetinanetCocoHalf,
            WorkloadId::ResnetCifar10,
        ]
    }

    /// Human-readable `Model-Dataset` label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadId::BertMrpc => "BERT-MRPC",
            WorkloadId::BertSquad => "BERT-SQuAD",
            WorkloadId::BertCola => "BERT-CoLA",
            WorkloadId::BertMnli => "BERT-MNLI",
            WorkloadId::DcganCifar10 => "DCGAN-CIFAR10",
            WorkloadId::DcganMnist => "DCGAN-MNIST",
            WorkloadId::QanetSquad => "QANet-SQuAD",
            WorkloadId::RetinanetCoco => "RetinaNet-COCO",
            WorkloadId::ResnetImagenet => "ResNet-ImageNet",
            WorkloadId::QanetSquadHalf => "QANet-SQuAD/2",
            WorkloadId::RetinanetCocoHalf => "RetinaNet-COCO/2",
            WorkloadId::ResnetCifar10 => "ResNet-CIFAR10",
        }
    }

    /// A simulation scale giving runs of roughly 300–1,300 profile steps —
    /// large enough for stable phase statistics, small enough to sweep the
    /// whole suite quickly. Full-length runs use `scale = 1.0`.
    pub fn default_sim_scale(self) -> f64 {
        match self {
            WorkloadId::BertMrpc | WorkloadId::BertCola => 1.0,
            WorkloadId::BertSquad => 0.1,
            WorkloadId::BertMnli => 0.025,
            WorkloadId::DcganCifar10 | WorkloadId::DcganMnist => 0.08,
            WorkloadId::QanetSquad | WorkloadId::QanetSquadHalf => 0.01,
            WorkloadId::RetinanetCoco | WorkloadId::RetinanetCocoHalf => 0.035,
            WorkloadId::ResnetImagenet | WorkloadId::ResnetCifar10 => 0.008,
        }
    }
}

impl std::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Error for unknown workload names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError(String);

impl std::fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown workload `{}`; known: {}",
            self.0,
            WorkloadId::all()
                .iter()
                .map(|w| w.label().to_ascii_lowercase())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for ParseWorkloadError {}

impl std::str::FromStr for WorkloadId {
    type Err = ParseWorkloadError;

    /// Accepts the figure labels case-insensitively, e.g. `bert-mrpc`,
    /// `resnet-imagenet`, `qanet-squad/2`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let needle = s.to_ascii_lowercase();
        WorkloadId::all()
            .iter()
            .find(|w| w.label().to_ascii_lowercase() == needle)
            .copied()
            .ok_or_else(|| ParseWorkloadError(s.to_owned()))
    }
}

struct Schedule {
    train_steps: u64,
    iterations_per_loop: u64,
    steps_per_eval: Option<u64>,
    eval_steps: u64,
    checkpoint_every: u64,
    warmup_steps: u64,
    substitution_prob: f64,
    /// Calibration multiplier on host preparation cost (see DESIGN.md).
    host_cost_factor: f64,
    /// Fixed per-batch host pipeline work, single-thread microseconds.
    host_us_per_batch: f64,
    /// Achievable MXU efficiency for this workload's op shapes.
    mxu_efficiency: f64,
}

fn scaled(value: u64, scale: f64) -> u64 {
    ((value as f64 * scale).round() as u64).max(1)
}

/// Builds a runnable job config for a workload on a TPU generation.
pub fn build(id: WorkloadId, generation: TpuGeneration, opts: &BuildOptions) -> JobConfig {
    assert!(
        opts.scale > 0.0 && opts.scale <= 1.0,
        "scale must be in (0, 1]"
    );
    let (model_name, dataset, batch, train_graph, eval_graph, sched) = definition(id);
    let s = opts.scale;
    let pipeline = match opts.variant {
        Variant::Tuned => PipelineSpec::tuned_default(batch),
        Variant::Naive => PipelineSpec::naive(batch),
    };
    let mut chip = TpuChipSpec::for_generation(generation);
    chip.mxu_efficiency = sched.mxu_efficiency;
    // TPUv3 doubles the MXUs but the workloads keep their TPUv2 batch
    // sizes, so each MXU sees half the work and per-MXU efficiency drops;
    // the paper observes that "we did not observe performance gains ...
    // for TPUv3" (Section VII-C). A 0.55 derating yields the paper's
    // ~1.1x effective speedup and the halved MXU utilization of Fig. 11.
    if generation == TpuGeneration::V3 {
        chip.mxu_efficiency *= 0.55;
    }
    JobConfig {
        model: model_name,
        train_graph,
        eval_graph,
        pipeline,
        dataset,
        chip,
        host: HostSpec::skylake_n1(),
        train_steps: scaled(sched.train_steps, s),
        // The loop cadence scales with the run so scaled runs keep the
        // same *number* of loop boundaries (distinct step behaviour) as
        // full-length ones.
        iterations_per_loop: scaled(sched.iterations_per_loop, s)
            .clamp(2, scaled(sched.train_steps, s)),
        steps_per_eval: sched.steps_per_eval.map(|v| scaled(v, s)),
        // Eval segments keep their full length: evaluation passes cost the
        // same regardless of how much training is simulated.
        eval_steps: sched.eval_steps.clamp(2, 400),
        checkpoint_every: scaled(sched.checkpoint_every, s),
        warmup_steps: sched.warmup_steps,
        seed: opts.seed,
        jitter_sigma: 0.03,
        substitution_prob: sched.substitution_prob,
        host_overhead_frac: opts.host_overhead_frac,
    }
}

#[allow(clippy::type_complexity)]
fn definition(
    id: WorkloadId,
) -> (
    String,
    DatasetSpec,
    u64,
    tpupoint_graph::Graph,
    tpupoint_graph::Graph,
    Schedule,
) {
    let bert = |dataset: DatasetSpec, host_us_per_batch: f64, mxu_efficiency: f64| {
        let epochs = 3;
        let batch = 32;
        let train_steps = dataset.num_examples * epochs / batch;
        (
            "BERT".to_owned(),
            dataset.clone(),
            batch,
            models::bert::train_graph(batch, 128),
            models::bert::eval_graph(batch, 128),
            Schedule {
                train_steps,
                iterations_per_loop: 100,
                steps_per_eval: None,
                eval_steps: (dataset.num_examples / 10 / batch).clamp(8, 400),
                checkpoint_every: 1_000,
                warmup_steps: 8,
                substitution_prob: 0.003,
                host_cost_factor: 1.0,
                host_us_per_batch,
                mxu_efficiency,
            },
        )
    };
    match id {
        WorkloadId::BertMrpc => bert(datasets::mrpc(), 289_270.0, 0.307),
        WorkloadId::BertSquad => bert(datasets::squad(), 271_330.0, 0.337),
        WorkloadId::BertCola => bert(datasets::cola(), 330_100.0, 0.300),
        WorkloadId::BertMnli => bert(datasets::mnli(), 272_170.0, 0.337),
        WorkloadId::DcganCifar10 | WorkloadId::DcganMnist => {
            let dataset = if id == WorkloadId::DcganCifar10 {
                datasets::cifar10()
            } else {
                datasets::mnist()
            };
            let (host_us_per_batch, dcgan_eff) = if id == WorkloadId::DcganCifar10 {
                (143_040.0, 0.249)
            } else {
                (201_700.0, 0.230)
            };
            let batch = 1024;
            (
                "DCGAN".to_owned(),
                dataset,
                batch,
                models::dcgan::train_graph(batch),
                models::dcgan::eval_graph(batch),
                Schedule {
                    train_steps: 10_000,
                    iterations_per_loop: 100,
                    steps_per_eval: Some(1_000),
                    eval_steps: 40,
                    checkpoint_every: 1_000,
                    warmup_steps: 8,
                    substitution_prob: 0.002,
                    host_cost_factor: 1.0,
                    host_us_per_batch,
                    mxu_efficiency: dcgan_eff,
                },
            )
        }
        WorkloadId::QanetSquad | WorkloadId::QanetSquadHalf => {
            let dataset = if id == WorkloadId::QanetSquad {
                datasets::squad()
            } else {
                datasets::squad().reduced(0.5)
            };
            let batch = 32;
            (
                "QANet".to_owned(),
                dataset,
                batch,
                models::qanet::train_graph(batch),
                models::qanet::eval_graph(batch),
                Schedule {
                    train_steps: 100_000,
                    iterations_per_loop: 100,
                    steps_per_eval: Some(20_000),
                    eval_steps: 200,
                    checkpoint_every: 5_000,
                    warmup_steps: 8,
                    substitution_prob: 0.0012,
                    host_cost_factor: 1.0,
                    host_us_per_batch: 32_320.0,
                    mxu_efficiency: 0.263,
                },
            )
        }
        WorkloadId::RetinanetCoco | WorkloadId::RetinanetCocoHalf => {
            let dataset = if id == WorkloadId::RetinanetCoco {
                datasets::coco()
            } else {
                datasets::coco().reduced(0.5)
            };
            let batch = 64;
            let steps_per_epoch = 120_000 / batch;
            (
                "RetinaNet".to_owned(),
                dataset,
                batch,
                models::retinanet::train_graph(batch, 640),
                models::retinanet::eval_graph(batch, 640),
                Schedule {
                    train_steps: steps_per_epoch * 15,
                    iterations_per_loop: 100,
                    steps_per_eval: Some(steps_per_epoch),
                    eval_steps: 60,
                    checkpoint_every: steps_per_epoch,
                    warmup_steps: 8,
                    substitution_prob: 0.03,
                    host_cost_factor: 1.2,
                    host_us_per_batch: 180_750.0,
                    mxu_efficiency: 0.807,
                },
            )
        }
        WorkloadId::ResnetImagenet | WorkloadId::ResnetCifar10 => {
            // CIFAR-10 flows through the same input methodology but its
            // 32x32 images shrink the per-step compute ~50x, so the host
            // becomes the bottleneck — the paper's "greatest change"
            // workload in Figures 12-13.
            let (dataset, image, host_us) = if id == WorkloadId::ResnetImagenet {
                (datasets::imagenet(), 224, 4_305_530.0)
            } else {
                // CIFAR-10 records are ~40x smaller, so per-batch parsing
                // is far cheaper even through the same methodology.
                (datasets::cifar10(), 32, 215_000.0)
            };
            let batch = 1024;
            (
                "ResNet-50".to_owned(),
                dataset,
                batch,
                models::resnet::train_graph(batch, image),
                models::resnet::eval_graph(batch, image),
                Schedule {
                    train_steps: 112_590,
                    iterations_per_loop: 100,
                    steps_per_eval: Some(6_255),
                    eval_steps: 48,
                    checkpoint_every: 6_255,
                    warmup_steps: 8,
                    substitution_prob: 0.02,
                    host_cost_factor: 0.9,
                    host_us_per_batch: host_us,
                    mxu_efficiency: 0.669,
                },
            )
        }
    }
    .into_with_factor()
}

/// Helper trait gluing the per-model closures' output with the dataset's
/// calibration factor.
trait IntoWithFactor {
    #[allow(clippy::type_complexity)]
    fn into_with_factor(
        self,
    ) -> (
        String,
        DatasetSpec,
        u64,
        tpupoint_graph::Graph,
        tpupoint_graph::Graph,
        Schedule,
    );
}

impl IntoWithFactor
    for (
        String,
        DatasetSpec,
        u64,
        tpupoint_graph::Graph,
        tpupoint_graph::Graph,
        Schedule,
    )
{
    fn into_with_factor(self) -> Self {
        let (name, mut dataset, batch, train, eval, sched) = self;
        dataset.host_cost_factor = sched.host_cost_factor;
        dataset.host_us_per_batch = sched.host_us_per_batch;
        (name, dataset, batch, train, eval, sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_builds_on_both_generations() {
        let opts = BuildOptions {
            scale: 0.01,
            ..BuildOptions::default()
        };
        for id in WorkloadId::paper_nine()
            .into_iter()
            .chain(WorkloadId::reduced_three())
        {
            for generation in [TpuGeneration::V2, TpuGeneration::V3] {
                let cfg = build(id, generation, &opts);
                assert!(cfg.train_steps >= 1, "{id}");
                assert!(!cfg.step_plan().is_empty(), "{id}");
                assert!(cfg.train_graph.node_count() > 10, "{id}");
            }
        }
    }

    #[test]
    fn table_one_parameters_are_respected() {
        let opts = BuildOptions::default();
        let dcgan = build(WorkloadId::DcganCifar10, TpuGeneration::V2, &opts);
        assert_eq!(dcgan.pipeline.batch_size, 1024);
        assert_eq!(dcgan.train_steps, 10_000);
        assert_eq!(dcgan.steps_per_eval, Some(1_000));
        assert_eq!(dcgan.iterations_per_loop, 100);

        let resnet = build(WorkloadId::ResnetImagenet, TpuGeneration::V2, &opts);
        assert_eq!(resnet.train_steps, 112_590);
        assert_eq!(resnet.pipeline.batch_size, 1024);

        let bert = build(WorkloadId::BertMrpc, TpuGeneration::V2, &opts);
        assert_eq!(bert.pipeline.batch_size, 32);
        assert_eq!(bert.train_steps, 3_668 * 3 / 32);

        let retina = build(WorkloadId::RetinanetCoco, TpuGeneration::V2, &opts);
        assert_eq!(retina.pipeline.batch_size, 64);
        assert_eq!(retina.train_steps, 15 * 120_000 / 64);
    }

    #[test]
    fn scaling_preserves_cadence_structure() {
        let full = build(
            WorkloadId::DcganCifar10,
            TpuGeneration::V2,
            &BuildOptions::default(),
        );
        let small = build(
            WorkloadId::DcganCifar10,
            TpuGeneration::V2,
            &BuildOptions {
                scale: 0.1,
                ..BuildOptions::default()
            },
        );
        // Same number of eval segments either way.
        let segments = |c: &JobConfig| c.train_steps / c.steps_per_eval.unwrap();
        assert_eq!(segments(&full), segments(&small));
        assert_eq!(small.train_steps, 1_000);
    }

    #[test]
    fn default_sim_scales_give_tractable_runs() {
        for id in WorkloadId::paper_nine() {
            let cfg = build(
                id,
                TpuGeneration::V2,
                &BuildOptions {
                    scale: id.default_sim_scale(),
                    ..BuildOptions::default()
                },
            );
            let steps = cfg.step_plan().len();
            assert!((150..2_500).contains(&steps), "{id}: {steps} plan steps");
        }
    }

    #[test]
    fn naive_variant_swaps_the_pipeline() {
        let tuned = build(
            WorkloadId::QanetSquad,
            TpuGeneration::V2,
            &BuildOptions::default(),
        );
        let naive = build(
            WorkloadId::QanetSquad,
            TpuGeneration::V2,
            &BuildOptions {
                variant: Variant::Naive,
                ..BuildOptions::default()
            },
        );
        assert!(naive.pipeline.num_parallel_calls < tuned.pipeline.num_parallel_calls);
        assert_eq!(naive.train_steps, tuned.train_steps);
    }

    #[test]
    fn reduced_datasets_shrink_but_keep_record_size() {
        let full = build(
            WorkloadId::RetinanetCoco,
            TpuGeneration::V2,
            &BuildOptions::default(),
        );
        let half = build(
            WorkloadId::RetinanetCocoHalf,
            TpuGeneration::V2,
            &BuildOptions::default(),
        );
        let diff = (half.dataset.size_bytes * 2).abs_diff(full.dataset.size_bytes);
        assert!(diff <= 1, "halving should preserve total size, diff {diff}");
        let rb_full = full.dataset.record_bytes() as f64;
        let rb_half = half.dataset.record_bytes() as f64;
        assert!(
            (rb_half - rb_full).abs() / rb_full < 1e-3,
            "record size should be preserved: {rb_half} vs {rb_full}"
        );
    }

    #[test]
    fn workload_ids_parse_from_labels() {
        for id in WorkloadId::all() {
            let parsed: WorkloadId = id.label().to_ascii_lowercase().parse().unwrap();
            assert_eq!(parsed, id);
        }
        assert!("not-a-workload".parse::<WorkloadId>().is_err());
        let err = "nope".parse::<WorkloadId>().unwrap_err().to_string();
        assert!(err.contains("bert-mrpc"));
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        let _ = build(
            WorkloadId::BertMrpc,
            TpuGeneration::V2,
            &BuildOptions {
                scale: 0.0,
                ..BuildOptions::default()
            },
        );
    }
}
