//! The datasets of Table I, with their exact published sizes.

use tpupoint_runtime::{DataKind, DatasetSpec};

const MIB: u64 = 1024 * 1024;
const GIB: u64 = 1024 * MIB;

/// Stanford Question Answering Dataset: 422.27 MiB, ~87.6k training
/// examples.
pub fn squad() -> DatasetSpec {
    DatasetSpec {
        name: "SQuAD".to_owned(),
        size_bytes: (422.27 * MIB as f64) as u64,
        num_examples: 87_599,
        kind: DataKind::Text,
        host_cost_factor: 1.0,
        host_us_per_batch: 0.0,
    }
}

/// Microsoft Research Paraphrase Corpus: 2.85 MiB, 3,668 examples.
pub fn mrpc() -> DatasetSpec {
    DatasetSpec {
        name: "MRPC".to_owned(),
        size_bytes: (2.85 * MIB as f64) as u64,
        num_examples: 3_668,
        kind: DataKind::Text,
        host_cost_factor: 1.0,
        host_us_per_batch: 0.0,
    }
}

/// Multi-Genre Natural Language Inference: 430.61 MiB, 392,702 examples.
pub fn mnli() -> DatasetSpec {
    DatasetSpec {
        name: "MNLI".to_owned(),
        size_bytes: (430.61 * MIB as f64) as u64,
        num_examples: 392_702,
        kind: DataKind::Text,
        host_cost_factor: 1.0,
        host_us_per_batch: 0.0,
    }
}

/// Corpus of Linguistic Acceptability: 1.44 MiB, 8,551 examples.
pub fn cola() -> DatasetSpec {
    DatasetSpec {
        name: "CoLA".to_owned(),
        size_bytes: (1.44 * MIB as f64) as u64,
        num_examples: 8_551,
        kind: DataKind::Text,
        host_cost_factor: 1.0,
        host_us_per_batch: 0.0,
    }
}

/// CIFAR-10: 178.87 MiB, 60,000 32×32 images.
pub fn cifar10() -> DatasetSpec {
    DatasetSpec {
        name: "CIFAR10".to_owned(),
        size_bytes: (178.87 * MIB as f64) as u64,
        num_examples: 60_000,
        kind: DataKind::Image,
        host_cost_factor: 1.0,
        host_us_per_batch: 0.0,
    }
}

/// MNIST: 56.21 MiB, 60,000 28×28 images.
pub fn mnist() -> DatasetSpec {
    DatasetSpec {
        name: "MNIST".to_owned(),
        size_bytes: (56.21 * MIB as f64) as u64,
        num_examples: 60_000,
        kind: DataKind::Image,
        host_cost_factor: 1.0,
        host_us_per_batch: 0.0,
    }
}

/// Common Objects in Context: 48.49 GiB, ~118k annotated images.
pub fn coco() -> DatasetSpec {
    DatasetSpec {
        name: "COCO".to_owned(),
        size_bytes: (48.49 * GIB as f64) as u64,
        num_examples: 118_287,
        kind: DataKind::ImageDetection,
        host_cost_factor: 1.0,
        host_us_per_batch: 0.0,
    }
}

/// ImageNet (ILSVRC-2012 train): 143.38 GiB, ~1.28M images.
pub fn imagenet() -> DatasetSpec {
    DatasetSpec {
        name: "ImageNet".to_owned(),
        size_bytes: (143.38 * GIB as f64) as u64,
        num_examples: 1_281_167,
        kind: DataKind::Image,
        host_cost_factor: 1.0,
        host_us_per_batch: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_sizes_are_reproduced() {
        assert_eq!(squad().size_bytes, 442_782_187);
        assert_eq!(mrpc().num_examples, 3_668);
        assert_eq!(coco().size_bytes / GIB, 48);
        assert_eq!(imagenet().size_bytes / GIB, 143);
    }

    #[test]
    fn record_sizes_are_plausible() {
        // ImageNet JPEGs average ~100 KB; COCO images ~400 KB; text
        // records are small.
        let im = imagenet().record_bytes();
        assert!((80_000..150_000).contains(&im), "imagenet record {im}");
        let co = coco().record_bytes();
        assert!((300_000..500_000).contains(&co), "coco record {co}");
        assert!(squad().record_bytes() < 10_000);
    }

    #[test]
    fn kinds_match_workload_types() {
        assert_eq!(squad().kind, DataKind::Text);
        assert_eq!(cifar10().kind, DataKind::Image);
        assert_eq!(coco().kind, DataKind::ImageDetection);
    }
}
