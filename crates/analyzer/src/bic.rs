//! Bayesian information criterion for k-means clusterings.
//!
//! SimPoint selects its cluster count with the BIC (Pelleg & Moore's
//! X-means formulation); the paper notes this and substitutes the elbow
//! method because IPC-style architectural metrics are unavailable on
//! TPUs. Both are provided here: [`crate::kmeans::elbow_k`] and
//! [`best_k_by_bic`].

use crate::features::{dist2, FeatureMatrix};
use crate::kmeans::{self, KmeansConfig, KmeansResult};

/// BIC score of one clustering over the data it was fit on (larger is
/// better). Uses the identical-spherical-Gaussian likelihood of X-means.
///
/// Returns `f64::NEG_INFINITY` for degenerate inputs (no points, or more
/// clusters than points).
pub fn bic_score(matrix: &FeatureMatrix, result: &KmeansResult) -> f64 {
    let r = matrix.len();
    let k = result.centroids.len();
    let d = matrix.dims().max(1);
    if r == 0 || k == 0 || k > r {
        return f64::NEG_INFINITY;
    }
    // Cluster sizes.
    let mut sizes = vec![0usize; k];
    for &c in &result.assignments {
        sizes[c] += 1;
    }
    // Pooled variance estimate; floor avoids -inf on perfect clusterings.
    let denom = (r.saturating_sub(k)).max(1) as f64;
    let sigma2 = (result.sse / (denom * d as f64)).max(1e-12);

    let rf = r as f64;
    let df = d as f64;
    let mut log_likelihood = 0.0;
    for &rj in &sizes {
        if rj == 0 {
            continue;
        }
        let rjf = rj as f64;
        log_likelihood += rjf * rjf.ln() - rjf * rf.ln();
    }
    log_likelihood +=
        -(rf * df / 2.0) * (2.0 * std::f64::consts::PI * sigma2).ln() - (rf - k as f64) * df / 2.0;

    // Free parameters: k-1 mixing weights, k*d centroid coordinates, one
    // shared variance.
    let p = (k - 1) as f64 + (k * d) as f64 + 1.0;
    log_likelihood - p / 2.0 * rf.ln()
}

/// Sweeps k over `range` and returns `(k, bic)` pairs.
pub fn sweep(
    matrix: &FeatureMatrix,
    range: std::ops::RangeInclusive<usize>,
    config: &KmeansConfig,
) -> Vec<(usize, f64)> {
    range
        .map(|k| {
            let result = kmeans::run(matrix, &KmeansConfig { k, ..*config });
            (k, bic_score(matrix, &result))
        })
        .collect()
}

/// The k maximizing the BIC over `range`.
pub fn best_k_by_bic(
    matrix: &FeatureMatrix,
    range: std::ops::RangeInclusive<usize>,
    config: &KmeansConfig,
) -> Option<usize> {
    sweep(matrix, range, config)
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(k, _)| k)
}

/// Mean within-cluster distance diagnostic used in tests and reports.
pub fn mean_within_cluster_distance(matrix: &FeatureMatrix, result: &KmeansResult) -> f64 {
    if matrix.is_empty() {
        return 0.0;
    }
    let total: f64 = matrix
        .rows
        .iter()
        .zip(&result.assignments)
        .map(|(row, &c)| dist2(row, &result.centroids[c]).sqrt())
        .sum();
    total / matrix.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::SimRng;

    fn blobs(k: usize, per: usize, spread: f64) -> FeatureMatrix {
        let mut rng = SimRng::seed_from(17);
        let mut rows = Vec::new();
        let mut steps = Vec::new();
        for b in 0..k {
            let cx = (b as f64) * 25.0;
            let cy = (b as f64 % 2.0) * 40.0;
            for i in 0..per {
                rows.push(vec![
                    cx + rng.standard_normal() * spread,
                    cy + rng.standard_normal() * spread,
                ]);
                steps.push((b * per + i) as u64);
            }
        }
        FeatureMatrix { steps, rows }
    }

    #[test]
    fn bic_peaks_at_the_true_cluster_count() {
        let m = blobs(4, 30, 0.5);
        let best = best_k_by_bic(&m, 1..=8, &KmeansConfig::default()).expect("non-empty");
        assert!((3..=5).contains(&best), "BIC chose k = {best}");
    }

    #[test]
    fn bic_penalizes_overfitting() {
        let m = blobs(2, 40, 0.5);
        let s = sweep(&m, 1..=10, &KmeansConfig::default());
        let at = |k: usize| s.iter().find(|(kk, _)| *kk == k).unwrap().1;
        assert!(at(2) > at(1), "two blobs beat one cluster");
        assert!(at(2) > at(10), "parameter penalty kicks in");
    }

    #[test]
    fn bic_agrees_with_elbow_on_clean_data() {
        let m = blobs(3, 40, 0.4);
        let cfg = KmeansConfig::default();
        let bic_k = best_k_by_bic(&m, 1..=8, &cfg).unwrap();
        let elbow_k = kmeans::elbow_k(&kmeans::sweep(&m, 1..=8, &cfg)).unwrap();
        assert!(
            (bic_k as i64 - elbow_k as i64).abs() <= 1,
            "bic {bic_k} vs elbow {elbow_k}"
        );
    }

    #[test]
    fn degenerate_inputs_score_neg_infinity() {
        let empty = FeatureMatrix {
            steps: vec![],
            rows: vec![],
        };
        let result = kmeans::run(&empty, &KmeansConfig::default());
        assert_eq!(bic_score(&empty, &result), f64::NEG_INFINITY);
    }

    #[test]
    fn perfect_clustering_does_not_blow_up() {
        // Two exactly-repeated points per cluster → sse 0 → variance floor.
        let m = FeatureMatrix {
            steps: vec![0, 1, 2, 3],
            rows: vec![
                vec![0.0, 0.0],
                vec![0.0, 0.0],
                vec![9.0, 9.0],
                vec![9.0, 9.0],
            ],
        };
        let result = kmeans::run(
            &m,
            &KmeansConfig {
                k: 2,
                ..KmeansConfig::default()
            },
        );
        let score = bic_score(&m, &result);
        assert!(score.is_finite());
    }

    #[test]
    fn within_cluster_distance_shrinks_with_more_clusters() {
        let m = blobs(4, 25, 1.0);
        let one = kmeans::run(
            &m,
            &KmeansConfig {
                k: 1,
                ..KmeansConfig::default()
            },
        );
        let four = kmeans::run(
            &m,
            &KmeansConfig {
                k: 4,
                ..KmeansConfig::default()
            },
        );
        assert!(mean_within_cluster_distance(&m, &four) < mean_within_cluster_distance(&m, &one));
    }
}
