//! Phases: groups of steps with similar behaviour, plus the coverage and
//! top-operator statistics the paper reports on them.

use crate::ols::Segment;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tpupoint_profiler::{Profile, StepRecord};
use tpupoint_simcore::{OpId, SimDuration};

/// One phase: a set of steps exhibiting the same behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase identifier (cluster label or segment index).
    pub id: usize,
    /// Member profile steps.
    pub steps: Vec<u64>,
    /// Accumulated operator time of the member steps.
    pub total_time: SimDuration,
    /// True if this phase collects DBSCAN noise points.
    pub is_noise: bool,
}

/// All phases of one summarization, ready for coverage queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSet {
    /// The phases, in construction order.
    pub phases: Vec<Phase>,
    /// Accumulated operator time over every step.
    pub total_time: SimDuration,
}

impl PhaseSet {
    /// Builds phases from per-record cluster labels (k-means/DBSCAN).
    /// Noise points (label `-1`) form their own phase, since the paper
    /// "consider\[s\] these unlabeled samples to be a cluster as well".
    ///
    /// # Panics
    ///
    /// Panics if `labels` and `records` lengths differ.
    pub fn from_labels(records: &[StepRecord], labels: &[isize]) -> PhaseSet {
        assert_eq!(records.len(), labels.len(), "one label per record");
        let mut by_label: BTreeMap<isize, Phase> = BTreeMap::new();
        let mut total_time = SimDuration::ZERO;
        for (record, &label) in records.iter().zip(labels) {
            let time = record.total_duration();
            total_time += time;
            let next_id = by_label.len();
            let phase = by_label.entry(label).or_insert_with(|| Phase {
                id: next_id,
                steps: Vec::new(),
                total_time: SimDuration::ZERO,
                is_noise: label == -1,
            });
            phase.steps.push(record.step);
            phase.total_time += time;
        }
        PhaseSet {
            phases: by_label.into_values().collect(),
            total_time,
        }
    }

    /// Builds phases from contiguous OLS segments.
    pub fn from_segments(records: &[StepRecord], segments: &[Segment]) -> PhaseSet {
        let total_time = records.iter().map(StepRecord::total_duration).sum();
        let phases = segments
            .iter()
            .enumerate()
            .map(|(id, seg)| {
                let members = &records[seg.start..seg.end];
                Phase {
                    id,
                    steps: members.iter().map(|r| r.step).collect(),
                    total_time: members.iter().map(StepRecord::total_duration).sum(),
                    is_noise: false,
                }
            })
            .collect();
        PhaseSet { phases, total_time }
    }

    /// Phases ordered longest-first.
    pub fn by_time_desc(&self) -> Vec<&Phase> {
        let mut refs: Vec<&Phase> = self.phases.iter().collect();
        refs.sort_by(|a, b| b.total_time.cmp(&a.total_time).then(a.id.cmp(&b.id)));
        refs
    }

    /// Fraction of total time covered by the `n` longest phases —
    /// Figures 7, 8, and 9.
    pub fn coverage_top(&self, n: usize) -> f64 {
        if self.total_time.is_zero() {
            return 0.0;
        }
        let covered: SimDuration = self
            .by_time_desc()
            .into_iter()
            .take(n)
            .map(|p| p.total_time)
            .sum();
        covered.as_micros() as f64 / self.total_time.as_micros() as f64
    }

    /// Per-phase coverage fractions of the `n` longest phases (the stacked
    /// bars of Figures 7–9).
    pub fn top_coverages(&self, n: usize) -> Vec<f64> {
        if self.total_time.is_zero() {
            return Vec::new();
        }
        self.by_time_desc()
            .into_iter()
            .take(n)
            .map(|p| p.total_time.as_micros() as f64 / self.total_time.as_micros() as f64)
            .collect()
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// True if there are no phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

/// Top-`n` operators within a phase, split by execution side (the
/// structure of Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopOps {
    /// Host-side `(op name, total duration, invocations)`, descending.
    pub host: Vec<(String, SimDuration, u64)>,
    /// TPU-side `(op name, total duration, invocations)`, descending.
    pub tpu: Vec<(String, SimDuration, u64)>,
}

/// Ranks the operators of `phase` by accumulated duration.
pub fn top_operators(profile: &Profile, phase: &Phase, n: usize) -> TopOps {
    let mut acc: BTreeMap<OpId, (SimDuration, u64)> = BTreeMap::new();
    let members: std::collections::HashSet<u64> = phase.steps.iter().copied().collect();
    for record in &profile.steps {
        if !members.contains(&record.step) {
            continue;
        }
        for (op, stats) in &record.ops {
            let entry = acc.entry(*op).or_insert((SimDuration::ZERO, 0));
            entry.0 += stats.total;
            entry.1 += stats.count;
        }
    }
    let mut host = Vec::new();
    let mut tpu = Vec::new();
    for (op, (total, count)) in acc {
        let row = (profile.op_name(op).to_owned(), total, count);
        if profile.op_on_host[op.0 as usize] {
            host.push(row);
        } else {
            tpu.push(row);
        }
    }
    let by_time = |a: &(String, SimDuration, u64), b: &(String, SimDuration, u64)| b.1.cmp(&a.1);
    host.sort_by(by_time);
    tpu.sort_by(by_time);
    host.truncate(n);
    tpu.truncate(n);
    TopOps { host, tpu }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::{SimTime, Track};

    fn record(step: u64, ops: &[(u32, u64, bool)]) -> StepRecord {
        let mut r = StepRecord::new(step);
        for &(op, dur, on_tpu) in ops {
            r.absorb(
                OpId(op),
                if on_tpu {
                    Track::TpuCore(0)
                } else {
                    Track::Host
                },
                SimTime::from_micros(step * 1000),
                SimDuration::from_micros(dur),
                SimDuration::ZERO,
            );
        }
        r
    }

    fn records() -> Vec<StepRecord> {
        vec![
            record(1, &[(0, 100, true), (1, 20, false)]),
            record(2, &[(0, 110, true), (1, 25, false)]),
            record(3, &[(2, 500, true)]),
            record(4, &[(0, 90, true)]),
        ]
    }

    #[test]
    fn labels_group_records_into_phases() {
        let recs = records();
        let set = PhaseSet::from_labels(&recs, &[0, 0, 1, 0]);
        assert_eq!(set.len(), 2);
        let p0 = &set.phases[0];
        assert_eq!(p0.steps, vec![1, 2, 4]);
        assert_eq!(p0.total_time.as_micros(), 100 + 20 + 110 + 25 + 90);
        assert!(!p0.is_noise);
    }

    #[test]
    fn noise_label_forms_a_noise_phase() {
        let recs = records();
        let set = PhaseSet::from_labels(&recs, &[-1, 0, 0, -1]);
        let noise = set
            .phases
            .iter()
            .find(|p| p.is_noise)
            .expect("noise phase exists");
        assert_eq!(noise.steps, vec![1, 4]);
    }

    #[test]
    fn segments_preserve_contiguity() {
        let recs = records();
        let set = PhaseSet::from_segments(
            &recs,
            &[Segment { start: 0, end: 2 }, Segment { start: 2, end: 4 }],
        );
        assert_eq!(set.len(), 2);
        assert_eq!(set.phases[0].steps, vec![1, 2]);
        assert_eq!(set.phases[1].steps, vec![3, 4]);
        assert_eq!(set.total_time.as_micros(), 845);
    }

    #[test]
    fn coverage_of_all_phases_is_one() {
        let recs = records();
        let set = PhaseSet::from_labels(&recs, &[0, 1, 2, 0]);
        assert!((set.coverage_top(10) - 1.0).abs() < 1e-12);
        let top1 = set.coverage_top(1);
        assert!(top1 > 0.0 && top1 < 1.0);
    }

    #[test]
    fn by_time_desc_orders_longest_first() {
        let recs = records();
        let set = PhaseSet::from_labels(&recs, &[0, 0, 1, 0]);
        let ordered = set.by_time_desc();
        assert!(ordered[0].total_time >= ordered[1].total_time);
    }

    #[test]
    fn top_coverages_sums_to_coverage() {
        let recs = records();
        let set = PhaseSet::from_labels(&recs, &[0, 1, 1, 2]);
        let fractions = set.top_coverages(2);
        let sum: f64 = fractions.iter().sum();
        assert!((sum - set.coverage_top(2)).abs() < 1e-12);
    }

    #[test]
    fn top_operators_split_host_and_tpu() {
        let recs = records();
        let profile = Profile {
            model: "m".into(),
            dataset: "d".into(),
            op_names: vec![
                "fusion".into(),
                "OutfeedDequeueTuple".into(),
                "Reshape".into(),
            ],
            op_uses_mxu: vec![true, false, false],
            op_on_host: vec![false, true, false],
            steps: recs.clone(),
            windows: vec![],
            step_marks: vec![],
            checkpoints: vec![],
            dropped_windows: 0,
            lost_events: 0,
            store_errors: 0,
            store_error: None,
        };
        let set = PhaseSet::from_labels(&recs, &[0, 0, 1, 0]);
        let top = top_operators(&profile, &set.phases[0], 5);
        assert_eq!(top.tpu[0].0, "fusion");
        assert_eq!(top.tpu[0].1.as_micros(), 300);
        assert_eq!(top.tpu[0].2, 3);
        assert_eq!(top.host[0].0, "OutfeedDequeueTuple");
        assert_eq!(top.host[0].2, 2);
    }

    #[test]
    #[should_panic(expected = "one label per record")]
    fn label_length_mismatch_panics() {
        let recs = records();
        let _ = PhaseSet::from_labels(&recs, &[0, 1]);
    }
}
