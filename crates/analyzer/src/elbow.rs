//! The elbow method (Thorndike, 1953), used by the paper as the heuristic
//! to "cut clustering off when improvement stops increasing significantly".

/// Finds the elbow of a monotone curve `ys` sampled at `xs`: the index
/// maximizing the perpendicular distance to the chord between the first
/// and last points. Returns `None` for fewer than three points.
///
/// Works for both decreasing curves (k-means sum of squared distances vs k)
/// and increasing ones (DBSCAN noise ratio vs min-samples).
pub fn elbow_index(xs: &[f64], ys: &[f64]) -> Option<usize> {
    if xs.len() != ys.len() || xs.len() < 3 {
        return None;
    }
    let n = xs.len();
    let (x0, y0) = (xs[0], ys[0]);
    let (x1, y1) = (xs[n - 1], ys[n - 1]);
    let dx = x1 - x0;
    let dy = y1 - y0;
    let norm = (dx * dx + dy * dy).sqrt();
    if norm == 0.0 {
        return None;
    }
    let mut best = None;
    let mut best_dist = -1.0;
    for i in 1..n - 1 {
        // Distance from (xs[i], ys[i]) to the chord.
        let dist = (dy * xs[i] - dx * ys[i] + x1 * y0 - y1 * x0).abs() / norm;
        if dist > best_dist {
            best_dist = dist;
            best = Some(i);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_sharp_elbow_in_decreasing_curve() {
        // SSE-like: steep drop then flat.
        let xs: Vec<f64> = (1..=10).map(|k| k as f64).collect();
        let ys = vec![100.0, 40.0, 12.0, 5.0, 4.5, 4.2, 4.0, 3.9, 3.8, 3.7];
        let idx = elbow_index(&xs, &ys).expect("elbow exists");
        // Elbow near k=3..4.
        assert!((2..=3).contains(&idx), "elbow at index {idx}");
    }

    #[test]
    fn finds_elbow_in_increasing_curve() {
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let ys = vec![0.01, 0.02, 0.03, 0.05, 0.30, 0.55, 0.80, 0.95];
        let idx = elbow_index(&xs, &ys).expect("elbow exists");
        assert!((3..=4).contains(&idx), "elbow at index {idx}");
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert_eq!(elbow_index(&[1.0, 2.0], &[3.0, 4.0]), None);
        assert_eq!(elbow_index(&[1.0], &[1.0]), None);
        assert_eq!(elbow_index(&[], &[]), None);
        // Identical endpoints: no chord.
        assert_eq!(elbow_index(&[1.0, 1.0, 1.0], &[2.0, 2.0, 2.0]), None);
        // Mismatched lengths.
        assert_eq!(elbow_index(&[1.0, 2.0, 3.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn straight_line_picks_an_interior_point() {
        // All interior distances are ~0; any interior index is acceptable.
        let xs: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x).collect();
        let idx = elbow_index(&xs, &ys).expect("returns something");
        assert!((1..=3).contains(&idx));
    }
}
