//! k-means clustering, "implemented like SimPoint does" (Section IV-A):
//! run for k = 1..15 and pick the knee of the sum-of-squared-distances
//! curve with the elbow method.
//!
//! Two layers of performance work live here, both bit-deterministic for
//! any thread count:
//!
//! * the per-iteration **assignment step** fans out over the pool for
//!   large step counts (each row's nearest centroid is independent);
//! * the k-**sweep** either runs every k in parallel (cold start) or
//!   **warm-starts** run k from run k-1's final centroids plus one
//!   k-means++ pick ([`KmeansConfig::warm_start`], the default), which
//!   replaces `n_init` full restarts per k with a single Lloyd descent
//!   and keeps the SSD curve monotone non-increasing by construction.

use crate::elbow::elbow_index;
use crate::features::{dist2, FeatureMatrix};
use tpupoint_simcore::SimRng;

/// Row count below which the assignment step stays serial; smaller
/// matrices lose more to task hand-off than they gain from the pool.
const PAR_ASSIGN_MIN_ROWS: usize = 256;

/// Configuration of one k-means run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Lloyd iterations cap.
    pub max_iters: usize,
    /// Independent restarts; the lowest-SSE run wins.
    pub n_init: usize,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
    /// Seed run k of a [`sweep`] from run k-1's centroids plus one
    /// k-means++ pick instead of `n_init` fresh restarts. Ignored by
    /// single [`run`]s.
    pub warm_start: bool,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        KmeansConfig {
            k: 5,
            max_iters: 50,
            n_init: 3,
            seed: 0x7e57,
            warm_start: true,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Cluster index of each row.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of rows to their centroids.
    pub sse: f64,
}

/// Runs k-means on the rows of `matrix`.
///
/// # Panics
///
/// Panics if `config.k` is zero.
pub fn run(matrix: &FeatureMatrix, config: &KmeansConfig) -> KmeansResult {
    assert!(config.k > 0, "k must be positive");
    let n = matrix.len();
    if n == 0 {
        return KmeansResult {
            assignments: Vec::new(),
            centroids: Vec::new(),
            sse: 0.0,
        };
    }
    let k = config.k.min(n);
    let mut best: Option<KmeansResult> = None;
    for restart in 0..config.n_init.max(1) {
        let mut rng = SimRng::seed_from(config.seed ^ (restart as u64).wrapping_mul(0x9E37));
        let result = lloyd(matrix, k, config.max_iters, &mut rng);
        if best.as_ref().is_none_or(|b| result.sse < b.sse) {
            best = Some(result);
        }
    }
    best.expect("at least one restart ran")
}

/// One weighted k-means++ pick against the current squared distances.
pub(crate) fn kmeanspp_pick(min_d2: &[f64], rng: &mut SimRng) -> usize {
    let n = min_d2.len();
    let total: f64 = min_d2.iter().sum();
    if total <= 0.0 {
        return rng.uniform_u64(0, n as u64 - 1) as usize;
    }
    let mut target = rng.uniform_f64() * total;
    let mut chosen = n - 1;
    for (i, &w) in min_d2.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            chosen = i;
            break;
        }
    }
    chosen
}

/// k-means++ seeding of `k` centroids.
pub(crate) fn seed_centroids(matrix: &FeatureMatrix, k: usize, rng: &mut SimRng) -> Vec<Vec<f64>> {
    let n = matrix.len();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(matrix.rows[rng.uniform_u64(0, n as u64 - 1) as usize].clone());
    let mut min_d2: Vec<f64> = matrix
        .rows
        .iter()
        .map(|r| dist2(r, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let idx = kmeanspp_pick(&min_d2, rng);
        centroids.push(matrix.rows[idx].clone());
        let latest = centroids.last().expect("just pushed");
        for (i, row) in matrix.rows.iter().enumerate() {
            min_d2[i] = min_d2[i].min(dist2(row, latest));
        }
    }
    centroids
}

/// The nearest centroid of one row.
pub(crate) fn nearest(row: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best_c = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let dd = dist2(row, centroid);
        if dd < best_d {
            best_d = dd;
            best_c = c;
        }
    }
    best_c
}

/// Lloyd iterations from the given initial centroids.
///
/// The assignment step — the O(rows × k × dims) hot loop — fans out over
/// the pool for large matrices; every row's nearest centroid is computed
/// independently and the SSE is folded serially in row order, so the
/// result is bit-identical for any thread count.
pub(crate) fn lloyd_from(
    matrix: &FeatureMatrix,
    mut centroids: Vec<Vec<f64>>,
    max_iters: usize,
) -> KmeansResult {
    let n = matrix.len();
    let d = matrix.dims();
    let k = centroids.len();
    let pool = tpupoint_par::pool();
    let parallel = n >= PAR_ASSIGN_MIN_ROWS && pool.size() > 1;
    let mut assignments = vec![0usize; n];
    for _ in 0..max_iters {
        // Assign.
        let fresh: Vec<usize> = if parallel {
            pool.par_map(&matrix.rows, |_, row| nearest(row, &centroids))
        } else {
            matrix
                .rows
                .iter()
                .map(|row| nearest(row, &centroids))
                .collect()
        };
        let changed = fresh != assignments;
        assignments = fresh;
        // Update.
        let mut sums = vec![vec![0.0; d]; k];
        let mut counts = vec![0usize; k];
        for (i, row) in matrix.rows.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, x) in sums[assignments[i]].iter_mut().zip(row) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
        }
        if !changed {
            break;
        }
    }

    let row_d2: Vec<f64> = if parallel {
        pool.par_map(&matrix.rows, |i, row| {
            dist2(row, &centroids[assignments[i]])
        })
    } else {
        matrix
            .rows
            .iter()
            .zip(&assignments)
            .map(|(row, &c)| dist2(row, &centroids[c]))
            .collect()
    };
    let sse = row_d2.iter().sum();
    KmeansResult {
        assignments,
        centroids,
        sse,
    }
}

fn lloyd(matrix: &FeatureMatrix, k: usize, max_iters: usize, rng: &mut SimRng) -> KmeansResult {
    let centroids = seed_centroids(matrix, k, rng);
    lloyd_from(matrix, centroids, max_iters)
}

/// One warm-started sweep step: the previous run's final centroids plus a
/// single k-means++ pick, then one Lloyd descent. Adding a centroid can
/// only shrink each row's nearest-centroid distance and Lloyd never
/// increases the SSE, so `result.sse <= previous.sse` by construction.
fn run_warm(
    matrix: &FeatureMatrix,
    previous: &KmeansResult,
    config: &KmeansConfig,
) -> KmeansResult {
    let mut rng = SimRng::seed_from(
        config
            .seed
            .wrapping_add((previous.centroids.len() as u64 + 1).wrapping_mul(0x51ab)),
    );
    let mut centroids = previous.centroids.clone();
    let min_d2: Vec<f64> = matrix
        .rows
        .iter()
        .zip(&previous.assignments)
        .map(|(row, &c)| dist2(row, &centroids[c]))
        .collect();
    centroids.push(matrix.rows[kmeanspp_pick(&min_d2, &mut rng)].clone());
    lloyd_from(matrix, centroids, config.max_iters)
}

/// Sweeps k over `range`, returning `(k, sse)` pairs — the data behind
/// Figure 4.
///
/// With [`KmeansConfig::warm_start`] (the default) the sweep walks k
/// upward, seeding each run from the previous one; the per-iteration
/// assignment step still uses the pool. With `warm_start` off every k is
/// an independent fresh run and the sweep itself fans out over the pool.
/// Both modes produce the same output for any thread count.
pub fn sweep(
    matrix: &FeatureMatrix,
    range: std::ops::RangeInclusive<usize>,
    config: &KmeansConfig,
) -> Vec<(usize, f64)> {
    let n = matrix.len();
    if config.warm_start && n > 0 {
        let mut out = Vec::new();
        let mut previous: Option<KmeansResult> = None;
        for k in range {
            let result = match &previous {
                // Warm-start only while k actually grows the centroid
                // set (k is capped at the row count in `run`).
                Some(prev) if k.min(n) == prev.centroids.len() + 1 => {
                    run_warm(matrix, prev, config)
                }
                _ => run(matrix, &KmeansConfig { k, ..*config }),
            };
            out.push((k, result.sse));
            previous = Some(result);
        }
        return out;
    }
    let ks: Vec<usize> = range.collect();
    tpupoint_par::pool().par_map(&ks, |_, &k| {
        let result = run(matrix, &KmeansConfig { k, ..*config });
        (k, result.sse)
    })
}

/// Applies the elbow method to a sweep, returning the chosen k.
pub fn elbow_k(sweep: &[(usize, f64)]) -> Option<usize> {
    let xs: Vec<f64> = sweep.iter().map(|(k, _)| *k as f64).collect();
    let ys: Vec<f64> = sweep.iter().map(|(_, s)| *s).collect();
    elbow_index(&xs, &ys).map(|i| sweep[i].0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs of 20 points each.
    fn blobs() -> FeatureMatrix {
        let mut rng = SimRng::seed_from(5);
        let centers = [(0.0, 0.0), (10.0, 0.0), (5.0, 12.0)];
        let mut rows = Vec::new();
        let mut steps = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..20 {
                rows.push(vec![
                    cx + rng.standard_normal() * 0.3,
                    cy + rng.standard_normal() * 0.3,
                ]);
                steps.push((ci * 20 + i) as u64);
            }
        }
        FeatureMatrix { steps, rows }
    }

    #[test]
    fn recovers_three_blobs() {
        let m = blobs();
        let result = run(
            &m,
            &KmeansConfig {
                k: 3,
                ..KmeansConfig::default()
            },
        );
        // All points of one blob share a label.
        for blob in 0..3 {
            let labels: Vec<usize> = (blob * 20..(blob + 1) * 20)
                .map(|i| result.assignments[i])
                .collect();
            assert!(labels.iter().all(|&l| l == labels[0]), "blob {blob} split");
        }
        assert!(result.sse < 60.0 * 1.0, "sse {}", result.sse);
    }

    #[test]
    fn sse_decreases_with_k() {
        let m = blobs();
        let sweep = sweep(&m, 1..=6, &KmeansConfig::default());
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 + 1e-9,
                "sse should not increase: {pair:?}"
            );
        }
    }

    #[test]
    fn elbow_picks_the_true_cluster_count() {
        let m = blobs();
        let s = sweep(&m, 1..=8, &KmeansConfig::default());
        let k = elbow_k(&s).expect("elbow exists");
        assert!((2..=4).contains(&k), "elbow k = {k}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let m = blobs();
        let a = run(&m, &KmeansConfig::default());
        let b = run(&m, &KmeansConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn k_capped_at_point_count() {
        let m = FeatureMatrix {
            steps: vec![1, 2],
            rows: vec![vec![0.0], vec![1.0]],
        };
        let result = run(
            &m,
            &KmeansConfig {
                k: 10,
                ..KmeansConfig::default()
            },
        );
        assert!(result.centroids.len() <= 2);
        assert_eq!(result.sse, 0.0);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = FeatureMatrix {
            steps: vec![],
            rows: vec![],
        };
        let result = run(&m, &KmeansConfig::default());
        assert!(result.assignments.is_empty());
    }

    #[test]
    fn warm_sweep_is_monotone_non_increasing() {
        let m = blobs();
        let s = sweep(
            &m,
            1..=10,
            &KmeansConfig {
                warm_start: true,
                ..KmeansConfig::default()
            },
        );
        for pair in s.windows(2) {
            assert!(pair[1].1 <= pair[0].1 + 1e-12, "ssd increased: {pair:?}");
        }
    }

    #[test]
    fn cold_sweep_matches_independent_runs() {
        let m = blobs();
        let config = KmeansConfig {
            warm_start: false,
            ..KmeansConfig::default()
        };
        let s = sweep(&m, 1..=6, &config);
        let independent: Vec<(usize, f64)> = (1..=6)
            .map(|k| (k, run(&m, &KmeansConfig { k, ..config }).sse))
            .collect();
        assert_eq!(s, independent);
    }

    #[test]
    fn parallel_assignment_is_bit_identical_to_serial() {
        // Big enough to cross PAR_ASSIGN_MIN_ROWS so the pooled
        // assignment path actually runs.
        let mut rng = SimRng::seed_from(9);
        let rows: Vec<Vec<f64>> = (0..600)
            .map(|_| {
                vec![
                    rng.uniform_f64() * 8.0,
                    rng.uniform_f64() * 8.0,
                    rng.uniform_f64(),
                ]
            })
            .collect();
        let m = FeatureMatrix {
            steps: (0..600u64).collect(),
            rows,
        };
        tpupoint_par::set_threads(1);
        let serial_run = run(&m, &KmeansConfig::default());
        let serial_sweep = sweep(&m, 1..=5, &KmeansConfig::default());
        tpupoint_par::set_threads(4);
        assert_eq!(run(&m, &KmeansConfig::default()), serial_run);
        assert_eq!(sweep(&m, 1..=5, &KmeansConfig::default()), serial_sweep);
        tpupoint_par::set_threads(0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let m = blobs();
        let _ = run(
            &m,
            &KmeansConfig {
                k: 0,
                ..KmeansConfig::default()
            },
        );
    }
}
