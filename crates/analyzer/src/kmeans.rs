//! k-means clustering, "implemented like SimPoint does" (Section IV-A):
//! run for k = 1..15 and pick the knee of the sum-of-squared-distances
//! curve with the elbow method.

use crate::elbow::elbow_index;
use crate::features::{dist2, FeatureMatrix};
use tpupoint_simcore::SimRng;

/// Configuration of one k-means run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Lloyd iterations cap.
    pub max_iters: usize,
    /// Independent restarts; the lowest-SSE run wins.
    pub n_init: usize,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        KmeansConfig {
            k: 5,
            max_iters: 50,
            n_init: 3,
            seed: 0x7e57,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Cluster index of each row.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of rows to their centroids.
    pub sse: f64,
}

/// Runs k-means on the rows of `matrix`.
///
/// # Panics
///
/// Panics if `config.k` is zero.
pub fn run(matrix: &FeatureMatrix, config: &KmeansConfig) -> KmeansResult {
    assert!(config.k > 0, "k must be positive");
    let n = matrix.len();
    if n == 0 {
        return KmeansResult {
            assignments: Vec::new(),
            centroids: Vec::new(),
            sse: 0.0,
        };
    }
    let k = config.k.min(n);
    let mut best: Option<KmeansResult> = None;
    for restart in 0..config.n_init.max(1) {
        let mut rng = SimRng::seed_from(config.seed ^ (restart as u64).wrapping_mul(0x9E37));
        let result = lloyd(matrix, k, config.max_iters, &mut rng);
        if best.as_ref().is_none_or(|b| result.sse < b.sse) {
            best = Some(result);
        }
    }
    best.expect("at least one restart ran")
}

fn lloyd(matrix: &FeatureMatrix, k: usize, max_iters: usize, rng: &mut SimRng) -> KmeansResult {
    let n = matrix.len();
    let d = matrix.dims();
    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(matrix.rows[rng.uniform_u64(0, n as u64 - 1) as usize].clone());
    let mut min_d2: Vec<f64> = matrix
        .rows
        .iter()
        .map(|r| dist2(r, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = min_d2.iter().sum();
        let idx = if total <= 0.0 {
            rng.uniform_u64(0, n as u64 - 1) as usize
        } else {
            let mut target = rng.uniform_f64() * total;
            let mut chosen = n - 1;
            for (i, &w) in min_d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(matrix.rows[idx].clone());
        let latest = centroids.last().expect("just pushed");
        for (i, row) in matrix.rows.iter().enumerate() {
            min_d2[i] = min_d2[i].min(dist2(row, latest));
        }
    }

    let mut assignments = vec![0usize; n];
    for _ in 0..max_iters {
        // Assign.
        let mut changed = false;
        for (i, row) in matrix.rows.iter().enumerate() {
            let mut best_c = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let dd = dist2(row, centroid);
                if dd < best_d {
                    best_d = dd;
                    best_c = c;
                }
            }
            if assignments[i] != best_c {
                assignments[i] = best_c;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; d]; k];
        let mut counts = vec![0usize; k];
        for (i, row) in matrix.rows.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, x) in sums[assignments[i]].iter_mut().zip(row) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
        }
        if !changed {
            break;
        }
    }

    let sse = matrix
        .rows
        .iter()
        .zip(&assignments)
        .map(|(row, &c)| dist2(row, &centroids[c]))
        .sum();
    KmeansResult {
        assignments,
        centroids,
        sse,
    }
}

/// Sweeps k over `range`, returning `(k, sse)` pairs — the data behind
/// Figure 4.
pub fn sweep(
    matrix: &FeatureMatrix,
    range: std::ops::RangeInclusive<usize>,
    config: &KmeansConfig,
) -> Vec<(usize, f64)> {
    range
        .map(|k| {
            let result = run(matrix, &KmeansConfig { k, ..*config });
            (k, result.sse)
        })
        .collect()
}

/// Applies the elbow method to a sweep, returning the chosen k.
pub fn elbow_k(sweep: &[(usize, f64)]) -> Option<usize> {
    let xs: Vec<f64> = sweep.iter().map(|(k, _)| *k as f64).collect();
    let ys: Vec<f64> = sweep.iter().map(|(_, s)| *s).collect();
    elbow_index(&xs, &ys).map(|i| sweep[i].0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs of 20 points each.
    fn blobs() -> FeatureMatrix {
        let mut rng = SimRng::seed_from(5);
        let centers = [(0.0, 0.0), (10.0, 0.0), (5.0, 12.0)];
        let mut rows = Vec::new();
        let mut steps = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..20 {
                rows.push(vec![
                    cx + rng.standard_normal() * 0.3,
                    cy + rng.standard_normal() * 0.3,
                ]);
                steps.push((ci * 20 + i) as u64);
            }
        }
        FeatureMatrix { steps, rows }
    }

    #[test]
    fn recovers_three_blobs() {
        let m = blobs();
        let result = run(
            &m,
            &KmeansConfig {
                k: 3,
                ..KmeansConfig::default()
            },
        );
        // All points of one blob share a label.
        for blob in 0..3 {
            let labels: Vec<usize> = (blob * 20..(blob + 1) * 20)
                .map(|i| result.assignments[i])
                .collect();
            assert!(labels.iter().all(|&l| l == labels[0]), "blob {blob} split");
        }
        assert!(result.sse < 60.0 * 1.0, "sse {}", result.sse);
    }

    #[test]
    fn sse_decreases_with_k() {
        let m = blobs();
        let sweep = sweep(&m, 1..=6, &KmeansConfig::default());
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 + 1e-9,
                "sse should not increase: {pair:?}"
            );
        }
    }

    #[test]
    fn elbow_picks_the_true_cluster_count() {
        let m = blobs();
        let s = sweep(&m, 1..=8, &KmeansConfig::default());
        let k = elbow_k(&s).expect("elbow exists");
        assert!((2..=4).contains(&k), "elbow k = {k}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let m = blobs();
        let a = run(&m, &KmeansConfig::default());
        let b = run(&m, &KmeansConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn k_capped_at_point_count() {
        let m = FeatureMatrix {
            steps: vec![1, 2],
            rows: vec![vec![0.0], vec![1.0]],
        };
        let result = run(
            &m,
            &KmeansConfig {
                k: 10,
                ..KmeansConfig::default()
            },
        );
        assert!(result.centroids.len() <= 2);
        assert_eq!(result.sse, 0.0);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = FeatureMatrix {
            steps: vec![],
            rows: vec![],
        };
        let result = run(&m, &KmeansConfig::default());
        assert!(result.assignments.is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let m = blobs();
        let _ = run(
            &m,
            &KmeansConfig {
                k: 0,
                ..KmeansConfig::default()
            },
        );
    }
}
