//! Profile comparison: the tool-side view of the paper's paired studies
//! (TPUv2 versus TPUv3, naive versus tuned, full versus reduced datasets).
//!
//! Aggregates both profiles per operator name and reports where time went,
//! alongside the headline idle/MXU deltas.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use tpupoint_profiler::Profile;
use tpupoint_simcore::SimDuration;

/// Per-operator aggregate difference between two profiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpDelta {
    /// Operator name.
    pub op: String,
    /// True if the op ran on the host side.
    pub on_host: bool,
    /// Total time in the first profile.
    pub total_a: SimDuration,
    /// Total time in the second profile.
    pub total_b: SimDuration,
    /// Invocations in the first profile.
    pub count_a: u64,
    /// Invocations in the second profile.
    pub count_b: u64,
}

impl OpDelta {
    /// `total_b / total_a`; infinity when the op only exists in `b`.
    pub fn time_ratio(&self) -> f64 {
        let a = self.total_a.as_micros() as f64;
        let b = self.total_b.as_micros() as f64;
        if a == 0.0 {
            if b == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            b / a
        }
    }
}

/// Result of comparing two profiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileComparison {
    /// Label of the first profile (its model name).
    pub label_a: String,
    /// Label of the second profile.
    pub label_b: String,
    /// TPU idle fractions `(a, b)`.
    pub idle: (f64, f64),
    /// MXU utilizations `(a, b)`.
    pub mxu: (f64, f64),
    /// Per-operator rows, sorted by absolute time difference, descending.
    pub ops: Vec<OpDelta>,
}

fn op_totals(profile: &Profile) -> BTreeMap<(String, bool), (SimDuration, u64)> {
    let mut acc: BTreeMap<(String, bool), (SimDuration, u64)> = BTreeMap::new();
    for record in &profile.steps {
        for (op, stats) in &record.ops {
            let key = (
                profile.op_name(*op).to_owned(),
                profile.op_on_host[op.0 as usize],
            );
            let entry = acc.entry(key).or_insert((SimDuration::ZERO, 0));
            entry.0 += stats.total;
            entry.1 += stats.count;
        }
    }
    acc
}

/// Compares two profiles op by op.
pub fn compare(a: &Profile, b: &Profile) -> ProfileComparison {
    let ta = op_totals(a);
    let tb = op_totals(b);
    let keys: std::collections::BTreeSet<_> = ta.keys().chain(tb.keys()).cloned().collect();
    let mut ops: Vec<OpDelta> = keys
        .into_iter()
        .map(|key| {
            let (total_a, count_a) = ta.get(&key).copied().unwrap_or((SimDuration::ZERO, 0));
            let (total_b, count_b) = tb.get(&key).copied().unwrap_or((SimDuration::ZERO, 0));
            OpDelta {
                op: key.0,
                on_host: key.1,
                total_a,
                total_b,
                count_a,
                count_b,
            }
        })
        .collect();
    ops.sort_by_key(|d| std::cmp::Reverse(d.total_a.as_micros().abs_diff(d.total_b.as_micros())));
    ProfileComparison {
        label_a: a.model.clone(),
        label_b: b.model.clone(),
        idle: (a.steady_tpu_idle_fraction(), b.steady_tpu_idle_fraction()),
        mxu: (a.steady_mxu_utilization(), b.steady_mxu_utilization()),
        ops,
    }
}

impl ProfileComparison {
    /// Renders a console table of the headline metrics and the `top`
    /// largest operator movements.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "comparing A = {} with B = {}",
            self.label_a, self.label_b
        );
        let _ = writeln!(
            out,
            "  TPU idle: {:.1}% -> {:.1}%   MXU util: {:.1}% -> {:.1}%",
            self.idle.0 * 100.0,
            self.idle.1 * 100.0,
            self.mxu.0 * 100.0,
            self.mxu.1 * 100.0
        );
        let _ = writeln!(
            out,
            "  {:28} {:>4} {:>14} {:>14} {:>8}",
            "op", "side", "A total", "B total", "B/A"
        );
        for delta in self.ops.iter().take(top) {
            let ratio = delta.time_ratio();
            let _ = writeln!(
                out,
                "  {:28} {:>4} {:>14} {:>14} {:>7.2}x",
                delta.op,
                if delta.on_host { "host" } else { "tpu" },
                delta.total_a.to_string(),
                delta.total_b.to_string(),
                if ratio.is_finite() { ratio } else { 999.0 },
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_profiler::StepRecord;
    use tpupoint_simcore::{OpId, SimTime, Track};

    fn profile(name: &str, fusion_us: u64, outfeed_us: u64) -> Profile {
        let mut r = StepRecord::new(1);
        r.absorb(
            OpId(0),
            Track::TpuCore(0),
            SimTime::from_micros(0),
            SimDuration::from_micros(fusion_us),
            SimDuration::from_micros(fusion_us / 2),
        );
        r.absorb(
            OpId(1),
            Track::Host,
            SimTime::from_micros(fusion_us),
            SimDuration::from_micros(outfeed_us),
            SimDuration::ZERO,
        );
        Profile {
            model: name.into(),
            dataset: "d".into(),
            op_names: vec!["fusion".into(), "OutfeedDequeueTuple".into()],
            op_uses_mxu: vec![true, false],
            op_on_host: vec![false, true],
            steps: vec![r],
            windows: vec![],
            step_marks: vec![(1, SimTime::from_micros(fusion_us + outfeed_us))],
            checkpoints: vec![],
            dropped_windows: 0,
            lost_events: 0,
            store_errors: 0,
            store_error: None,
        }
    }

    #[test]
    fn compare_reports_per_op_movements() {
        let a = profile("A", 100, 50);
        let b = profile("B", 60, 300);
        let cmp = compare(&a, &b);
        assert_eq!(cmp.ops.len(), 2);
        // The outfeed moved by 250us, the fusion by 40us → outfeed first.
        assert_eq!(cmp.ops[0].op, "OutfeedDequeueTuple");
        assert!(cmp.ops[0].on_host);
        assert_eq!(cmp.ops[0].total_a.as_micros(), 50);
        assert_eq!(cmp.ops[0].total_b.as_micros(), 300);
        assert!((cmp.ops[0].time_ratio() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn ops_missing_from_one_side_are_kept() {
        let a = profile("A", 100, 50);
        let mut b = profile("B", 60, 300);
        // Rename B's host op so the sets differ.
        b.op_names[1] = "IteratorGetNext".into();
        let cmp = compare(&a, &b);
        let names: Vec<&str> = cmp.ops.iter().map(|d| d.op.as_str()).collect();
        assert!(names.contains(&"OutfeedDequeueTuple"));
        assert!(names.contains(&"IteratorGetNext"));
        let orphan = cmp
            .ops
            .iter()
            .find(|d| d.op == "IteratorGetNext")
            .expect("orphan present");
        assert_eq!(orphan.total_a, SimDuration::ZERO);
        assert!(orphan.time_ratio().is_infinite());
    }

    #[test]
    fn render_mentions_both_labels_and_metrics() {
        let a = profile("tuned", 100, 50);
        let b = profile("naive", 100, 500);
        let text = compare(&a, &b).render(5);
        assert!(text.contains("A = tuned"));
        assert!(text.contains("B = naive"));
        assert!(text.contains("TPU idle"));
        assert!(text.contains("OutfeedDequeueTuple"));
    }

    #[test]
    fn identical_profiles_have_unit_ratios() {
        let a = profile("X", 100, 50);
        let cmp = compare(&a, &a);
        assert!(cmp.ops.iter().all(|d| (d.time_ratio() - 1.0).abs() < 1e-9));
        assert_eq!(cmp.idle.0, cmp.idle.1);
    }
}
