//! Streaming phase analysis: the offline k-means/PCA characterization,
//! recomputed incrementally while the job still runs.
//!
//! The offline [`crate::Analyzer`] sees the whole profile at once; serve
//! mode wants phase structure *live*, updated as the profiler seals
//! windows (DeepProf/SeqPoint argue representative behavior is visible
//! from a running stream). [`StreamingAnalyzer`] keeps that incremental
//! state:
//!
//! * a **seeded reservoir** (Algorithm R) of raw per-step feature rows,
//!   so memory stays bounded no matter how long the job runs;
//! * **running min-max bounds** per dimension — rows are rescaled with
//!   the *current* bounds at every update, converging on the offline
//!   scaling as the stream covers the run;
//! * **mini-batch k-means with warm-started centroids**: each update
//!   runs a few Lloyd iterations over the reservoir, seeded from the
//!   previous update's centroids (kept in raw space so they survive
//!   evolving bounds), growing toward `k` with k-means++ picks;
//! * **incremental PCA**: a rank-1-updated raw scatter matrix, converted
//!   to the scaled-space covariance on demand and diagonalized with the
//!   same Jacobi solver the offline path uses — only engaged when the
//!   dimensionality exceeds [`StreamingConfig::pca_dims`], mirroring
//!   [`FeatureMatrix::reduced`];
//! * a **stability score** in the SeqPoint spirit: the fraction of
//!   previously-labeled sampled steps whose phase assignment survived
//!   the latest update (fresh steps joining an existing cluster are not
//!   instability — only centroid drift that relabels old steps is).
//!   [`StreamingAnalyzer::is_stable`] latches after
//!   [`StreamingConfig::stable_k`] consecutive stable updates and drives
//!   serve's `--stop-on-stable` early exit and the batch
//!   `--prefix-stable` truncation.
//!
//! Every path is deterministic for a fixed seed and delivery order: the
//! reservoir and seeding draw from dedicated [`SimRng`] streams, and the
//! Lloyd descent reuses [`crate::kmeans`]'s pooled-but-bit-identical
//! assignment step, so results never depend on the thread count.

use std::collections::BTreeMap;

use crate::features::{dist2, FeatureMatrix, MAX_DIMS};
use crate::kmeans;
use crate::pca;
use tpupoint_obs::{PhaseStat, PhaseTransition, PhasesReport};
use tpupoint_profiler::{Profile, StepRecord};
use tpupoint_simcore::SimRng;

/// Completed steps handed to the streaming analyzer per update when no
/// sealed window forces an earlier one (the profiler's 60 s window cap
/// rarely triggers on small simulated jobs, so both the serve observer
/// and [`replay`] also update on this step cadence).
pub const STREAM_CADENCE: usize = 8;

/// A cold restart must beat the warm-started descent's SSE by this
/// factor to be adopted; anything closer is local-optimum noise not
/// worth the label churn.
const RESTART_MARGIN: f64 = 0.9;

/// Tuning of one [`StreamingAnalyzer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingConfig {
    /// Target number of phases (centroids), matching the offline
    /// [`kmeans::KmeansConfig::k`] default.
    pub k: usize,
    /// Reservoir capacity: feature rows kept for re-clustering. Runs
    /// shorter than this are sampled exactly.
    pub reservoir: usize,
    /// Seed of the reservoir and k-means++ RNG streams.
    pub seed: u64,
    /// Lloyd iterations per incremental update (mini-batch depth).
    pub minibatch_iters: usize,
    /// Dimensionality above which incremental PCA engages, mirroring
    /// the offline [`MAX_DIMS`] cap.
    pub pca_dims: usize,
    /// Stability score at or above which an update counts as stable.
    pub stability_threshold: f64,
    /// Consecutive stable updates before [`StreamingAnalyzer::is_stable`]
    /// latches (the SeqPoint-style early-stop condition).
    pub stable_k: u64,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            k: 5,
            reservoir: 1024,
            seed: 0x7e57,
            minibatch_iters: 8,
            pca_dims: MAX_DIMS,
            stability_threshold: 0.95,
            stable_k: 3,
        }
    }
}

/// Incremental (rank-1 updated) PCA state over the *raw* rows: running
/// sum and scatter (`Σ x xᵀ`). The scaled-space covariance is derived on
/// demand — min-max scaling is affine per dimension, so
/// `cov_scaled[i][j] = cov_raw[i][j] / (range_i · range_j)`.
#[derive(Debug, Clone, Default)]
struct IncrementalPca {
    n: u64,
    sum: Vec<f64>,
    scatter: Vec<Vec<f64>>,
}

impl IncrementalPca {
    fn init(&mut self, dims: usize) {
        self.sum = vec![0.0; dims];
        self.scatter = vec![vec![0.0; dims]; dims];
    }

    fn push(&mut self, row: &[f64]) {
        self.n += 1;
        for (s, &x) in self.sum.iter_mut().zip(row) {
            *s += x;
        }
        for i in 0..row.len() {
            if row[i] == 0.0 {
                continue;
            }
            for j in i..row.len() {
                self.scatter[i][j] += row[i] * row[j];
            }
        }
    }
}

/// A fixed projection basis in the scaled space, captured per update.
#[derive(Debug, Clone)]
struct Projection {
    mean: Vec<f64>,
    /// Kept eigenvectors, each of raw (scaled-space) length.
    cols: Vec<Vec<f64>>,
}

impl Projection {
    fn project(&self, x: &[f64]) -> Vec<f64> {
        self.cols
            .iter()
            .map(|col| {
                x.iter()
                    .zip(&self.mean)
                    .zip(col)
                    .map(|((&xi, &mi), &ci)| (xi - mi) * ci)
                    .sum()
            })
            .collect()
    }

    /// Approximate inverse: `mean + Σ z_c · col_c` (exact on the kept
    /// subspace since the columns are orthonormal).
    fn unproject(&self, z: &[f64]) -> Vec<f64> {
        let mut x = self.mean.clone();
        for (zc, col) in z.iter().zip(&self.cols) {
            for (xi, &ci) in x.iter_mut().zip(col) {
                *xi += zc * ci;
            }
        }
        x
    }
}

/// Incremental phase tracker; see the module docs.
#[derive(Debug)]
pub struct StreamingAnalyzer {
    config: StreamingConfig,
    reservoir_rng: SimRng,
    kmeans_rng: SimRng,
    dims: usize,
    rows_seen: u64,
    /// Reservoir slots: step labels, raw rows, and each slot's label at
    /// the previous update (`None` for fresh or replaced slots).
    sample_steps: Vec<u64>,
    sample_rows: Vec<Vec<f64>>,
    slot_labels: Vec<Option<usize>>,
    /// Running per-dimension (min, max) over *all* rows seen.
    bounds: Vec<(f64, f64)>,
    /// Centroids in raw feature space, so warm starts survive bound
    /// drift between updates.
    centroids_raw: Vec<Vec<f64>>,
    /// Centroids as of the latest update, in the update's scaled (and
    /// possibly projected) space — what `/phases` reports.
    centroids_view: Vec<Vec<f64>>,
    pca: IncrementalPca,
    /// Rows ingested since the last update.
    pending: Vec<(u64, Vec<f64>)>,
    /// Per-step phase labels. Steps still in the reservoir are
    /// refreshed every update; evicted steps keep their last label.
    assignments: BTreeMap<u64, usize>,
    stability: f64,
    stable_windows: u64,
    updates: u64,
}

impl StreamingAnalyzer {
    /// A fresh tracker with no observed rows.
    pub fn new(config: StreamingConfig) -> StreamingAnalyzer {
        StreamingAnalyzer {
            reservoir_rng: SimRng::seed_from(config.seed),
            kmeans_rng: SimRng::seed_from(config.seed ^ 0x5EED_CAFE),
            config,
            dims: 0,
            rows_seen: 0,
            sample_steps: Vec::new(),
            sample_rows: Vec::new(),
            slot_labels: Vec::new(),
            bounds: Vec::new(),
            centroids_raw: Vec::new(),
            centroids_view: Vec::new(),
            pca: IncrementalPca::default(),
            pending: Vec::new(),
            assignments: BTreeMap::new(),
            stability: 0.0,
            stable_windows: 0,
            updates: 0,
        }
    }

    /// Ingests one batch of newly completed step records (a sealed
    /// window, or a step-cadence slice of one) and re-clusters. Empty
    /// batches are a no-op so frequent seals cannot inflate the
    /// stability counter without new evidence.
    pub fn observe_seal(&mut self, records: &[StepRecord], n_ops: usize) {
        let _span =
            tpupoint_obs::span!("analyzer.streaming_update", records = records.len() as i64);
        for record in records {
            let row = row_of(record, n_ops);
            self.ingest(record.step, row);
        }
        if !self.pending.is_empty() {
            self.update();
        }
    }

    fn ingest(&mut self, step: u64, row: Vec<f64>) {
        if self.dims == 0 {
            self.dims = row.len();
            self.bounds = vec![(f64::INFINITY, f64::NEG_INFINITY); self.dims];
            if self.dims > self.config.pca_dims {
                self.pca.init(self.dims);
            }
        }
        for (b, &x) in self.bounds.iter_mut().zip(&row) {
            b.0 = b.0.min(x);
            b.1 = b.1.max(x);
        }
        if self.dims > self.config.pca_dims {
            self.pca.push(&row);
        }
        self.rows_seen += 1;
        // Algorithm R: every row seen so far had an equal chance of
        // occupying a slot; deterministic for the fixed seed and
        // delivery order.
        if self.sample_rows.len() < self.config.reservoir {
            self.sample_steps.push(step);
            self.sample_rows.push(row.clone());
            self.slot_labels.push(None);
        } else {
            let j = self.reservoir_rng.uniform_u64(0, self.rows_seen - 1) as usize;
            if j < self.config.reservoir {
                self.sample_steps[j] = step;
                self.sample_rows[j] = row.clone();
                self.slot_labels[j] = None;
            }
        }
        self.pending.push((step, row));
    }

    fn scale(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.bounds)
            .map(|(&x, &(lo, hi))| {
                let range = hi - lo;
                if range > 0.0 {
                    (x - lo) / range
                } else {
                    0.0
                }
            })
            .collect()
    }

    fn unscale(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.bounds)
            .map(|(&z, &(lo, hi))| {
                let range = hi - lo;
                if range > 0.0 {
                    lo + z * range
                } else {
                    lo
                }
            })
            .collect()
    }

    /// Derives the projection basis from the incremental scatter, or
    /// `None` while the dimensionality fits without reduction.
    fn projection_basis(&self) -> Option<Projection> {
        if self.dims <= self.config.pca_dims || self.pca.n < 2 {
            return None;
        }
        let d = self.dims;
        let n = self.pca.n as f64;
        let mean_raw: Vec<f64> = self.pca.sum.iter().map(|s| s / n).collect();
        let inv_range: Vec<f64> = self
            .bounds
            .iter()
            .map(|&(lo, hi)| {
                let range = hi - lo;
                if range > 0.0 {
                    1.0 / range
                } else {
                    0.0
                }
            })
            .collect();
        let mut cov = vec![vec![0.0; d]; d];
        let denom = n - 1.0;
        for i in 0..d {
            for j in i..d {
                let raw = self.pca.scatter[i][j] - n * mean_raw[i] * mean_raw[j];
                let scaled = raw * inv_range[i] * inv_range[j] / denom;
                cov[i][j] = scaled;
                cov[j][i] = scaled;
            }
        }
        let (eigenvalues, eigenvectors) = pca::jacobi_eigen(cov);
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| {
            eigenvalues[b]
                .partial_cmp(&eigenvalues[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let cols: Vec<Vec<f64>> = order
            .into_iter()
            .take(self.config.pca_dims)
            .filter(|&c| eigenvalues[c] > 1e-12)
            .map(|c| (0..d).map(|i| eigenvectors[i][c]).collect())
            .collect();
        Some(Projection {
            mean: self.scale(&mean_raw),
            cols,
        })
    }

    /// Renames `cold`'s cluster indices so each maps to its nearest
    /// centroid in `reference` (greedy injective matching by distance),
    /// keeping label identity continuous when a restart is adopted.
    fn align_to_reference(
        mut cold: kmeans::KmeansResult,
        reference: &[Vec<f64>],
    ) -> kmeans::KmeansResult {
        let k = cold.centroids.len();
        if reference.len() != k {
            return cold;
        }
        let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(k * k);
        for (i, c) in cold.centroids.iter().enumerate() {
            for (j, r) in reference.iter().enumerate() {
                pairs.push((dist2(c, r), i, j));
            }
        }
        pairs.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        let mut rename = vec![usize::MAX; k];
        let mut taken = vec![false; k];
        for (_, i, j) in pairs {
            if rename[i] == usize::MAX && !taken[j] {
                rename[i] = j;
                taken[j] = true;
            }
        }
        let mut centroids = vec![Vec::new(); k];
        for (i, c) in cold.centroids.into_iter().enumerate() {
            centroids[rename[i]] = c;
        }
        cold.centroids = centroids;
        for label in &mut cold.assignments {
            *label = rename[*label];
        }
        cold
    }

    fn update(&mut self) {
        self.updates += 1;
        let pending = std::mem::take(&mut self.pending);
        let basis = self.projection_basis();
        let view = |this: &Self, raw: &[f64]| -> Vec<f64> {
            let scaled = this.scale(raw);
            match &basis {
                Some(p) => p.project(&scaled),
                None => scaled,
            }
        };
        let rows: Vec<Vec<f64>> = self.sample_rows.iter().map(|r| view(self, r)).collect();
        let matrix = FeatureMatrix {
            steps: self.sample_steps.clone(),
            rows,
        };
        // Warm start from the previous centroids, mapped through the
        // current scaling/projection; grow toward k with k-means++.
        let mut centroids: Vec<Vec<f64>> =
            self.centroids_raw.iter().map(|c| view(self, c)).collect();
        let want = self.config.k.min(matrix.len());
        if centroids.is_empty() {
            centroids = kmeans::seed_centroids(&matrix, want, &mut self.kmeans_rng);
        }
        while centroids.len() < want {
            let min_d2: Vec<f64> = matrix
                .rows
                .iter()
                .map(|row| {
                    centroids
                        .iter()
                        .map(|c| dist2(row, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let idx = kmeans::kmeanspp_pick(&min_d2, &mut self.kmeans_rng);
            centroids.push(matrix.rows[idx].clone());
        }
        let warm = kmeans::lloyd_from(&matrix, centroids, self.config.minibatch_iters);
        // Restart guard: a purely warm-started descent inherits whatever
        // optimum the first few rows suggested and can stay trapped
        // spending clusters on early outliers while the dominant mass
        // goes unsplit. Each update also tries one cold k-means++
        // restart and adopts it only when decisively better, its
        // clusters renamed to the nearest warm centroids so surviving
        // phases keep their labels across the switch.
        let result = if matrix.len() >= want && want > 0 {
            let seeds = kmeans::seed_centroids(&matrix, want, &mut self.kmeans_rng);
            let cold = kmeans::lloyd_from(&matrix, seeds, self.config.minibatch_iters);
            if cold.sse < RESTART_MARGIN * warm.sse {
                Self::align_to_reference(cold, &warm.centroids)
            } else {
                warm
            }
        } else {
            warm
        };

        // Stability: previously-labeled sampled steps whose label
        // survived this update. Fresh and replaced slots are excluded —
        // a new step landing in an existing cluster is not instability;
        // only centroid drift strong enough to *relabel* old steps is.
        let n = matrix.len();
        let prev = (0..n).filter(|&i| self.slot_labels[i].is_some()).count();
        let matched = (0..n)
            .filter(|&i| self.slot_labels[i] == Some(result.assignments[i]))
            .count();
        self.stability = if prev == 0 {
            0.0
        } else {
            matched as f64 / prev as f64
        };
        if self.stability >= self.config.stability_threshold {
            self.stable_windows += 1;
        } else {
            self.stable_windows = 0;
        }

        for i in 0..n {
            self.slot_labels[i] = Some(result.assignments[i]);
            self.assignments
                .insert(self.sample_steps[i], result.assignments[i]);
        }
        // Pending rows evicted from the reservoir before this update
        // still get a label against the fresh centroids.
        for (step, raw) in &pending {
            if self.assignments.contains_key(step) {
                continue;
            }
            let v = view(self, raw);
            self.assignments
                .insert(*step, kmeans::nearest(&v, &result.centroids));
        }
        // Store centroids in raw space so the next update's warm start
        // survives shifting bounds (and a re-derived projection).
        self.centroids_raw = result
            .centroids
            .iter()
            .map(|c| {
                let scaled = match &basis {
                    Some(p) => p.unproject(c),
                    None => c.clone(),
                };
                self.unscale(&scaled)
            })
            .collect();
        self.centroids_view = result.centroids;
    }

    /// Fraction of previously-labeled sampled steps whose assignment
    /// survived the latest update.
    pub fn stability(&self) -> f64 {
        self.stability
    }

    /// Consecutive updates at or above the stability threshold.
    pub fn stable_windows(&self) -> u64 {
        self.stable_windows
    }

    /// Whether assignments have been stable for
    /// [`StreamingConfig::stable_k`] consecutive updates.
    pub fn is_stable(&self) -> bool {
        self.stable_windows >= self.config.stable_k
    }

    /// Incremental updates performed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Steps assigned to a phase so far.
    pub fn steps_assigned(&self) -> u64 {
        self.assignments.len() as u64
    }

    /// Phases with at least one assigned step.
    pub fn phase_count(&self) -> usize {
        let mut seen = vec![false; self.centroids_view.len()];
        for &label in self.assignments.values() {
            if label < seen.len() {
                seen[label] = true;
            }
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// The live `/phases` snapshot: per-phase occupancy and centroids,
    /// the transition timeline, and the stability state.
    pub fn report(&self) -> PhasesReport {
        let mut occupancy = vec![0u64; self.centroids_view.len()];
        for &label in self.assignments.values() {
            if label < occupancy.len() {
                occupancy[label] += 1;
            }
        }
        let total: u64 = occupancy.iter().sum();
        let phases = self
            .centroids_view
            .iter()
            .enumerate()
            .map(|(id, centroid)| PhaseStat {
                id,
                occupancy: occupancy[id],
                share: if total > 0 {
                    occupancy[id] as f64 / total as f64
                } else {
                    0.0
                },
                centroid: centroid.clone(),
            })
            .collect();
        let mut transitions = Vec::new();
        let mut prev: Option<usize> = None;
        for (&step, &label) in &self.assignments {
            if prev.is_some() && prev != Some(label) {
                transitions.push(PhaseTransition { step, phase: label });
            }
            prev = Some(label);
        }
        PhasesReport {
            phases,
            stability: self.stability,
            stable_windows: self.stable_windows,
            updates: self.updates,
            steps_assigned: total,
            last_transition_step: transitions.last().map(|t| t.step),
            transitions,
        }
    }

    /// Final per-step labels (step → phase), for convergence checks
    /// against the offline assignment.
    pub fn assignments(&self) -> &BTreeMap<u64, usize> {
        &self.assignments
    }
}

/// The per-step feature row, exactly as [`FeatureMatrix::from_profile`]
/// builds it: two dimensions per operator — invocation count and total
/// duration in microseconds.
fn row_of(record: &StepRecord, n_ops: usize) -> Vec<f64> {
    let mut row = vec![0.0; 2 * n_ops];
    for (op, stats) in &record.ops {
        let i = op.0 as usize;
        row[2 * i] = stats.count as f64;
        row[2 * i + 1] = stats.total.as_micros() as f64;
    }
    row
}

/// Result of replaying a recorded profile through the streaming
/// analyzer, as `analyze --prefix-stable` does.
#[derive(Debug)]
pub struct StreamingReplay {
    /// The tracker's final state.
    pub analyzer: StreamingAnalyzer,
    /// Last step of the update at which stability first latched
    /// ([`StreamingAnalyzer::is_stable`]), if it ever did.
    pub stable_at_step: Option<u64>,
    /// Update batches replayed.
    pub chunks: u64,
}

/// Replays `profile`'s step records through a fresh tracker in
/// [`STREAM_CADENCE`]-sized batches — the batch-mode twin of the serve
/// observer, used by `--prefix-stable` to find the stable prefix.
pub fn replay(profile: &Profile, config: StreamingConfig) -> StreamingReplay {
    let n_ops = profile.op_names.len();
    let mut analyzer = StreamingAnalyzer::new(config);
    let mut stable_at_step = None;
    let mut chunks = 0;
    for chunk in profile.steps.chunks(STREAM_CADENCE) {
        analyzer.observe_seal(chunk, n_ops);
        chunks += 1;
        if stable_at_step.is_none() && analyzer.is_stable() {
            stable_at_step = Some(chunk.last().expect("non-empty chunk").step);
        }
    }
    StreamingReplay {
        analyzer,
        stable_at_step,
        chunks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::{OpId, SimDuration, SimTime, Track};

    /// A step whose ops and durations follow `pattern` (op id, count,
    /// total duration µs).
    fn step_record(step: u64, pattern: &[(u32, u64, u64)]) -> StepRecord {
        let mut r = StepRecord::new(step);
        for &(op, count, total) in pattern {
            for i in 0..count {
                r.absorb(
                    OpId(op),
                    Track::TpuCore(0),
                    SimTime::from_micros(step * 1_000 + i),
                    SimDuration::from_micros(total / count.max(1)),
                    SimDuration::ZERO,
                );
            }
        }
        r
    }

    /// Alternating two-phase stream: even steps heavy on op 0, odd
    /// blocks heavy on op 1.
    fn two_phase_steps(n: u64) -> Vec<StepRecord> {
        (0..n)
            .map(|s| {
                if (s / 8) % 2 == 0 {
                    step_record(s, &[(0, 4, 400), (1, 1, 10)])
                } else {
                    step_record(s, &[(0, 1, 10), (1, 6, 900)])
                }
            })
            .collect()
    }

    fn feed(analyzer: &mut StreamingAnalyzer, records: &[StepRecord], n_ops: usize) {
        for chunk in records.chunks(STREAM_CADENCE) {
            analyzer.observe_seal(chunk, n_ops);
        }
    }

    #[test]
    fn repetitive_stream_stabilizes_and_latches() {
        let mut analyzer = StreamingAnalyzer::new(StreamingConfig {
            k: 2,
            ..StreamingConfig::default()
        });
        feed(&mut analyzer, &two_phase_steps(160), 2);
        assert!(analyzer.updates() >= 10);
        assert!(
            analyzer.stability() >= 0.95,
            "stability {}",
            analyzer.stability()
        );
        assert!(
            analyzer.is_stable(),
            "stable for {}",
            analyzer.stable_windows()
        );
        assert_eq!(analyzer.steps_assigned(), 160);
        assert_eq!(analyzer.phase_count(), 2);
    }

    #[test]
    fn assignments_separate_the_two_phases() {
        let mut analyzer = StreamingAnalyzer::new(StreamingConfig {
            k: 2,
            ..StreamingConfig::default()
        });
        let steps = two_phase_steps(160);
        feed(&mut analyzer, &steps, 2);
        let labels: Vec<usize> = analyzer.assignments().values().copied().collect();
        // Steps within one block share a label; blocks alternate.
        for block in 0..20 {
            let block_labels = &labels[block * 8..(block + 1) * 8];
            assert!(
                block_labels.iter().all(|&l| l == block_labels[0]),
                "block {block} split: {block_labels:?}"
            );
        }
        assert_ne!(labels[0], labels[8], "adjacent blocks differ");
        let report = analyzer.report();
        assert!(!report.transitions.is_empty());
        assert_eq!(report.steps_assigned, 160);
        let share: f64 = report.phases.iter().map(|p| p.share).sum();
        assert!((share - 1.0).abs() < 1e-9, "shares sum to 1, got {share}");
    }

    #[test]
    fn deterministic_for_fixed_seed_and_any_thread_count() {
        let steps = two_phase_steps(300);
        let run = |threads: usize| -> (Vec<(u64, usize)>, Vec<Vec<f64>>, f64) {
            tpupoint_par::set_threads(threads);
            let mut analyzer = StreamingAnalyzer::new(StreamingConfig::default());
            feed(&mut analyzer, &steps, 2);
            let out = (
                analyzer
                    .assignments()
                    .iter()
                    .map(|(&s, &l)| (s, l))
                    .collect(),
                analyzer.centroids_view.clone(),
                analyzer.stability(),
            );
            tpupoint_par::set_threads(0);
            out
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), serial, "diverged at {threads} threads");
        }
    }

    #[test]
    fn reservoir_stays_bounded_and_keeps_assigning() {
        let mut analyzer = StreamingAnalyzer::new(StreamingConfig {
            k: 2,
            reservoir: 32,
            ..StreamingConfig::default()
        });
        feed(&mut analyzer, &two_phase_steps(400), 2);
        assert_eq!(analyzer.sample_rows.len(), 32);
        assert_eq!(analyzer.rows_seen, 400);
        // Every step got a label even though most rows were evicted.
        assert_eq!(analyzer.steps_assigned(), 400);
    }

    #[test]
    fn incremental_pca_engages_above_the_cap() {
        // 4 ops → 8 raw dims, cap at 3: the projection must engage and
        // the clustering still separates the two phases.
        let steps: Vec<StepRecord> = (0..120)
            .map(|s| {
                if (s / 8) % 2 == 0 {
                    step_record(s, &[(0, 4, 400), (1, 4, 380), (2, 1, 10), (3, 1, 12)])
                } else {
                    step_record(s, &[(0, 1, 10), (1, 1, 12), (2, 6, 900), (3, 6, 880)])
                }
            })
            .collect();
        let mut analyzer = StreamingAnalyzer::new(StreamingConfig {
            k: 2,
            pca_dims: 3,
            ..StreamingConfig::default()
        });
        feed(&mut analyzer, &steps, 4);
        assert!(
            analyzer.centroids_view.iter().all(|c| c.len() <= 3),
            "centroids live in the projected space: {:?}",
            analyzer.centroids_view
        );
        let labels: Vec<usize> = analyzer.assignments().values().copied().collect();
        assert_ne!(labels[0], labels[8], "phases still separate after PCA");
    }

    #[test]
    fn empty_batches_do_not_advance_stability() {
        let mut analyzer = StreamingAnalyzer::new(StreamingConfig::default());
        feed(&mut analyzer, &two_phase_steps(64), 2);
        let stable_before = analyzer.stable_windows();
        let updates_before = analyzer.updates();
        for _ in 0..10 {
            analyzer.observe_seal(&[], 2);
        }
        assert_eq!(analyzer.stable_windows(), stable_before);
        assert_eq!(analyzer.updates(), updates_before);
    }

    #[test]
    fn report_starts_empty_and_serializes() {
        let analyzer = StreamingAnalyzer::new(StreamingConfig::default());
        let report = analyzer.report();
        assert!(report.phases.is_empty());
        assert_eq!(report.steps_assigned, 0);
        assert!(report.to_json().contains("\"phases\": []"));
    }
}
