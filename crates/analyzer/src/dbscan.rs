//! DBSCAN (Ester et al., 1996), the paper's second clustering method.
//!
//! The paper sweeps the *minimum samples* parameter from 5 to 200 and
//! plots the ratio of noise (unclustered) points, applying the elbow
//! method to pick the knee (Figure 5). The neighborhood radius `eps` is
//! chosen by a k-nearest-neighbor heuristic on a sample of the data.
//!
//! Section VI-B notes that k-means and DBSCAN "reach memory limitations
//! for larger workloads such as RetinaNet and ResNet"; [`DbscanConfig::
//! max_points`] reproduces that operational limit explicitly.

use crate::elbow::elbow_index;
use crate::features::{dist2, FeatureMatrix};
use std::collections::VecDeque;
use std::fmt;

/// Label DBSCAN gives to unclustered points.
pub const NOISE: isize = -1;

/// Row count below which the neighbor-cache build stays serial.
const PAR_NEIGHBOR_MIN_ROWS: usize = 128;

/// Pairwise eps-neighborhoods of a matrix, computed once and shared by
/// every run of a [`sweep`] — the sweep varies only `min_samples`, so
/// recomputing the O(n²) neighbor scan per grid point is pure waste.
///
/// Each list keeps ascending row order (the same order the previous
/// inline `(0..n).filter` scan produced), so BFS expansion and therefore
/// the cluster labels are bit-identical to the uncached implementation.
#[derive(Debug, Clone)]
pub struct NeighborCache {
    eps: f64,
    lists: Vec<Vec<usize>>,
}

impl NeighborCache {
    /// Builds the cache for `matrix` at radius `eps`. Rows are scanned
    /// independently, so the build fans out over the pool for large
    /// matrices with identical results at any thread count.
    pub fn build(matrix: &FeatureMatrix, eps: f64) -> Self {
        let _span = tpupoint_obs::span!("dbscan.neighbor_cache");
        let n = matrix.len();
        let eps2 = eps * eps;
        let scan = |i: usize| -> Vec<usize> {
            (0..n)
                .filter(|&j| dist2(&matrix.rows[i], &matrix.rows[j]) <= eps2)
                .collect()
        };
        let pool = tpupoint_par::pool();
        let lists = if n >= PAR_NEIGHBOR_MIN_ROWS && pool.size() > 1 {
            pool.par_map_index(n, scan)
        } else {
            (0..n).map(scan).collect()
        };
        NeighborCache { eps, lists }
    }

    /// The radius the cache was built for.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Rows covered by the cache.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether the cache covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Neighbors of row `i` (including `i` itself), ascending.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.lists[i]
    }
}

/// DBSCAN configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanConfig {
    /// Neighborhood radius; `None` selects it automatically via the kNN
    /// heuristic.
    pub eps: Option<f64>,
    /// Minimum neighbors (including self) for a core point.
    pub min_samples: usize,
    /// Refuse inputs with more rows than this (the paper's observed memory
    /// limitation on large workloads). `None` = unlimited.
    pub max_points: Option<usize>,
}

impl Default for DbscanConfig {
    fn default() -> Self {
        DbscanConfig {
            eps: None,
            min_samples: 30,
            max_points: Some(200_000),
        }
    }
}

/// DBSCAN failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbscanError {
    /// The input exceeded [`DbscanConfig::max_points`].
    MemoryLimit {
        /// Rows in the input.
        points: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl fmt::Display for DbscanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbscanError::MemoryLimit { points, limit } => write!(
                f,
                "dbscan memory limit: {points} points exceed the {limit}-point cap"
            ),
        }
    }
}

impl std::error::Error for DbscanError {}

/// Result of a DBSCAN run.
#[derive(Debug, Clone, PartialEq)]
pub struct DbscanResult {
    /// Cluster label per row; [`NOISE`] for unclustered points.
    pub labels: Vec<isize>,
    /// Number of clusters found.
    pub clusters: usize,
    /// The eps actually used.
    pub eps: f64,
}

impl DbscanResult {
    /// Fraction of points labeled noise — the paper's Figure 5 metric.
    pub fn noise_ratio(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l == NOISE).count() as f64 / self.labels.len() as f64
    }
}

/// Chooses eps as 1.5 × the median distance to the 4th-nearest neighbor.
/// The median is estimated over at most 512 sampled seed rows, but each
/// seed's 4th-nearest neighbor is found against the *full* matrix: the
/// 4th-nearest within a 1-in-`stride` subsample is really the
/// ~`4×stride`-th neighbor of the full data, so restricting the search to
/// the sample inflates eps and (time-weighted) phase coverage degrades as
/// dense step clusters get merged across real boundaries.
pub fn auto_eps(matrix: &FeatureMatrix) -> f64 {
    let n = matrix.len();
    if n < 2 {
        return 1.0;
    }
    let stride = n.div_ceil(512);
    let sample: Vec<usize> = (0..n).step_by(stride).collect();
    let mut knn: Vec<f64> = Vec::with_capacity(sample.len());
    for &i in &sample {
        let mut d: Vec<f64> = (0..n)
            .filter(|&j| j != i)
            .map(|j| matrix.dist2(i, j))
            .collect();
        if d.is_empty() {
            continue;
        }
        let k = 3.min(d.len() - 1);
        d.select_nth_unstable_by(k, |a, b| {
            a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
        });
        knn.push(d[k].sqrt());
    }
    if knn.is_empty() {
        return 1.0;
    }
    knn.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = knn[knn.len() / 2];
    (1.5 * median).max(1e-9)
}

/// Runs DBSCAN.
///
/// # Errors
///
/// Returns [`DbscanError::MemoryLimit`] when the input exceeds the
/// configured point cap.
pub fn run(matrix: &FeatureMatrix, config: &DbscanConfig) -> Result<DbscanResult, DbscanError> {
    let n = matrix.len();
    if let Some(limit) = config.max_points {
        if n > limit {
            return Err(DbscanError::MemoryLimit { points: n, limit });
        }
    }
    let eps = config.eps.unwrap_or_else(|| auto_eps(matrix));
    let cache = NeighborCache::build(matrix, eps);
    Ok(run_with_cache(&cache, config.min_samples))
}

/// Runs DBSCAN against a prebuilt [`NeighborCache`]. The BFS itself is
/// serial (its expansion order defines the labels); the parallelism and
/// the savings both live in the shared cache.
pub fn run_with_cache(cache: &NeighborCache, min_samples: usize) -> DbscanResult {
    let n = cache.len();
    let min_samples = min_samples.max(1);
    let mut labels = vec![isize::MIN; n]; // MIN = unvisited
    let mut cluster: isize = 0;
    for i in 0..n {
        if labels[i] != isize::MIN {
            continue;
        }
        let nbrs = cache.neighbors(i);
        if nbrs.len() < min_samples {
            labels[i] = NOISE;
            continue;
        }
        labels[i] = cluster;
        let mut queue: VecDeque<usize> = nbrs.iter().copied().collect();
        while let Some(j) = queue.pop_front() {
            if labels[j] == NOISE {
                labels[j] = cluster; // border point adopted by the cluster
            }
            if labels[j] != isize::MIN {
                continue;
            }
            labels[j] = cluster;
            let jn = cache.neighbors(j);
            if jn.len() >= min_samples {
                queue.extend(jn.iter().copied());
            }
        }
        cluster += 1;
    }
    DbscanResult {
        labels,
        clusters: cluster as usize,
        eps: cache.eps(),
    }
}

/// Sweeps `min_samples` over the paper's grid (default 5..=180 step 25),
/// returning `(min_samples, noise_ratio, clusters)` triples — Figure 5.
///
/// eps and the O(n²) neighbor lists are computed once and shared by every
/// grid point; the per-point runs then fan out over the pool (each BFS is
/// independent given the cache, and results are ordered by grid index).
///
/// # Errors
///
/// Returns [`DbscanError::MemoryLimit`] when the input exceeds
/// `base.max_points`.
pub fn sweep(
    matrix: &FeatureMatrix,
    grid: &[usize],
    base: &DbscanConfig,
) -> Result<Vec<(usize, f64, usize)>, DbscanError> {
    let n = matrix.len();
    if let Some(limit) = base.max_points {
        if n > limit {
            return Err(DbscanError::MemoryLimit { points: n, limit });
        }
    }
    // eps is computed once so the sweep varies only min_samples.
    let eps = base.eps.unwrap_or_else(|| auto_eps(matrix));
    let cache = NeighborCache::build(matrix, eps);
    Ok(tpupoint_par::pool().par_map(grid, |_, &m| {
        let result = run_with_cache(&cache, m);
        (m, result.noise_ratio(), result.clusters)
    }))
}

/// The paper's sweep grid: 5 to 180 in steps of 25.
pub fn paper_grid() -> Vec<usize> {
    (0..8).map(|i| 5 + 25 * i).collect()
}

/// Applies the elbow method to a sweep, returning the chosen min-samples.
pub fn elbow_min_samples(sweep: &[(usize, f64, usize)]) -> Option<usize> {
    let xs: Vec<f64> = sweep.iter().map(|(m, _, _)| *m as f64).collect();
    let ys: Vec<f64> = sweep.iter().map(|(_, r, _)| *r).collect();
    elbow_index(&xs, &ys).map(|i| sweep[i].0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::SimRng;

    fn blobs(sizes: &[usize]) -> FeatureMatrix {
        let mut rng = SimRng::seed_from(9);
        let centers = [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0), (20.0, 20.0)];
        let mut rows = Vec::new();
        let mut steps = Vec::new();
        for (b, &size) in sizes.iter().enumerate() {
            let (cx, cy) = centers[b % centers.len()];
            for _ in 0..size {
                rows.push(vec![
                    cx + rng.standard_normal() * 0.5,
                    cy + rng.standard_normal() * 0.5,
                ]);
                steps.push(rows.len() as u64);
            }
        }
        FeatureMatrix { steps, rows }
    }

    #[test]
    fn separates_two_blobs() {
        let m = blobs(&[40, 40]);
        let result = run(
            &m,
            &DbscanConfig {
                eps: Some(3.0),
                min_samples: 5,
                max_points: None,
            },
        )
        .expect("within limits");
        assert_eq!(result.clusters, 2);
        assert_eq!(result.noise_ratio(), 0.0);
        assert!(result.labels[..40].iter().all(|&l| l == result.labels[0]));
        assert!(result.labels[40..].iter().all(|&l| l == result.labels[40]));
        assert_ne!(result.labels[0], result.labels[40]);
    }

    #[test]
    fn small_blobs_become_noise_as_min_samples_rises() {
        // One big blob (60) and one small (8).
        let m = blobs(&[60, 8]);
        let lo = run(
            &m,
            &DbscanConfig {
                eps: Some(3.0),
                min_samples: 5,
                max_points: None,
            },
        )
        .unwrap();
        let hi = run(
            &m,
            &DbscanConfig {
                eps: Some(3.0),
                min_samples: 20,
                max_points: None,
            },
        )
        .unwrap();
        assert_eq!(lo.clusters, 2);
        assert_eq!(hi.clusters, 1, "small blob no longer clusters");
        assert!(hi.noise_ratio() > lo.noise_ratio());
        assert!((hi.noise_ratio() - 8.0 / 68.0).abs() < 1e-9);
    }

    #[test]
    fn noise_ratio_is_monotone_in_min_samples() {
        let m = blobs(&[50, 30, 12]);
        let grid: Vec<usize> = vec![5, 10, 20, 40, 60];
        let sweep = sweep(
            &m,
            &grid,
            &DbscanConfig {
                eps: Some(3.0),
                ..DbscanConfig::default()
            },
        )
        .unwrap();
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1 - 1e-9,
                "noise must not drop: {pair:?}"
            );
        }
    }

    #[test]
    fn memory_limit_is_enforced() {
        let m = blobs(&[50]);
        let err = run(
            &m,
            &DbscanConfig {
                eps: Some(1.0),
                min_samples: 5,
                max_points: Some(10),
            },
        )
        .expect_err("limit exceeded");
        assert_eq!(
            err,
            DbscanError::MemoryLimit {
                points: 50,
                limit: 10
            }
        );
        assert!(err.to_string().contains("memory limit"));
    }

    #[test]
    fn auto_eps_is_positive_and_scales_with_spread() {
        let tight = blobs(&[50]);
        let eps_tight = auto_eps(&tight);
        assert!(eps_tight > 0.0);
        let mut wide = tight.clone();
        for row in &mut wide.rows {
            for x in row.iter_mut() {
                *x *= 10.0;
            }
        }
        assert!(auto_eps(&wide) > eps_tight * 5.0);
    }

    #[test]
    fn paper_grid_matches_figure_5() {
        assert_eq!(paper_grid(), vec![5, 30, 55, 80, 105, 130, 155, 180]);
    }

    #[test]
    fn cached_sweep_matches_per_run_results() {
        let m = blobs(&[50, 30, 12]);
        let base = DbscanConfig {
            eps: Some(3.0),
            ..DbscanConfig::default()
        };
        let grid = vec![5, 10, 20, 40];
        for &(ms, noise, clusters) in &sweep(&m, &grid, &base).unwrap() {
            let solo = run(
                &m,
                &DbscanConfig {
                    min_samples: ms,
                    ..base
                },
            )
            .unwrap();
            assert_eq!((noise, clusters), (solo.noise_ratio(), solo.clusters));
        }
    }

    #[test]
    fn sweep_enforces_memory_limit() {
        let m = blobs(&[50]);
        let err = sweep(
            &m,
            &paper_grid(),
            &DbscanConfig {
                eps: Some(1.0),
                min_samples: 5,
                max_points: Some(10),
            },
        )
        .expect_err("limit exceeded");
        assert_eq!(
            err,
            DbscanError::MemoryLimit {
                points: 50,
                limit: 10
            }
        );
    }

    #[test]
    fn sweep_is_bit_identical_across_thread_counts() {
        // Big enough to cross PAR_NEIGHBOR_MIN_ROWS so the pooled cache
        // build actually runs.
        let m = blobs(&[120, 80, 40]);
        tpupoint_par::set_threads(1);
        let serial = sweep(&m, &paper_grid(), &DbscanConfig::default()).unwrap();
        tpupoint_par::set_threads(4);
        assert_eq!(
            sweep(&m, &paper_grid(), &DbscanConfig::default()).unwrap(),
            serial
        );
        tpupoint_par::set_threads(0);
    }

    #[test]
    fn border_points_join_clusters() {
        // A dense line of points: all should be one cluster, no noise.
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.5, 0.0]).collect();
        let m = FeatureMatrix {
            steps: (0..30).collect(),
            rows,
        };
        let result = run(
            &m,
            &DbscanConfig {
                eps: Some(1.1),
                min_samples: 3,
                max_points: None,
            },
        )
        .unwrap();
        assert_eq!(result.clusters, 1);
        assert_eq!(result.noise_ratio(), 0.0);
    }
}
