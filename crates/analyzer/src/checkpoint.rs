//! Checkpoint association (Section IV-C): each phase is linked to the
//! model checkpoint closest to its steps, so an application can be
//! restarted at a targeted phase "without starting from step zero".

use crate::phases::Phase;

/// The checkpoint chosen for a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseCheckpoint {
    /// Step number the checkpoint was written at.
    pub checkpoint_step: u64,
    /// Smallest distance from the checkpoint to any step in the phase.
    pub distance: u64,
}

/// Finds the checkpoint with the smallest distance to any of the phase's
/// steps. Returns `None` when no checkpoints exist or the phase is empty.
pub fn nearest_checkpoint(phase: &Phase, checkpoints: &[u64]) -> Option<PhaseCheckpoint> {
    if phase.steps.is_empty() || checkpoints.is_empty() {
        return None;
    }
    // Phase steps are sorted (construction order); binary search each
    // checkpoint against the range for the minimum distance.
    let lo = *phase.steps.first().expect("non-empty");
    let hi = *phase.steps.last().expect("non-empty");
    checkpoints
        .iter()
        .map(|&c| {
            let distance = if c < lo {
                lo - c
            } else if c > hi {
                c - hi
            } else {
                // Inside the phase's span: distance to the closest member.
                phase
                    .steps
                    .iter()
                    .map(|&s| s.abs_diff(c))
                    .min()
                    .expect("non-empty")
            };
            PhaseCheckpoint {
                checkpoint_step: c,
                distance,
            }
        })
        .min_by_key(|pc| (pc.distance, pc.checkpoint_step))
}

/// Associates every phase with its nearest checkpoint.
pub fn associate(phases: &[Phase], checkpoints: &[u64]) -> Vec<Option<PhaseCheckpoint>> {
    phases
        .iter()
        .map(|p| nearest_checkpoint(p, checkpoints))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::SimDuration;

    fn phase(steps: &[u64]) -> Phase {
        Phase {
            id: 0,
            steps: steps.to_vec(),
            total_time: SimDuration::ZERO,
            is_noise: false,
        }
    }

    #[test]
    fn checkpoint_inside_phase_has_zero_distance() {
        let p = phase(&[10, 11, 12, 13]);
        let pc = nearest_checkpoint(&p, &[5, 12, 40]).expect("found");
        assert_eq!(pc.checkpoint_step, 12);
        assert_eq!(pc.distance, 0);
    }

    #[test]
    fn nearest_checkpoint_before_the_phase() {
        let p = phase(&[100, 101, 102]);
        let pc = nearest_checkpoint(&p, &[90, 300]).expect("found");
        assert_eq!(pc.checkpoint_step, 90);
        assert_eq!(pc.distance, 10);
    }

    #[test]
    fn ties_prefer_smaller_checkpoint_step() {
        let p = phase(&[50]);
        let pc = nearest_checkpoint(&p, &[45, 55]).expect("found");
        assert_eq!(pc.checkpoint_step, 45);
        assert_eq!(pc.distance, 5);
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert!(nearest_checkpoint(&phase(&[]), &[1]).is_none());
        assert!(nearest_checkpoint(&phase(&[1]), &[]).is_none());
    }

    #[test]
    fn associate_handles_every_phase() {
        let phases = vec![phase(&[1, 2]), phase(&[100])];
        let result = associate(&phases, &[2, 99]);
        assert_eq!(result[0].expect("found").checkpoint_step, 2);
        assert_eq!(result[1].expect("found").checkpoint_step, 99);
    }

    #[test]
    fn gapped_phase_uses_member_distance_not_span() {
        // Phase covers steps {10, 100}; checkpoint at 55 is inside the
        // span but 45 away from the nearest member.
        let p = phase(&[10, 100]);
        let pc = nearest_checkpoint(&p, &[55]).expect("found");
        assert_eq!(pc.distance, 45);
    }
}
