//! The top-level analyzer facade tying features, clustering, OLS, phases,
//! checkpoints, and visualization together.

use crate::checkpoint::{associate, PhaseCheckpoint};
use crate::dbscan::{self, DbscanConfig, DbscanError};
use crate::features::{FeatureMatrix, MAX_DIMS};
use crate::kmeans::{self, KmeansConfig};
use crate::ols::{self, OlsConfig};
use crate::phases::{top_operators, Phase, PhaseSet, TopOps};
use crate::viz;
use std::io;
use tpupoint_profiler::Profile;

/// Tuning knobs for [`Analyzer`] construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzerOptions {
    /// Worker-pool size for the parallel sweeps. `0` (the default) leaves
    /// the process-wide pool untouched — auto-sized from
    /// `TPUPOINT_THREADS` or the machine on first use — so constructing
    /// an analyzer never undoes an explicit `--threads` choice.
    pub threads: usize,
    /// Warm-start the k-means k-sweep ([`KmeansConfig::warm_start`]).
    pub warm_start: bool,
}

impl Default for AnalyzerOptions {
    fn default() -> Self {
        AnalyzerOptions {
            threads: 0,
            warm_start: true,
        }
    }
}

/// Post-execution analyzer over one [`Profile`].
///
/// Construction extracts and reduces the feature matrix once; every
/// summarization method reuses it.
#[derive(Debug)]
pub struct Analyzer<'a> {
    profile: &'a Profile,
    features: FeatureMatrix,
    options: AnalyzerOptions,
}

impl<'a> Analyzer<'a> {
    /// Builds the analyzer, extracting PCA-reduced step features.
    pub fn new(profile: &'a Profile) -> Self {
        Analyzer::with_options(profile, AnalyzerOptions::default())
    }

    /// Builds the analyzer with explicit tuning knobs. A non-zero
    /// `options.threads` re-sizes the process-wide pool first, so feature
    /// extraction below already runs at the requested width.
    pub fn with_options(profile: &'a Profile, options: AnalyzerOptions) -> Self {
        if options.threads != 0 {
            tpupoint_par::set_threads(options.threads);
        }
        let _span = tpupoint_obs::span!(
            "analyzer.pca",
            steps = profile.steps.len(),
            threads = tpupoint_par::current_threads()
        );
        let features = FeatureMatrix::from_profile(profile).reduced(MAX_DIMS);
        Analyzer {
            profile,
            features,
            options,
        }
    }

    /// The tuning knobs this analyzer was built with.
    pub fn options(&self) -> AnalyzerOptions {
        self.options
    }

    /// The k-means configuration the sweeps use.
    fn kmeans_config(&self) -> KmeansConfig {
        KmeansConfig {
            warm_start: self.options.warm_start,
            ..KmeansConfig::default()
        }
    }

    /// The profile under analysis.
    pub fn profile(&self) -> &Profile {
        self.profile
    }

    /// The reduced feature matrix.
    pub fn features(&self) -> &FeatureMatrix {
        &self.features
    }

    /// k-means sum-of-squared-distances sweep (Figure 4).
    pub fn kmeans_sweep(&self, range: std::ops::RangeInclusive<usize>) -> Vec<(usize, f64)> {
        let _span = tpupoint_obs::span!("analyzer.kmeans", k_max = *range.end());
        kmeans::sweep(&self.features, range, &self.kmeans_config())
    }

    /// SimPoint-style BIC sweep over k; an alternative to the elbow
    /// method (see `bic` module docs).
    pub fn kmeans_bic_sweep(&self, range: std::ops::RangeInclusive<usize>) -> Vec<(usize, f64)> {
        let _span = tpupoint_obs::span!("analyzer.kmeans", k_max = *range.end(), bic = true);
        crate::bic::sweep(&self.features, range, &self.kmeans_config())
    }

    /// Phases from k-means with the given k (Figure 9 uses k = 5).
    pub fn kmeans_phases(&self, k: usize) -> PhaseSet {
        let _span = tpupoint_obs::span!("analyzer.kmeans", k = k);
        let result = kmeans::run(
            &self.features,
            &KmeansConfig {
                k,
                ..KmeansConfig::default()
            },
        );
        let labels: Vec<isize> = result.assignments.iter().map(|&a| a as isize).collect();
        PhaseSet::from_labels(&self.profile.steps, &labels)
    }

    /// DBSCAN noise-ratio sweep over the paper's min-samples grid
    /// (Figure 5).
    ///
    /// # Errors
    ///
    /// Returns [`DbscanError::MemoryLimit`] on oversized inputs.
    pub fn dbscan_sweep(&self) -> Result<Vec<(usize, f64, usize)>, DbscanError> {
        let _span = tpupoint_obs::span!("analyzer.dbscan", sweep = true);
        dbscan::sweep(
            &self.features,
            &dbscan::paper_grid(),
            &DbscanConfig::default(),
        )
    }

    /// Phases from DBSCAN with the given min-samples (Figure 8 uses 30);
    /// noise points form their own phase.
    ///
    /// # Errors
    ///
    /// Returns [`DbscanError::MemoryLimit`] on oversized inputs.
    pub fn dbscan_phases(&self, min_samples: usize) -> Result<PhaseSet, DbscanError> {
        let _span = tpupoint_obs::span!("analyzer.dbscan", min_samples = min_samples);
        let result = dbscan::run(
            &self.features,
            &DbscanConfig {
                min_samples,
                ..DbscanConfig::default()
            },
        )?;
        Ok(PhaseSet::from_labels(&self.profile.steps, &result.labels))
    }

    /// OLS phase counts across thresholds (Figure 6).
    pub fn ols_threshold_sweep(&self, thresholds: &[f64]) -> Vec<(f64, usize)> {
        let _span = tpupoint_obs::span!("analyzer.ols", thresholds = thresholds.len());
        ols::threshold_sweep(&self.profile.steps, thresholds)
    }

    /// Phases from the online linear scan at `threshold` (Figure 7 uses
    /// 0.7).
    pub fn ols_phases(&self, threshold: f64) -> PhaseSet {
        let _span = tpupoint_obs::span!("analyzer.ols", threshold = threshold);
        let segments = ols::scan(&self.profile.steps, &OlsConfig { threshold });
        PhaseSet::from_segments(&self.profile.steps, &segments)
    }

    /// Top operators of a phase, split host/TPU (Table II).
    pub fn top_operators(&self, phase: &Phase, n: usize) -> TopOps {
        top_operators(self.profile, phase, n)
    }

    /// Top operators of the longest phase of a set.
    pub fn top_operators_of_longest(&self, set: &PhaseSet, n: usize) -> Option<TopOps> {
        set.by_time_desc()
            .first()
            .map(|phase| self.top_operators(phase, n))
    }

    /// Checkpoint association for every phase (Section IV-C).
    pub fn checkpoints_for(&self, set: &PhaseSet) -> Vec<Option<PhaseCheckpoint>> {
        let steps: Vec<u64> = self.profile.checkpoints.iter().map(|(s, _)| *s).collect();
        associate(&set.phases, &steps)
    }

    /// Writes the Chrome-tracing visualization.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `writer`.
    pub fn write_chrome_trace<W: io::Write>(&self, set: &PhaseSet, writer: W) -> io::Result<()> {
        viz::write_chrome_trace(self.profile, set, writer)
    }

    /// Writes the phase CSV.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `writer`.
    pub fn write_phase_csv<W: io::Write>(&self, set: &PhaseSet, writer: W) -> io::Result<()> {
        viz::write_phase_csv(self.profile, set, writer)
    }

    /// Writes the consecutive step-similarity CSV (Eq. 1 series).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `writer`.
    pub fn write_similarity_csv<W: io::Write>(&self, writer: W) -> io::Result<()> {
        viz::write_similarity_csv(self.profile, writer)
    }

    /// Writes the per-step operations CSV (Section IV-B's second file).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `writer`.
    pub fn write_step_csv<W: io::Write>(&self, writer: W) -> io::Result<()> {
        viz::write_step_csv(self.profile, writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_profiler::{ProfilerOptions, ProfilerSink};
    use tpupoint_runtime::{JobConfig, TrainingJob};

    fn demo_profile() -> Profile {
        let job = TrainingJob::new(JobConfig::demo());
        let mut sink = ProfilerSink::new(job.catalog().clone(), ProfilerOptions::default());
        sink.set_source(&job.config().model, &job.config().dataset.name);
        job.run(&mut sink);
        sink.finish()
    }

    #[test]
    fn ols_finds_few_phases_at_the_default_threshold() {
        let profile = demo_profile();
        let analyzer = Analyzer::new(&profile);
        let set = analyzer.ols_phases(0.7);
        assert!(
            (2..=6).contains(&set.len()),
            "expected a handful of phases, got {}",
            set.len()
        );
        // Top 3 phases dominate execution (Observation 2).
        assert!(
            set.coverage_top(3) > 0.9,
            "coverage {}",
            set.coverage_top(3)
        );
    }

    #[test]
    fn ols_phase_count_is_monotone_in_threshold() {
        let profile = demo_profile();
        let analyzer = Analyzer::new(&profile);
        let sweep = analyzer.ols_threshold_sweep(&[0.0, 0.3, 0.5, 0.7, 0.9, 1.0]);
        for pair in sweep.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "{pair:?}");
        }
    }

    #[test]
    fn kmeans_sweep_is_nonincreasing() {
        let profile = demo_profile();
        let analyzer = Analyzer::new(&profile);
        let sweep = analyzer.kmeans_sweep(1..=8);
        for pair in sweep.windows(2) {
            assert!(pair[1].1 <= pair[0].1 + 1e-6, "{pair:?}");
        }
    }

    #[test]
    fn kmeans_phases_cover_all_steps() {
        let profile = demo_profile();
        let analyzer = Analyzer::new(&profile);
        let set = analyzer.kmeans_phases(5);
        let member_count: usize = set.phases.iter().map(|p| p.steps.len()).sum();
        assert_eq!(member_count, profile.steps.len());
        assert!((set.coverage_top(100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dbscan_sweep_and_phases_run_on_real_profiles() {
        let profile = demo_profile();
        let analyzer = Analyzer::new(&profile);
        let sweep = analyzer.dbscan_sweep().expect("within limits");
        assert_eq!(sweep.len(), 8);
        let set = analyzer.dbscan_phases(5).expect("within limits");
        assert!(!set.is_empty());
    }

    #[test]
    fn longest_phase_top_ops_include_the_expected_suspects() {
        let profile = demo_profile();
        let analyzer = Analyzer::new(&profile);
        let set = analyzer.ols_phases(0.7);
        // The demo run is tiny, so session init can outweigh training;
        // rank phases by time and take the longest one with TPU work (on
        // real workloads that IS the longest phase).
        let top = set
            .by_time_desc()
            .into_iter()
            .map(|p| analyzer.top_operators(p, 5))
            .find(|t| !t.tpu.is_empty())
            .expect("a phase with TPU work exists");
        let tpu_names: Vec<&str> = top.tpu.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(
            tpu_names.contains(&"fusion") || tpu_names.contains(&"MatMul"),
            "tpu top ops: {tpu_names:?}"
        );
        assert!(!top.host.is_empty());
    }

    #[test]
    fn checkpoints_associate_with_phases() {
        let profile = demo_profile();
        let analyzer = Analyzer::new(&profile);
        let set = analyzer.ols_phases(0.7);
        let assoc = analyzer.checkpoints_for(&set);
        assert_eq!(assoc.len(), set.len());
        assert!(assoc.iter().any(Option::is_some));
    }

    #[test]
    fn visualization_outputs_are_nonempty() {
        let profile = demo_profile();
        let analyzer = Analyzer::new(&profile);
        let set = analyzer.ols_phases(0.7);
        let mut json = Vec::new();
        analyzer.write_chrome_trace(&set, &mut json).unwrap();
        assert!(json.len() > 100);
        let mut csv = Vec::new();
        analyzer.write_phase_csv(&set, &mut csv).unwrap();
        assert!(csv.len() > 50);
    }
}
