//! Principal component analysis, implemented from scratch.
//!
//! The analyzer only needs PCA for dimensionality reduction of step
//! vectors (at most a few hundred dimensions), so a dense covariance
//! matrix plus a cyclic Jacobi eigensolver is plenty.

// Dense matrix math reads clearest with explicit indices.
#![allow(clippy::needless_range_loop)]

/// Row count below which mean/covariance accumulation stays serial.
const PAR_COV_MIN_ROWS: usize = 512;

/// Fixed number of accumulation chunks for mean and covariance. The chunk
/// structure depends only on the row count — never on the thread count —
/// and partials are merged serially in chunk order, so the floating-point
/// result is bit-identical for any pool size. Both the serial and the
/// parallel path run the same chunked accumulation.
const COV_CHUNKS: usize = 64;

/// Splits `0..n` into the fixed [`COV_CHUNKS`] structure and folds `f`'s
/// per-chunk partials with `merge`, in chunk order.
fn chunked_accumulate<R: Send>(
    n: usize,
    f: impl Fn(std::ops::Range<usize>) -> R + Sync,
    mut acc: R,
    mut merge: impl FnMut(&mut R, R),
) -> R {
    let chunk_len = n.div_ceil(COV_CHUNKS).max(1);
    let n_chunks = n.div_ceil(chunk_len);
    let chunk = |c: usize| c * chunk_len..((c + 1) * chunk_len).min(n);
    let pool = tpupoint_par::pool();
    let partials: Vec<R> = if n >= PAR_COV_MIN_ROWS && pool.size() > 1 {
        pool.par_map_index(n_chunks, |c| f(chunk(c)))
    } else {
        (0..n_chunks).map(|c| f(chunk(c))).collect()
    };
    for partial in partials {
        merge(&mut acc, partial);
    }
    acc
}

/// Projects row vectors onto their top `k` principal components.
///
/// Centers the data, forms the covariance matrix, diagonalizes it with
/// Jacobi rotations, and projects onto the eigenvectors with the largest
/// eigenvalues. Components with (numerically) zero variance are dropped,
/// so the output may have fewer than `k` columns.
///
/// # Panics
///
/// Panics if rows have unequal lengths.
pub fn project(rows: &[Vec<f64>], k: usize) -> Vec<Vec<f64>> {
    let n = rows.len();
    if n == 0 || k == 0 {
        return vec![Vec::new(); n];
    }
    let d = rows[0].len();
    assert!(
        rows.iter().all(|r| r.len() == d),
        "all rows must share one dimensionality"
    );
    if d == 0 {
        return vec![Vec::new(); n];
    }

    // Center.
    let mut mean = chunked_accumulate(
        n,
        |range| {
            let mut sum = vec![0.0; d];
            for row in &rows[range] {
                for (m, x) in sum.iter_mut().zip(row) {
                    *m += x;
                }
            }
            sum
        },
        vec![0.0; d],
        |acc, partial| {
            for (m, x) in acc.iter_mut().zip(&partial) {
                *m += x;
            }
        },
    );
    for m in &mut mean {
        *m /= n as f64;
    }

    // Covariance (d × d, symmetric).
    let mut cov = chunked_accumulate(
        n,
        |range| {
            let mut cov = vec![vec![0.0; d]; d];
            for row in &rows[range] {
                for i in 0..d {
                    let xi = row[i] - mean[i];
                    if xi == 0.0 {
                        continue;
                    }
                    for j in i..d {
                        cov[i][j] += xi * (row[j] - mean[j]);
                    }
                }
            }
            cov
        },
        vec![vec![0.0; d]; d],
        |acc, partial| {
            for (ai, pi) in acc.iter_mut().zip(&partial) {
                for (a, p) in ai.iter_mut().zip(pi) {
                    *a += p;
                }
            }
        },
    );
    let denom = (n.max(2) - 1) as f64;
    for i in 0..d {
        for j in i..d {
            cov[i][j] /= denom;
            cov[j][i] = cov[i][j];
        }
    }

    let (eigenvalues, eigenvectors) = jacobi_eigen(cov);

    // Order components by descending eigenvalue; keep top-k informative.
    // `total_cmp` gives a total order even if a degenerate input (e.g. a
    // constant feature column, or non-finite covariance entries) yields a
    // NaN eigenvalue; NaN maps to -inf so it sorts last rather than
    // stealing a top-k slot from a real component.
    let mut order: Vec<usize> = (0..d).collect();
    let sort_key = |c: usize| {
        let e = eigenvalues[c];
        if e.is_nan() {
            f64::NEG_INFINITY
        } else {
            e
        }
    };
    order.sort_by(|&a, &b| sort_key(b).total_cmp(&sort_key(a)));
    let kept: Vec<usize> = order
        .into_iter()
        .take(k)
        .filter(|&c| eigenvalues[c] > 1e-12)
        .collect();

    rows.iter()
        .map(|row| {
            kept.iter()
                .map(|&c| {
                    (0..d)
                        .map(|i| (row[i] - mean[i]) * eigenvectors[i][c])
                        .sum()
                })
                .collect()
        })
        .collect()
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix. Returns
/// `(eigenvalues, eigenvector_columns)` where column `c` of the returned
/// matrix is the eigenvector for `eigenvalues[c]`.
pub(crate) fn jacobi_eigen(mut a: Vec<Vec<f64>>) -> (Vec<f64>, Vec<Vec<f64>>) {
    let d = a.len();
    let mut v: Vec<Vec<f64>> = (0..d)
        .map(|i| (0..d).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
        .collect();
    for _sweep in 0..64 {
        let mut off = 0.0;
        for i in 0..d {
            for j in (i + 1)..d {
                off += a[i][j] * a[i][j];
            }
        }
        if off < 1e-18 {
            break;
        }
        for p in 0..d {
            for q in (p + 1)..d {
                if a[p][q].abs() < 1e-15 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for i in 0..d {
                    let aip = a[i][p];
                    let aiq = a[i][q];
                    a[i][p] = c * aip - s * aiq;
                    a[i][q] = s * aip + c * aiq;
                }
                for j in 0..d {
                    let apj = a[p][j];
                    let aqj = a[q][j];
                    a[p][j] = c * apj - s * aqj;
                    a[q][j] = s * apj + c * aqj;
                }
                for i in 0..d {
                    let vip = v[i][p];
                    let viq = v[i][q];
                    v[i][p] = c * vip - s * viq;
                    v[i][q] = s * vip + c * viq;
                }
            }
        }
    }
    let eigenvalues = (0..d).map(|i| a[i][i]).collect();
    (eigenvalues, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projects_2d_line_onto_one_component() {
        // Points along y = 2x: one informative direction.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let projected = project(&rows, 2);
        // Second component has zero variance and is dropped.
        assert!(projected.iter().all(|r| r.len() == 1));
        // Projection preserves ordering along the line.
        for pair in projected.windows(2) {
            assert!((pair[1][0] - pair[0][0]).abs() > 0.1);
        }
    }

    #[test]
    fn preserves_pairwise_distances_when_keeping_all_components() {
        let rows = vec![
            vec![1.0, 0.0, 3.0],
            vec![2.0, 1.0, 0.0],
            vec![0.0, 5.0, 1.0],
            vec![4.0, 2.0, 2.0],
        ];
        let projected = project(&rows, 3);
        let d =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                let before = d(&rows[i], &rows[j]);
                let after = d(&projected[i], &projected[j]);
                assert!(
                    (before - after).abs() < 1e-6,
                    "distance {i}-{j}: {before} vs {after}"
                );
            }
        }
    }

    #[test]
    fn top_component_captures_dominant_variance() {
        // Variance 100 along x, 1 along y.
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = (i as f64 - 25.0) / 2.5;
                vec![10.0 * t, t.sin()]
            })
            .collect();
        let projected = project(&rows, 1);
        assert!(projected.iter().all(|r| r.len() == 1));
        let var: f64 = {
            let mean: f64 = projected.iter().map(|r| r[0]).sum::<f64>() / projected.len() as f64;
            projected.iter().map(|r| (r[0] - mean).powi(2)).sum::<f64>() / projected.len() as f64
        };
        assert!(var > 900.0, "kept component variance {var}");
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(project(&[], 5).is_empty());
        let constant = vec![vec![3.0, 3.0]; 4];
        let projected = project(&constant, 2);
        // All components have zero variance: rows become empty.
        assert!(projected.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn projection_is_bit_identical_across_thread_counts() {
        // Big enough to cross PAR_COV_MIN_ROWS so the pooled covariance
        // accumulation actually runs.
        let rows: Vec<Vec<f64>> = (0..700)
            .map(|i| {
                let t = i as f64;
                vec![t.sin() * 3.0, (t * 0.7).cos(), t % 5.0, (t * 1.3).sin()]
            })
            .collect();
        tpupoint_par::set_threads(1);
        let serial = project(&rows, 3);
        tpupoint_par::set_threads(4);
        assert_eq!(project(&rows, 3), serial);
        tpupoint_par::set_threads(0);
    }

    #[test]
    fn constant_column_never_panics_the_eigenvalue_sort() {
        // A constant feature column yields a zero-variance direction;
        // composed with non-finite inputs it can surface NaN eigenvalues.
        // The sort must stay total (no `partial_cmp(..).unwrap()` panic)
        // and real components must still win the top-k slots.
        let rows: Vec<Vec<f64>> = (0..32)
            .map(|i| {
                let t = i as f64;
                vec![7.0, t.sin() * 3.0, 7.0, t * 0.5]
            })
            .collect();
        let projected = project(&rows, 4);
        assert_eq!(projected.len(), rows.len());
        // Only the two varying directions carry variance.
        assert!(projected.iter().all(|r| r.len() <= 2), "{projected:?}");
        assert!(projected.iter().all(|r| r.iter().all(|v| v.is_finite())));

        // NaN cells poison the covariance into NaN eigenvalues; the sort
        // and projection must survive rather than panic.
        let mut poisoned = rows;
        poisoned[3][1] = f64::NAN;
        let projected = project(&poisoned, 2);
        assert_eq!(projected.len(), poisoned.len());
    }

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let (mut vals, _) = jacobi_eigen(vec![vec![2.0, 1.0], vec![1.0, 2.0]]);
        vals.sort_by(f64::total_cmp);
        assert!((vals[0] - 1.0).abs() < 1e-9);
        assert!((vals[1] - 3.0).abs() < 1e-9);
    }
}
