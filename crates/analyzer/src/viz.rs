//! Visualization exports (Section IV-B, Figure 3).
//!
//! TPUPoint-Analyzer writes a JSON file compatible with Chrome's
//! `chrome://tracing` viewer showing two horizontal tracks — "Profile
//! Breakdown" (the sealed profile windows) and "Phase Breakdown" (the
//! detected phases spanning them) — plus a CSV with the per-phase
//! description and top operators.

use crate::phases::{top_operators, Phase, PhaseSet};
use serde_json::{json, Value};
use std::io::{self, Write};
use tpupoint_profiler::Profile;
use tpupoint_simcore::SimTime;

/// Time extent of a phase: min event start to max event end over member
/// steps. Returns `None` for phases with no events.
fn phase_extent(profile: &Profile, phase: &Phase) -> Option<(SimTime, SimTime)> {
    let members: std::collections::HashSet<u64> = phase.steps.iter().copied().collect();
    let mut lo: Option<SimTime> = None;
    let mut hi: Option<SimTime> = None;
    for record in &profile.steps {
        if !members.contains(&record.step) || record.ops.is_empty() {
            continue;
        }
        lo = Some(lo.map_or(record.first_start, |t: SimTime| t.min(record.first_start)));
        hi = Some(hi.map_or(record.last_end, |t: SimTime| t.max(record.last_end)));
    }
    match (lo, hi) {
        (Some(a), Some(b)) => Some((a, b)),
        _ => None,
    }
}

/// Builds the Chrome-tracing JSON value for a profile and its phases.
pub fn chrome_trace(profile: &Profile, phases: &PhaseSet) -> Value {
    let mut events = Vec::new();
    // Track naming metadata.
    for (tid, name) in [(1u32, "Profile Breakdown"), (2u32, "Phase Breakdown")] {
        events.push(json!({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": name},
        }));
    }
    for window in &profile.windows {
        events.push(json!({
            "name": format!("profile.{}", window.index),
            "cat": "profile",
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": window.start.as_micros(),
            "dur": window.span().as_micros(),
            "args": {
                "events": window.events,
                "tpu_idle_fraction": window.tpu_idle_fraction(),
                "mxu_utilization": window.mxu_utilization(),
                "steps": format!("{}..{}", window.first_step, window.last_step),
            },
        }));
    }
    for phase in &phases.phases {
        let Some((start, end)) = phase_extent(profile, phase) else {
            continue;
        };
        let top = top_operators(profile, phase, 5);
        let describe = |rows: &[(String, tpupoint_simcore::SimDuration, u64)]| -> Vec<String> {
            rows.iter()
                .map(|(name, dur, count)| format!("{name} ({count}x, {dur})"))
                .collect()
        };
        events.push(json!({
            "name": format!("phase.{}{}", phase.id, if phase.is_noise { " (noise)" } else { "" }),
            "cat": "phase",
            "ph": "X",
            "pid": 1,
            "tid": 2,
            "ts": start.as_micros(),
            "dur": (end - start).as_micros(),
            "args": {
                "steps": phase.steps.len(),
                "first_step": phase.steps.first(),
                "last_step": phase.steps.last(),
                "total_op_time_us": phase.total_time.as_micros(),
                "top_host_ops": describe(&top.host),
                "top_tpu_ops": describe(&top.tpu),
            },
        }));
    }
    json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "tool": "tpupoint-analyzer",
            "model": profile.model,
            "dataset": profile.dataset,
        },
    })
}

/// Writes the Chrome-tracing JSON file.
///
/// # Errors
///
/// Returns any I/O error from `writer`.
pub fn write_chrome_trace<W: Write>(
    profile: &Profile,
    phases: &PhaseSet,
    writer: W,
) -> io::Result<()> {
    serde_json::to_writer_pretty(writer, &chrome_trace(profile, phases)).map_err(io::Error::other)
}

/// Writes the companion CSV: one row per phase with description and top
/// operators.
///
/// # Errors
///
/// Returns any I/O error from `writer`.
pub fn write_phase_csv<W: Write>(
    profile: &Profile,
    phases: &PhaseSet,
    mut writer: W,
) -> io::Result<()> {
    writeln!(
        writer,
        "phase,steps,first_step,last_step,total_op_time_us,share,top_host_ops,top_tpu_ops"
    )?;
    let total = phases.total_time.as_micros().max(1) as f64;
    for phase in &phases.phases {
        let top = top_operators(profile, phase, 5);
        let fmt_ops = |rows: &[(String, tpupoint_simcore::SimDuration, u64)]| -> String {
            rows.iter()
                .map(|(n, _, _)| n.as_str())
                .collect::<Vec<_>>()
                .join("|")
        };
        writeln!(
            writer,
            "{},{},{},{},{},{:.4},{},{}",
            phase.id,
            phase.steps.len(),
            phase.steps.first().copied().unwrap_or(0),
            phase.steps.last().copied().unwrap_or(0),
            phase.total_time.as_micros(),
            phase.total_time.as_micros() as f64 / total,
            fmt_ops(&top.host),
            fmt_ops(&top.tpu),
        )?;
    }
    Ok(())
}

/// Writes the per-step operations CSV: "the TPU and Host CPU operations
/// executed during training steps" (Section IV-B). One row per
/// (step, operator) with counts and durations.
///
/// # Errors
///
/// Returns any I/O error from `writer`.
pub fn write_step_csv<W: Write>(profile: &Profile, mut writer: W) -> io::Result<()> {
    writeln!(writer, "step,op,side,invocations,total_us")?;
    for record in &profile.steps {
        for (op, stats) in &record.ops {
            writeln!(
                writer,
                "{},{},{},{},{}",
                record.step,
                profile.op_name(*op),
                if profile.op_on_host[op.0 as usize] {
                    "host"
                } else {
                    "tpu"
                },
                stats.count,
                stats.total.as_micros(),
            )?;
        }
    }
    Ok(())
}

/// Writes the consecutive step-similarity series (Eq. 1) as CSV — the raw
/// data behind Figure 6's threshold sweep. One row per adjacent step pair.
///
/// # Errors
///
/// Returns any I/O error from `writer`.
pub fn write_similarity_csv<W: Write>(profile: &Profile, mut writer: W) -> io::Result<()> {
    writeln!(writer, "step,prev_step,similarity")?;
    let sims = crate::ols::consecutive_similarities(&profile.steps);
    for (pair, sim) in profile.steps.windows(2).zip(sims) {
        writeln!(writer, "{},{},{:.6}", pair[1].step, pair[0].step, sim)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_profiler::{StepRecord, WindowRecord};
    use tpupoint_simcore::{OpId, SimDuration, Track};

    fn profile() -> Profile {
        let mut r1 = StepRecord::new(1);
        r1.absorb(
            OpId(0),
            Track::TpuCore(0),
            SimTime::from_micros(100),
            SimDuration::from_micros(50),
            SimDuration::from_micros(25),
        );
        let mut r2 = StepRecord::new(2);
        r2.absorb(
            OpId(1),
            Track::Host,
            SimTime::from_micros(200),
            SimDuration::from_micros(80),
            SimDuration::ZERO,
        );
        Profile {
            model: "m".into(),
            dataset: "d".into(),
            op_names: vec!["fusion".into(), "OutfeedDequeueTuple".into()],
            op_uses_mxu: vec![true, false],
            op_on_host: vec![false, true],
            steps: vec![r1, r2],
            windows: vec![WindowRecord {
                index: 0,
                start: SimTime::from_micros(100),
                end: SimTime::from_micros(300),
                events: 2,
                tpu_busy: SimDuration::from_micros(50),
                mxu_busy: SimDuration::from_micros(25),
                first_step: 1,
                last_step: 2,
            }],
            step_marks: vec![
                (1, SimTime::from_micros(150)),
                (2, SimTime::from_micros(280)),
            ],
            checkpoints: vec![],
            dropped_windows: 0,
            lost_events: 0,
            store_errors: 0,
            store_error: None,
        }
    }

    fn phase_set(profile: &Profile) -> PhaseSet {
        PhaseSet::from_labels(&profile.steps, &[0, 1])
    }

    #[test]
    fn trace_contains_both_tracks() {
        let p = profile();
        let trace = chrome_trace(&p, &phase_set(&p));
        let events = trace["traceEvents"].as_array().expect("array");
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e["ph"] == "M")
            .map(|e| e["args"]["name"].as_str().unwrap())
            .collect();
        assert!(names.contains(&"Profile Breakdown"));
        assert!(names.contains(&"Phase Breakdown"));
    }

    #[test]
    fn trace_events_cover_windows_and_phases() {
        let p = profile();
        let trace = chrome_trace(&p, &phase_set(&p));
        let events = trace["traceEvents"].as_array().expect("array");
        let profiles = events.iter().filter(|e| e["cat"] == "profile").count();
        let phases = events.iter().filter(|e| e["cat"] == "phase").count();
        assert_eq!(profiles, 1);
        assert_eq!(phases, 2);
    }

    #[test]
    fn phase_events_carry_top_ops() {
        let p = profile();
        let trace = chrome_trace(&p, &phase_set(&p));
        let phase_event = trace["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["cat"] == "phase")
            .expect("phase event")
            .clone();
        let tpu_ops = phase_event["args"]["top_tpu_ops"].as_array().unwrap();
        assert!(tpu_ops[0].as_str().unwrap().contains("fusion"));
    }

    #[test]
    fn json_is_valid_and_round_trips() {
        let p = profile();
        let mut buf = Vec::new();
        write_chrome_trace(&p, &phase_set(&p), &mut buf).unwrap();
        let parsed: Value = serde_json::from_slice(&buf).expect("valid JSON");
        assert_eq!(parsed["metadata"]["model"], "m");
    }

    #[test]
    fn csv_has_one_row_per_phase() {
        let p = profile();
        let mut buf = Vec::new();
        write_phase_csv(&p, &phase_set(&p), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.trim().lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 phases
        assert!(lines[0].starts_with("phase,steps"));
        assert!(lines[1].contains("fusion") || lines[2].contains("fusion"));
    }

    #[test]
    fn step_csv_lists_every_step_operator_pair() {
        let p = profile();
        let mut buf = Vec::new();
        write_step_csv(&p, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.trim().lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 (step, op) rows
        assert!(lines[1].starts_with("1,fusion,tpu,1,50"));
        assert!(lines[2].starts_with("2,OutfeedDequeueTuple,host,1,80"));
    }

    #[test]
    fn similarity_csv_has_one_row_per_adjacent_pair() {
        let p = profile();
        let mut buf = Vec::new();
        write_similarity_csv(&p, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.trim().lines().collect();
        assert_eq!(lines.len(), 2); // header + 1 pair
        assert!(lines[1].starts_with("2,1,0.000000")); // disjoint op sets
    }

    #[test]
    fn empty_phase_is_skipped_in_trace() {
        let p = profile();
        let mut set = phase_set(&p);
        set.phases.push(Phase {
            id: 9,
            steps: vec![999],
            total_time: SimDuration::ZERO,
            is_noise: false,
        });
        let trace = chrome_trace(&p, &set);
        let phases = trace["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["cat"] == "phase")
            .count();
        assert_eq!(phases, 2);
    }
}
