//! Per-step feature vectors.
//!
//! "Extract the records from all statistical profiles and aggregate records
//! together using the TPU step numbers. For each step, we define dimensions
//! in terms of TensorFlow operations, the accumulated number of invocations,
//! and total durations" (Section IV-A). Each step therefore contributes a
//! vector with two dimensions per operator: invocation count and total
//! duration. Dimensions are min-max scaled so that counts (small integers)
//! and durations (microseconds) are comparable, then optionally reduced
//! with PCA to at most 100 dimensions.

use crate::pca;
use tpupoint_profiler::Profile;

/// Maximum feature dimensionality after PCA, per the paper.
pub const MAX_DIMS: usize = 100;

/// Step count below which feature construction and scaling stay serial.
const PAR_MIN_ROWS: usize = 256;

/// A dense steps × features matrix with its row labels.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    /// Profile step number of each row.
    pub steps: Vec<u64>,
    /// Row-major feature rows; all rows have equal length.
    pub rows: Vec<Vec<f64>>,
}

impl FeatureMatrix {
    /// Number of rows (steps).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// Builds raw (count, duration) features for every record in the
    /// profile, including the synthetic init/shutdown records, min-max
    /// scaled per dimension.
    ///
    /// Each step's row depends only on that step's record, so construction
    /// fans out over the pool for large profiles with identical results
    /// at any thread count.
    pub fn from_profile(profile: &Profile) -> FeatureMatrix {
        let n_ops = profile.op_names.len();
        let build = |record: &tpupoint_profiler::StepRecord| -> Vec<f64> {
            let mut row = vec![0.0; 2 * n_ops];
            for (op, stats) in &record.ops {
                let i = op.0 as usize;
                row[2 * i] = stats.count as f64;
                row[2 * i + 1] = stats.total.as_micros() as f64;
            }
            row
        };
        let pool = tpupoint_par::pool();
        let rows: Vec<Vec<f64>> = if profile.steps.len() >= PAR_MIN_ROWS && pool.size() > 1 {
            pool.par_map(&profile.steps, |_, record| build(record))
        } else {
            profile.steps.iter().map(build).collect()
        };
        let steps = profile.steps.iter().map(|record| record.step).collect();
        let mut matrix = FeatureMatrix { steps, rows };
        matrix.minmax_scale();
        matrix
    }

    /// Min-max scales each dimension into `[0, 1]`; constant dimensions
    /// become 0.
    ///
    /// Per-dimension bounds and the per-row rescale are both independent,
    /// so each fans out over the pool for large matrices; every cell gets
    /// the same arithmetic as the serial loop.
    pub fn minmax_scale(&mut self) {
        let dims = self.dims();
        if dims == 0 {
            return;
        }
        let pool = tpupoint_par::pool();
        let parallel = self.len() >= PAR_MIN_ROWS && pool.size() > 1;
        let bounds: Vec<(f64, f64)> = {
            let rows = &self.rows;
            let bounds_of = |d: usize| -> (f64, f64) {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for row in rows {
                    lo = lo.min(row[d]);
                    hi = hi.max(row[d]);
                }
                (lo, hi)
            };
            if parallel {
                pool.par_map_index(dims, bounds_of)
            } else {
                (0..dims).map(bounds_of).collect()
            }
        };
        let scale = |row: &[f64]| -> Vec<f64> {
            row.iter()
                .zip(&bounds)
                .map(|(&x, &(lo, hi))| {
                    let range = hi - lo;
                    if range > 0.0 {
                        (x - lo) / range
                    } else {
                        0.0
                    }
                })
                .collect()
        };
        if parallel {
            self.rows = pool.par_map(&self.rows, |_, row| scale(row));
        } else {
            for row in &mut self.rows {
                *row = scale(row);
            }
        }
    }

    /// Applies PCA, keeping at most `max_dims` components (and at most the
    /// number of informative components). Returns the reduced matrix.
    pub fn reduced(&self, max_dims: usize) -> FeatureMatrix {
        if self.is_empty() || self.dims() <= max_dims {
            return self.clone();
        }
        let projected = pca::project(&self.rows, max_dims);
        FeatureMatrix {
            steps: self.steps.clone(),
            rows: projected,
        }
    }

    /// Squared Euclidean distance between two rows.
    pub fn dist2(&self, a: usize, b: usize) -> f64 {
        dist2(&self.rows[a], &self.rows[b])
    }
}

/// Squared Euclidean distance between two equal-length vectors.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_profiler::StepRecord;
    use tpupoint_simcore::{OpId, SimDuration, SimTime, Track};

    /// `(op id, invocation count, total duration)` triples per step.
    type StepSpec<'a> = (u64, &'a [(u32, u64, u64)]);

    fn profile_with_steps(specs: &[StepSpec<'_>]) -> Profile {
        let max_op = specs
            .iter()
            .flat_map(|(_, ops)| ops.iter().map(|(o, _, _)| *o))
            .max()
            .unwrap_or(0) as usize;
        let steps = specs
            .iter()
            .map(|(step, ops)| {
                let mut r = StepRecord::new(*step);
                for &(op, count, dur) in ops.iter() {
                    for i in 0..count {
                        r.absorb(
                            OpId(op),
                            Track::TpuCore(0),
                            SimTime::from_micros(i),
                            SimDuration::from_micros(dur / count.max(1)),
                            SimDuration::ZERO,
                        );
                    }
                }
                r
            })
            .collect();
        Profile {
            model: "m".into(),
            dataset: "d".into(),
            op_names: (0..=max_op).map(|i| format!("op{i}")).collect(),
            op_uses_mxu: vec![false; max_op + 1],
            op_on_host: vec![false; max_op + 1],
            steps,
            windows: vec![],
            step_marks: vec![],
            checkpoints: vec![],
            dropped_windows: 0,
            lost_events: 0,
            store_errors: 0,
            store_error: None,
        }
    }

    #[test]
    fn rows_align_with_steps_and_ops() {
        let p = profile_with_steps(&[(1, &[(0, 2, 100)]), (2, &[(1, 1, 50)])]);
        let m = FeatureMatrix::from_profile(&p);
        assert_eq!(m.len(), 2);
        assert_eq!(m.dims(), 4); // 2 ops x (count, duration)
        assert_eq!(m.steps, vec![1, 2]);
    }

    #[test]
    fn scaling_maps_each_dimension_to_unit_interval() {
        let p = profile_with_steps(&[(1, &[(0, 1, 10)]), (2, &[(0, 3, 30)]), (3, &[(0, 5, 50)])]);
        let m = FeatureMatrix::from_profile(&p);
        for d in 0..m.dims() {
            let vals: Vec<f64> = m.rows.iter().map(|r| r[d]).collect();
            assert!(vals.iter().cloned().fold(f64::INFINITY, f64::min) >= 0.0);
            assert!(vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max) <= 1.0);
        }
        // The count dimension of op0 spans 1..5 → scaled endpoints 0 and 1.
        assert_eq!(m.rows[0][0], 0.0);
        assert_eq!(m.rows[2][0], 1.0);
    }

    #[test]
    fn identical_steps_produce_identical_rows() {
        let p = profile_with_steps(&[(1, &[(0, 2, 100)]), (2, &[(0, 2, 100)])]);
        let m = FeatureMatrix::from_profile(&p);
        assert_eq!(m.rows[0], m.rows[1]);
        assert_eq!(m.dist2(0, 1), 0.0);
    }

    #[test]
    fn reduction_caps_dimensionality() {
        // 60 ops → 120 raw dims; reduce to 10.
        let ops: Vec<(u32, u64, u64)> = (0..60).map(|i| (i, 1, 10 + i as u64)).collect();
        let specs: Vec<StepSpec<'_>> = vec![(1, &ops[..]), (2, &ops[..]), (3, &ops[..10])];
        let p = profile_with_steps(&specs);
        let m = FeatureMatrix::from_profile(&p);
        assert_eq!(m.dims(), 120);
        let r = m.reduced(10);
        assert!(r.dims() <= 10);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn reduction_is_identity_when_small() {
        let p = profile_with_steps(&[(1, &[(0, 1, 10)]), (2, &[(0, 2, 20)])]);
        let m = FeatureMatrix::from_profile(&p);
        assert_eq!(m.reduced(MAX_DIMS), m);
    }

    #[test]
    fn dist2_is_symmetric_and_zero_on_self() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.0, 1.0, 5.0];
        assert_eq!(dist2(&a, &b), dist2(&b, &a));
        assert_eq!(dist2(&a, &a), 0.0);
        assert_eq!(dist2(&a, &b), 1.0 + 1.0 + 4.0);
    }
}
