//! The Online Linear Scan (OLS): TPUPoint's low-overhead phase detector.
//!
//! OLS avoids storing and post-processing all records: it compares each
//! step only to its predecessor using the set-based similarity of
//! Equation 1,
//!
//! ```text
//! StepSimilarity(S_{i-1}, S_{i-2}) = |S_{i-1} ∩ S_{i-2}| / min(|S_{i-1}|, |S_{i-2}|)
//! ```
//!
//! where a step's set is the distinct operators observed during it. If the
//! similarity meets the threshold (default 70%) the successor joins the
//! current phase; otherwise a new phase begins.

use tpupoint_profiler::StepRecord;

/// OLS configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlsConfig {
    /// Similarity threshold in `[0, 1]`; the paper's default is 0.7.
    pub threshold: f64,
}

impl Default for OlsConfig {
    fn default() -> Self {
        OlsConfig { threshold: 0.7 }
    }
}

/// A contiguous run of steps forming one OLS phase, as half-open indices
/// into the scanned record slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First record index of the phase.
    pub start: usize,
    /// One past the last record index.
    pub end: usize,
}

impl Segment {
    /// Number of steps in the segment. Saturates to zero for inverted
    /// bounds (`start > end`), matching [`Segment::is_empty`] — the scan
    /// never produces such a segment, but hand-built ones must not panic
    /// where `is_empty` calmly reports `true`.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True for a segment holding no steps (never produced by the scan).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Equation 1: intersection over the smaller event set. Two empty sets are
/// defined as fully similar.
pub fn step_similarity(a: &StepRecord, b: &StepRecord) -> f64 {
    let na = a.distinct_ops();
    let nb = b.distinct_ops();
    if na == 0 && nb == 0 {
        return 1.0;
    }
    if na == 0 || nb == 0 {
        return 0.0;
    }
    // Both op maps are BTreeMaps: intersect with a linear merge.
    let mut inter = 0usize;
    let mut ita = a.event_set().peekable();
    let mut itb = b.event_set().peekable();
    while let (Some(&x), Some(&y)) = (ita.peek(), itb.peek()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                ita.next();
            }
            std::cmp::Ordering::Greater => {
                itb.next();
            }
            std::cmp::Ordering::Equal => {
                inter += 1;
                ita.next();
                itb.next();
            }
        }
    }
    inter as f64 / na.min(nb) as f64
}

/// Scans records (assumed in step order) into phases.
///
/// # Panics
///
/// Panics if the threshold is outside `[0, 1]`.
pub fn scan(records: &[StepRecord], config: &OlsConfig) -> Vec<Segment> {
    assert!(
        (0.0..=1.0).contains(&config.threshold),
        "similarity threshold must be within [0, 1]"
    );
    let mut segments = Vec::new();
    if records.is_empty() {
        return segments;
    }
    let mut start = 0usize;
    for i in 1..records.len() {
        if step_similarity(&records[i], &records[i - 1]) < config.threshold {
            segments.push(Segment { start, end: i });
            start = i;
        }
    }
    segments.push(Segment {
        start,
        end: records.len(),
    });
    segments
}

/// Similarity of each record to its predecessor (Eq. 1), in record
/// order; entry `i` compares records `i` and `i+1`. The raw series behind
/// Figure 6's threshold sweep.
pub fn consecutive_similarities(records: &[StepRecord]) -> Vec<f64> {
    records
        .windows(2)
        .map(|w| step_similarity(&w[1], &w[0]))
        .collect()
}

/// Counts phases for each threshold — the data behind Figure 6.
pub fn threshold_sweep(records: &[StepRecord], thresholds: &[f64]) -> Vec<(f64, usize)> {
    // Precompute consecutive similarities once; each threshold then counts
    // boundary crossings.
    let sims = consecutive_similarities(records);
    thresholds
        .iter()
        .map(|&t| {
            let breaks = sims.iter().filter(|&&s| s < t).count();
            let phases = if records.is_empty() { 0 } else { breaks + 1 };
            (t, phases)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::{OpId, SimDuration, SimTime, Track};

    /// Builds a record whose event set is exactly `ops`.
    fn record(step: u64, ops: &[u32]) -> StepRecord {
        let mut r = StepRecord::new(step);
        for &op in ops {
            r.absorb(
                OpId(op),
                Track::TpuCore(0),
                SimTime::from_micros(step * 100),
                SimDuration::from_micros(10),
                SimDuration::ZERO,
            );
        }
        r
    }

    #[test]
    fn similarity_matches_equation_one() {
        let a = record(1, &[1, 2, 3, 4]);
        let b = record(2, &[3, 4, 5]);
        // Intersection {3,4} = 2; min size 3.
        assert!((step_similarity(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let a = record(1, &[1, 2, 3]);
        let b = record(2, &[2, 3, 4, 5, 6]);
        let s1 = step_similarity(&a, &b);
        let s2 = step_similarity(&b, &a);
        assert_eq!(s1, s2);
        assert!((0.0..=1.0).contains(&s1));
    }

    #[test]
    fn subset_sets_are_fully_similar() {
        // min-normalization: a subset scores 1.0 — the property that lets
        // checkpoint steps (supersets) merge into the training phase.
        let a = record(1, &[1, 2, 3]);
        let b = record(2, &[1, 2, 3, 4, 5]);
        assert_eq!(step_similarity(&a, &b), 1.0);
    }

    #[test]
    fn disjoint_sets_score_zero_and_empty_edge_cases() {
        let a = record(1, &[1, 2]);
        let b = record(2, &[3, 4]);
        assert_eq!(step_similarity(&a, &b), 0.0);
        let empty = record(3, &[]);
        assert_eq!(step_similarity(&empty, &empty), 1.0);
        assert_eq!(step_similarity(&a, &empty), 0.0);
    }

    #[test]
    fn scan_merges_similar_consecutive_steps() {
        let records = vec![
            record(1, &[1, 2, 3]),
            record(2, &[1, 2, 3]),
            record(3, &[1, 2, 3]),
            record(4, &[7, 8, 9]), // new behaviour
            record(5, &[7, 8, 9]),
        ];
        let segments = scan(&records, &OlsConfig::default());
        assert_eq!(
            segments,
            vec![Segment { start: 0, end: 3 }, Segment { start: 3, end: 5 }]
        );
    }

    #[test]
    fn segments_are_a_contiguous_cover() {
        let records: Vec<StepRecord> = (0..50)
            .map(|i| {
                if i % 7 == 0 {
                    record(i, &[100, 101])
                } else {
                    record(i, &[1, 2, 3, 4])
                }
            })
            .collect();
        let segments = scan(&records, &OlsConfig::default());
        assert_eq!(segments[0].start, 0);
        assert_eq!(segments.last().unwrap().end, records.len());
        for pair in segments.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert!(segments.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn threshold_zero_yields_one_phase() {
        let records = vec![record(1, &[1]), record(2, &[2]), record(3, &[3])];
        let segments = scan(&records, &OlsConfig { threshold: 0.0 });
        assert_eq!(segments.len(), 1);
    }

    #[test]
    fn phase_count_grows_with_threshold() {
        // Steps drift: consecutive similarity ~0.75.
        let records: Vec<StepRecord> = (0..20)
            .map(|i| record(i, &[i as u32, i as u32 + 1, i as u32 + 2, i as u32 + 3]))
            .collect();
        let sweep = threshold_sweep(&records, &[0.0, 0.5, 0.8, 1.0]);
        let counts: Vec<usize> = sweep.iter().map(|(_, c)| *c).collect();
        for pair in counts.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        assert_eq!(counts[0], 1);
        assert_eq!(*counts.last().unwrap(), 20);
    }

    #[test]
    fn sweep_agrees_with_scan() {
        let records: Vec<StepRecord> = (0..30)
            .map(|i| {
                if i % 10 < 5 {
                    record(i, &[1, 2, 3])
                } else {
                    record(i, &[4, 5, 6])
                }
            })
            .collect();
        for &t in &[0.3, 0.7, 0.9] {
            let by_scan = scan(&records, &OlsConfig { threshold: t }).len();
            let by_sweep = threshold_sweep(&records, &[t])[0].1;
            assert_eq!(by_scan, by_sweep);
        }
    }

    #[test]
    fn consecutive_similarities_match_pairwise_calls() {
        let records = vec![
            record(1, &[1, 2, 3]),
            record(2, &[1, 2, 3]),
            record(3, &[4, 5]),
        ];
        let sims = consecutive_similarities(&records);
        assert_eq!(sims.len(), 2);
        assert_eq!(sims[0], 1.0);
        assert_eq!(sims[1], 0.0);
        assert!(consecutive_similarities(&records[..1]).is_empty());
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn invalid_threshold_panics() {
        let _ = scan(&[], &OlsConfig { threshold: 1.5 });
    }
}
