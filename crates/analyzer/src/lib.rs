//! # tpupoint-analyzer
//!
//! TPUPoint-Analyzer (Section IV of the paper): post-execution analysis of
//! profiles into program *phases* — similar, repetitive step behaviours —
//! plus the artifacts built on top of phases:
//!
//! * [`features`] — per-step frequency/duration vectors with PCA
//!   dimensionality reduction ([`pca`]), capped at 100 dimensions as the
//!   paper prescribes;
//! * [`kmeans`] — Lloyd's k-means (k-means++ seeded) swept over k = 1..15,
//!   summarized by the sum of squared distances and the elbow method
//!   ([`elbow`]) — Figure 4;
//! * [`dbscan`] — density-based clustering swept over the minimum-samples
//!   parameter, summarized by the noise ratio — Figure 5;
//! * [`ols`] — the paper's novel Online Linear Scan: Equation 1 step-set
//!   similarity with a threshold (default 70%), merging consecutive steps
//!   into phases with O(1) memory — Figure 6;
//! * [`phases`] — phase construction, execution-time coverage (Figures
//!   7–9), and per-phase top-operator rankings split by host/TPU
//!   (Table II);
//! * [`bic`] — the Bayesian information criterion SimPoint uses to pick
//!   its cluster count, provided alongside the paper's elbow heuristic;
//! * [`checkpoint`] — association of each phase with its nearest model
//!   checkpoint for fast-forwarding (Section IV-C);
//! * [`viz`] — the Chrome-tracing JSON and CSV visualization files
//!   (Section IV-B, Figure 3).
//!
//! The sweeps and feature extraction fan out over the `tpupoint-par`
//! scoped pool (sized by [`AnalyzerOptions::threads`], `--threads`, or
//! `TPUPOINT_THREADS`); every parallel path is bit-identical to the
//! serial one, so phase boundaries never depend on the thread count.
//!
//! ```
//! use tpupoint_runtime::{JobConfig, TrainingJob};
//! use tpupoint_profiler::{ProfilerOptions, ProfilerSink};
//! use tpupoint_analyzer::Analyzer;
//!
//! let job = TrainingJob::new(JobConfig::demo());
//! let mut sink = ProfilerSink::new(job.catalog().clone(), ProfilerOptions::default());
//! job.run(&mut sink);
//! let profile = sink.finish();
//! let analyzer = Analyzer::new(&profile);
//! let phases = analyzer.ols_phases(0.7);
//! assert!(!phases.phases.is_empty());
//! ```

pub mod analyzer;
pub mod bic;
pub mod checkpoint;
pub mod compare;
pub mod dbscan;
pub mod elbow;
pub mod features;
pub mod kmeans;
pub mod ols;
pub mod pca;
pub mod phases;
pub mod report;
pub mod streaming;
pub mod viz;

pub use analyzer::{Analyzer, AnalyzerOptions};
pub use compare::{compare, ProfileComparison};
pub use dbscan::{DbscanConfig, DbscanError, DbscanResult, NeighborCache};
pub use elbow::elbow_index;
pub use features::FeatureMatrix;
pub use kmeans::{KmeansConfig, KmeansResult};
pub use ols::{step_similarity, OlsConfig};
pub use phases::{Phase, PhaseSet};
pub use report::{characterize, Bottleneck};
pub use streaming::{replay, StreamingAnalyzer, StreamingConfig, StreamingReplay, STREAM_CADENCE};
