//! Human-readable characterization reports.
//!
//! Condenses what TPUPoint-Analyzer found — phases, coverage, dominant
//! operators, utilization — into the kind of assessment the paper's
//! Section VI derives, including whether the workload exhibits the common
//! data-preparation/data-exchange bottleneck (Observations 3–4).

use crate::analyzer::Analyzer;
use crate::phases::TopOps;
use std::fmt::Write as _;
use tpupoint_profiler::Profile;

/// The operators whose dominance marks a data-movement bottleneck.
const EXCHANGE_OPS: [&str; 6] = [
    "Reshape",
    "InfeedDequeueTuple",
    "OutfeedEnqueueTuple",
    "TransferBufferToInfeedLocked",
    "OutfeedDequeueTuple",
    "InfeedEnqueueTuple",
];

/// Bottleneck classification of a profiled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// TPU idle time is high and data-exchange operators dominate: the
    /// paper's headline case (Observations 3–4).
    DataPreparation,
    /// The TPU is busy and matrix work dominates.
    Compute,
    /// No dominant signal (short or unusual runs).
    Indeterminate,
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Bottleneck::DataPreparation => "data preparation / data exchange",
            Bottleneck::Compute => "on-device compute",
            Bottleneck::Indeterminate => "indeterminate",
        };
        write!(f, "{s}")
    }
}

/// Classifies the bottleneck from idle time and the dominant phase's
/// operator mix.
pub fn classify_bottleneck(profile: &Profile, top: &TopOps) -> Bottleneck {
    let idle = profile.steady_tpu_idle_fraction();
    let exchange_hits = top
        .host
        .iter()
        .chain(&top.tpu)
        .filter(|(name, _, _)| EXCHANGE_OPS.contains(&name.as_str()))
        .count();
    if idle > 0.30 || exchange_hits >= 3 {
        Bottleneck::DataPreparation
    } else if idle < 0.20 && profile.steady_mxu_utilization() > 0.25 {
        Bottleneck::Compute
    } else if exchange_hits >= 2 {
        Bottleneck::DataPreparation
    } else {
        Bottleneck::Indeterminate
    }
}

/// Builds the full text report for a profile.
pub fn characterize(profile: &Profile) -> String {
    let analyzer = Analyzer::new(profile);
    let phases = analyzer.ols_phases(0.7);
    let checkpoints = analyzer.checkpoints_for(&phases);
    let mut out = String::new();

    let _ = writeln!(
        out,
        "TPUPoint characterization — {} on {}",
        profile.model, profile.dataset
    );
    let _ = writeln!(
        out,
        "  profile: {} step records, {} windows{}",
        profile.steps.len(),
        profile.windows.len(),
        if profile.dropped_windows > 0 {
            format!(
                " ({} responses lost, {:.1}% of events)",
                profile.dropped_windows,
                profile.loss_fraction() * 100.0
            )
        } else {
            String::new()
        }
    );
    if profile.store_errors > 0 {
        let _ = writeln!(
            out,
            "  RECORDING DEGRADED: {} store error(s){}",
            profile.store_errors,
            profile
                .store_error
                .as_deref()
                .map(|e| format!("; first: {e}"))
                .unwrap_or_default()
        );
    }
    let _ = writeln!(
        out,
        "  TPU idle {:.1}%, MXU (FLOP) utilization {:.1}%",
        profile.steady_tpu_idle_fraction() * 100.0,
        profile.steady_mxu_utilization() * 100.0
    );

    let _ = writeln!(
        out,
        "\nphases (OLS @ 70%): {} total; top 3 cover {:.1}% of execution",
        phases.len(),
        phases.coverage_top(3) * 100.0
    );
    for phase in phases.by_time_desc().into_iter().take(3) {
        let share =
            phase.total_time.as_micros() as f64 / phases.total_time.as_micros().max(1) as f64;
        let ckpt = checkpoints[phase.id]
            .map(|c| format!("nearest checkpoint @ step {}", c.checkpoint_step))
            .unwrap_or_else(|| "no checkpoint".to_owned());
        let _ = writeln!(
            out,
            "  phase {:>3}: steps {:>6}..{:<6} {:>5.1}% of time; {}",
            phase.id,
            phase.steps.first().copied().unwrap_or(0),
            phase.steps.last().copied().unwrap_or(0),
            share * 100.0,
            ckpt
        );
    }

    let verdict = if let Some(top) = analyzer.top_operators_of_longest(&phases, 5) {
        let _ = writeln!(out, "\ndominant phase operators:");
        for (name, dur, count) in &top.tpu {
            let _ = writeln!(out, "  tpu  {name:28} {count:>7} calls  {dur}");
        }
        for (name, dur, count) in &top.host {
            let _ = writeln!(out, "  host {name:28} {count:>7} calls  {dur}");
        }
        classify_bottleneck(profile, &top)
    } else {
        Bottleneck::Indeterminate
    };
    let _ = writeln!(out, "\nassessment: bottleneck is {verdict}");
    if verdict == Bottleneck::DataPreparation {
        let _ = writeln!(
            out,
            "  (the paper's Observation 4: improving host-side data \
             preparation/exchange is the key to better TPU utilization)"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_profiler::{ProfilerOptions, ProfilerSink};
    use tpupoint_runtime::{JobConfig, TrainingJob};

    fn demo_profile(host_us: f64) -> Profile {
        let mut cfg = JobConfig::demo();
        cfg.dataset.host_us_per_batch = host_us;
        cfg.train_steps = 30;
        let job = TrainingJob::new(cfg);
        let mut sink = ProfilerSink::new(job.catalog().clone(), ProfilerOptions::default());
        sink.set_source(&job.config().model, &job.config().dataset.name);
        job.run(&mut sink);
        sink.finish()
    }

    #[test]
    fn report_contains_all_sections() {
        let profile = demo_profile(0.0);
        let report = characterize(&profile);
        assert!(report.contains("TPUPoint characterization — demo-mlp"));
        assert!(report.contains("phases (OLS @ 70%)"));
        assert!(report.contains("dominant phase operators:"));
        assert!(report.contains("assessment: bottleneck is"));
    }

    #[test]
    fn host_bound_run_is_classified_as_data_preparation() {
        // A large per-batch host cost starves the TPU.
        let profile = demo_profile(400_000.0);
        assert!(profile.steady_tpu_idle_fraction() > 0.3);
        let report = characterize(&profile);
        assert!(
            report.contains("data preparation / data exchange"),
            "{report}"
        );
        assert!(report.contains("Observation 4"));
    }

    #[test]
    fn classification_is_stable_for_empty_tops() {
        let profile = demo_profile(0.0);
        let empty = TopOps {
            host: vec![],
            tpu: vec![],
        };
        // Low idle + empty ops should not panic and should not claim a
        // data bottleneck from operators alone.
        let b = classify_bottleneck(&profile, &empty);
        assert!(matches!(
            b,
            Bottleneck::Compute | Bottleneck::Indeterminate | Bottleneck::DataPreparation
        ));
    }

    #[test]
    fn bottleneck_display_names() {
        assert_eq!(
            Bottleneck::DataPreparation.to_string(),
            "data preparation / data exchange"
        );
        assert_eq!(Bottleneck::Compute.to_string(), "on-device compute");
    }
}
