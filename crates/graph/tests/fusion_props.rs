//! Property tests: the fusion pass preserves graph semantics on randomly
//! generated op chains.

use proptest::prelude::*;
use tpupoint_graph::{fusion, DType, Graph, GraphBuilder, NodeId, OpKind, Shape};

/// A step in a randomly generated op chain.
#[derive(Debug, Clone, Copy)]
enum ChainOp {
    MatmulSquare,
    Relu,
    Tanh,
    BiasAdd,
    Reshape,
    Transpose,
    BatchNorm,
    AddResidual,
}

fn chain_op_strategy() -> impl Strategy<Value = ChainOp> {
    prop_oneof![
        Just(ChainOp::MatmulSquare),
        Just(ChainOp::Relu),
        Just(ChainOp::Tanh),
        Just(ChainOp::BiasAdd),
        Just(ChainOp::Reshape),
        Just(ChainOp::Transpose),
        Just(ChainOp::BatchNorm),
        Just(ChainOp::AddResidual),
    ]
}

/// Builds a graph by applying the chain to a `[16, 32]` input.
fn build_chain(ops: &[ChainOp]) -> Graph {
    let mut b = GraphBuilder::new("prop");
    let x = b.input("x", DType::BF16, Shape::of(&[16, 32]));
    let w = b.parameter("w", DType::BF16, Shape::of(&[32, 32]));
    let mut cur: NodeId = x;
    let mut residual: NodeId = x;
    let mut square = true; // shape is [16, 32] whenever true
    for op in ops {
        match op {
            ChainOp::MatmulSquare => {
                if !square {
                    cur = b.reshape(cur, Shape::of(&[16, 32]));
                    square = true;
                }
                cur = b.matmul(cur, w);
                residual = cur;
            }
            ChainOp::Relu => cur = b.relu(cur),
            ChainOp::Tanh => cur = b.unary(OpKind::Tanh, cur),
            ChainOp::BiasAdd => cur = b.unary(OpKind::BiasAdd, cur),
            ChainOp::Reshape => {
                cur = b.reshape(cur, Shape::of(&[32, 16]));
                square = false;
            }
            ChainOp::Transpose => {
                cur = b.transpose(cur, &[1, 0]);
                square = !square;
            }
            ChainOp::BatchNorm => cur = b.layer_norm(cur),
            ChainOp::AddResidual => {
                // Only valid when shapes still agree.
                let same_shape = square && residual == cur;
                if same_shape {
                    cur = b.relu(cur);
                } else {
                    cur = b.binary(OpKind::Add, cur, cur);
                }
            }
        }
    }
    b.finish(&[cur])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fusion_conserves_flops(ops in proptest::collection::vec(chain_op_strategy(), 1..24)) {
        let graph = build_chain(&ops);
        let fused = fusion::fuse(&graph);
        let diff = (graph.total_flops() - fused.total_flops()).abs();
        prop_assert!(diff < 1e-6, "flops changed: {} vs {}", graph.total_flops(), fused.total_flops());
    }

    #[test]
    fn fusion_never_adds_nodes_or_hbm_traffic(
        ops in proptest::collection::vec(chain_op_strategy(), 1..24)
    ) {
        let graph = build_chain(&ops);
        let fused = fusion::fuse(&graph);
        prop_assert!(fused.node_count() <= graph.node_count());
        prop_assert!(fused.total_hbm_bytes() <= graph.total_hbm_bytes() + 1e-6);
    }

    #[test]
    fn fused_graph_is_topologically_ordered_with_valid_inputs(
        ops in proptest::collection::vec(chain_op_strategy(), 1..24)
    ) {
        let graph = build_chain(&ops);
        let fused = fusion::fuse(&graph);
        for node in fused.nodes() {
            for input in &node.inputs {
                prop_assert!(input.index() < node.id.index());
            }
        }
        for &out in fused.outputs() {
            prop_assert!(out.index() < fused.node_count());
        }
    }

    #[test]
    fn output_tensor_is_preserved(ops in proptest::collection::vec(chain_op_strategy(), 1..24)) {
        let graph = build_chain(&ops);
        let fused = fusion::fuse(&graph);
        let orig_out = &graph.node(graph.outputs()[0]).output;
        let fused_out = &fused.node(fused.outputs()[0]).output;
        prop_assert_eq!(orig_out, fused_out);
    }

    #[test]
    fn layout_ops_survive_fusion(ops in proptest::collection::vec(chain_op_strategy(), 1..24)) {
        let graph = build_chain(&ops);
        let fused = fusion::fuse(&graph);
        let count = |g: &Graph, k: OpKind| g.nodes().iter().filter(|n| n.kind == k).count();
        prop_assert_eq!(count(&graph, OpKind::Reshape), count(&fused, OpKind::Reshape));
        prop_assert_eq!(count(&graph, OpKind::Transpose), count(&fused, OpKind::Transpose));
    }

    #[test]
    fn fusion_is_idempotent(ops in proptest::collection::vec(chain_op_strategy(), 1..16)) {
        let graph = build_chain(&ops);
        let once = fusion::fuse(&graph);
        let twice = fusion::fuse(&once);
        prop_assert_eq!(once.node_count(), twice.node_count());
        let diff = (once.total_hbm_bytes() - twice.total_hbm_bytes()).abs();
        prop_assert!(diff < 1e-6);
    }
}
