//! XLA-style operator fusion.
//!
//! The paper (Section VI-B) observes that the `fusion` operator — XLA's
//! merging of compute-intensive operations into single kernels to "help
//! reduce memory operations" — is the most time-consuming TPU operator
//! across all workloads. This pass reproduces that effect: element-wise
//! operations are absorbed into the kernel of their producer (an MXU op or
//! another element-wise op), eliminating the HBM round-trips of the fused
//! intermediates. Layout ops (`Reshape`, `Transpose`) deliberately stay
//! unfused; on real TPUs they realign tiling and appear as their own
//! entries in profiles, which is why `Reshape` shows up as a headline cost
//! in Table II.

use crate::graph::{Graph, Node, NodeId, OpKind};

/// Result statistics of a fusion pass, useful for tests and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionStats {
    /// Nodes in the input graph.
    pub nodes_before: usize,
    /// Nodes in the fused graph.
    pub nodes_after: usize,
    /// Number of multi-op fusion kernels produced.
    pub fusion_kernels: usize,
}

/// Applies the fusion pass, returning a new graph.
///
/// Fusion groups are built greedily over the topological order: an
/// element-wise node whose first data input (a) belongs to an open group and
/// (b) has no other consumer joins that group. Groups are rooted at MXU ops
/// or element-wise ops. Multi-node groups become a single [`OpKind::Fusion`]
/// node whose FLOPs are the members' sum and whose HBM traffic counts only
/// the group's external inputs and final output — the fused intermediates
/// stay in registers/CMEM.
pub fn fuse(graph: &Graph) -> Graph {
    fuse_with_stats(graph).0
}

/// Like [`fuse`], also returning [`FusionStats`].
pub fn fuse_with_stats(graph: &Graph) -> (Graph, FusionStats) {
    let n = graph.node_count();
    // Count consumers of every node.
    let mut consumers = vec![0u32; n];
    for node in graph.nodes() {
        for &input in &node.inputs {
            consumers[input.index()] += 1;
        }
    }
    // Outputs are externally consumed: they must terminate their group's
    // visible tensor, so treat them as having an extra consumer.
    for &out in graph.outputs() {
        consumers[out.index()] += 1;
    }

    // Assign each node to a group; group id = id of the group's root node.
    let mut group_of: Vec<usize> = (0..n).collect();
    for node in graph.nodes() {
        if !node.kind.is_elementwise() {
            continue;
        }
        // Find the data input that could host this op: the largest input
        // (parameters/biases ride along for free in XLA fusions).
        let Some(&host) = node
            .inputs
            .iter()
            .max_by_key(|i| graph.node(**i).output.size_bytes())
        else {
            continue;
        };
        let host_node = graph.node(host);
        let host_fusible = host_node.kind.uses_mxu() || host_node.kind.is_elementwise();
        if host_fusible && consumers[host.index()] == 1 {
            group_of[node.id.index()] = group_of[host.index()];
        }
    }

    // Materialize groups in topological order of their roots.
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for node in graph.nodes() {
        members[group_of[node.id.index()]].push(node.id);
    }

    let mut new_nodes: Vec<Node> = Vec::new();
    let mut new_id_of: Vec<Option<NodeId>> = vec![None; n];
    let mut fusion_kernels = 0;
    for root in 0..n {
        let group = &members[root];
        if group.is_empty() {
            continue; // node was absorbed elsewhere
        }
        let new_id = NodeId(new_nodes.len() as u32);
        if group.len() == 1 {
            let old = graph.node(group[0]);
            let inputs = old
                .inputs
                .iter()
                .map(|i| {
                    new_id_of[group_of[i.index()]].expect("topological order guarantees mapping")
                })
                .collect();
            new_nodes.push(Node {
                id: new_id,
                inputs,
                ..old.clone()
            });
        } else {
            fusion_kernels += 1;
            let in_group = |id: NodeId| group_of[id.index()] == root;
            // External inputs: produced outside the group, deduplicated.
            let mut ext_inputs: Vec<NodeId> = Vec::new();
            let mut flops = 0.0;
            let mut uses_mxu = false;
            let mut ext_bytes = 0.0;
            for &m in group {
                let node = graph.node(m);
                flops += node.flops;
                uses_mxu |= node.uses_mxu;
                for &i in &node.inputs {
                    if !in_group(i) {
                        let mapped =
                            new_id_of[group_of[i.index()]].expect("inputs precede the group");
                        if !ext_inputs.contains(&mapped) {
                            ext_inputs.push(mapped);
                            ext_bytes += graph.node(i).output.size_bytes() as f64;
                        }
                    }
                }
            }
            let last = graph.node(*group.last().expect("group is non-empty"));
            let hbm_bytes = ext_bytes + last.output.size_bytes() as f64;
            new_nodes.push(Node {
                id: new_id,
                kind: OpKind::Fusion,
                label: format!("fusion.{fusion_kernels}"),
                inputs: ext_inputs,
                output: last.output.clone(),
                flops,
                hbm_bytes,
                uses_mxu,
            });
        }
        new_id_of[root] = Some(new_id);
    }

    let outputs: Vec<NodeId> = graph
        .outputs()
        .iter()
        .map(|o| new_id_of[group_of[o.index()]].expect("outputs were materialized"))
        .collect();

    let stats = FusionStats {
        nodes_before: n,
        nodes_after: new_nodes.len(),
        fusion_kernels,
    };
    (
        Graph::from_parts(format!("{}.fused", graph.name()), new_nodes, outputs),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DType, GraphBuilder, Shape};

    fn mlp_graph() -> Graph {
        let mut b = GraphBuilder::new("mlp");
        let x = b.input("x", DType::BF16, Shape::of(&[32, 128]));
        let w = b.parameter("w", DType::BF16, Shape::of(&[128, 256]));
        let bias = b.parameter("b", DType::BF16, Shape::of(&[256]));
        let h = b.matmul(x, w);
        let hb = b.binary(OpKind::Add, h, bias);
        let a = b.relu(hb);
        b.finish(&[a])
    }

    #[test]
    fn elementwise_chain_fuses_into_matmul_root() {
        let g = mlp_graph();
        let (fused, stats) = fuse_with_stats(&g);
        // input, w, b, fusion(matmul+add+relu)
        assert_eq!(stats.nodes_before, 6);
        assert_eq!(stats.nodes_after, 4);
        assert_eq!(stats.fusion_kernels, 1);
        let fusion = fused
            .nodes()
            .iter()
            .find(|n| n.kind == OpKind::Fusion)
            .expect("a fusion kernel should exist");
        assert!(fusion.uses_mxu, "fusion absorbed a MatMul");
        assert_eq!(fusion.flops, g.total_flops());
    }

    #[test]
    fn fusion_reduces_hbm_traffic() {
        let g = mlp_graph();
        let fused = fuse(&g);
        assert!(
            fused.total_hbm_bytes() < g.total_hbm_bytes(),
            "fusion must eliminate intermediate round-trips: {} vs {}",
            fused.total_hbm_bytes(),
            g.total_hbm_bytes()
        );
    }

    #[test]
    fn reshape_is_never_fused() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[32, 128]));
        let w = b.parameter("w", DType::BF16, Shape::of(&[128, 128]));
        let h = b.matmul(x, w);
        let r = b.reshape(h, Shape::of(&[32, 8, 16]));
        let a = b.relu(r);
        let g = b.finish(&[a]);
        let fused = fuse(&g);
        assert!(
            fused.nodes().iter().any(|n| n.kind == OpKind::Reshape),
            "reshape must stay a separate profile entry"
        );
    }

    #[test]
    fn multi_consumer_values_block_fusion() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[16, 16]));
        let w = b.parameter("w", DType::BF16, Shape::of(&[16, 16]));
        let h = b.matmul(x, w);
        // `h` feeds two ops: neither may absorb it.
        let r1 = b.relu(h);
        let r2 = b.unary(OpKind::Tanh, h);
        let g = b.finish(&[r1, r2]);
        let fused = fuse(&g);
        assert!(
            fused.nodes().iter().any(|n| n.kind == OpKind::MatMul),
            "multi-consumer matmul must remain visible"
        );
    }

    #[test]
    fn graph_outputs_survive_fusion() {
        let g = mlp_graph();
        let fused = fuse(&g);
        assert_eq!(fused.outputs().len(), 1);
        let out = fused.node(fused.outputs()[0]);
        assert_eq!(out.output, g.node(g.outputs()[0]).output);
    }

    #[test]
    fn fused_graph_is_topologically_ordered() {
        let g = mlp_graph();
        let fused = fuse(&g);
        for node in fused.nodes() {
            for input in &node.inputs {
                assert!(input.index() < node.id.index());
            }
        }
    }

    #[test]
    fn flops_are_conserved() {
        let g = mlp_graph();
        let fused = fuse(&g);
        let diff = (fused.total_flops() - g.total_flops()).abs();
        assert!(diff < 1e-6, "fusion must not change arithmetic");
    }

    #[test]
    fn graph_without_elementwise_ops_is_unchanged() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[8, 8]));
        let w = b.parameter("w", DType::BF16, Shape::of(&[8, 8]));
        let h = b.matmul(x, w);
        let g = b.finish(&[h]);
        let (fused, stats) = fuse_with_stats(&g);
        assert_eq!(stats.nodes_before, stats.nodes_after);
        assert_eq!(stats.fusion_kernels, 0);
        assert_eq!(fused.node_count(), g.node_count());
    }
}
