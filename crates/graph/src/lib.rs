//! # tpupoint-graph
//!
//! A TensorFlow-like computation-graph substrate for the TPUPoint
//! reproduction. Cloud TPUs are programmed exclusively through TensorFlow
//! (Section II-B of the paper); TPUPoint observes the op-level events that
//! the TensorFlow/XLA stack executes and adjusts the input-pipeline
//! parameters that the user's `tf.data` code defines. This crate provides
//! both surfaces:
//!
//! * [`graph`] — typed tensors ([`DType`], [`Shape`], [`TensorSpec`]), an op
//!   vocabulary matching the names that appear in real TPU profiles
//!   ([`OpKind`]), and a validated graph builder ([`Graph`], [`GraphBuilder`]),
//! * [`fusion`] — an XLA-style fusion pass that merges element-wise
//!   neighborhoods (optionally around an MXU root) into `fusion` ops,
//!   reducing HBM round-trips exactly the way the paper describes the XLA
//!   `fusion` operator,
//! * [`pipeline`] — the host input-pipeline specification whose knobs
//!   (parallel decode calls, prefetch depth, read-ahead, …) are the
//!   *adjustable parameters* that TPUPoint-Optimizer tunes.
//!
//! ```
//! use tpupoint_graph::{GraphBuilder, DType, Shape};
//!
//! let mut b = GraphBuilder::new("mlp");
//! let x = b.input("x", DType::BF16, Shape::of(&[32, 128]));
//! let w = b.parameter("w", DType::BF16, Shape::of(&[128, 256]));
//! let h = b.matmul(x, w);
//! let a = b.relu(h);
//! let graph = b.finish(&[a]);
//! assert_eq!(graph.node_count(), 4);
//! let fused = tpupoint_graph::fusion::fuse(&graph);
//! assert!(fused.node_count() <= graph.node_count());
//! ```

pub mod fusion;
pub mod graph;
pub mod pipeline;

pub use graph::{DType, Graph, GraphBuilder, NodeId, OpKind, Shape, TensorSpec};
pub use pipeline::{AdjustError, AdjustableParam, PipelineSpec};
