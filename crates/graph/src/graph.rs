//! Tensors, the op vocabulary, and the validated graph builder.
//!
//! Op names deliberately match the identifiers that show up in real Cloud
//! TPU profiles (Table II of the paper): `MatMul`, `Reshape`, `fusion`,
//! `all-reduce`, `FusedBatchNormV3`, and so on, because TPUPoint-Analyzer's
//! phase similarity (Eq. 1) and top-operator rankings are computed over
//! exactly these names.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float (host-side and loss math).
    F32,
    /// 16-bit brain float (the MXU's native input type).
    BF16,
    /// 32-bit signed integer (token ids, labels).
    I32,
    /// Unsigned byte (raw image data).
    U8,
    /// Boolean masks.
    Bool,
}

impl DType {
    /// Bytes per element.
    pub const fn size_bytes(self) -> u64 {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::BF16 => 2,
            DType::U8 | DType::Bool => 1,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::BF16 => "bf16",
            DType::I32 => "i32",
            DType::U8 => "u8",
            DType::Bool => "bool",
        };
        write!(f, "{s}")
    }
}

/// A dense tensor shape.
///
/// ```
/// use tpupoint_graph::Shape;
/// let s = Shape::of(&[32, 128, 128, 3]);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.num_elements(), 32 * 128 * 128 * 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<u64>);

impl Shape {
    /// Builds a shape from its dimensions. A rank-0 (scalar) shape is valid.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; zero-sized tensors never occur in
    /// the modeled workloads and almost always indicate a builder bug.
    pub fn of(dims: &[u64]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be positive, got {dims:?}"
        );
        Shape(dims.to_vec())
    }

    /// The scalar shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The dimensions.
    pub fn dims(&self) -> &[u64] {
        &self.0
    }

    /// Total element count (1 for scalars).
    pub fn num_elements(&self) -> u64 {
        self.0.iter().product()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Element type plus shape: everything the cost model needs about a tensor.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorSpec {
    /// Element type.
    pub dtype: DType,
    /// Dense shape.
    pub shape: Shape,
}

impl TensorSpec {
    /// Builds a spec.
    pub fn new(dtype: DType, shape: Shape) -> Self {
        TensorSpec { dtype, shape }
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.shape.num_elements() * self.dtype.size_bytes()
    }
}

/// The operation vocabulary.
///
/// Grouped by execution resource: MXU ops drive the matrix units, memory
/// ops only move data through HBM, vector ops run on the scalar/vector
/// units. [`OpKind::Fusion`] is produced by the fusion pass, never by the
/// builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpKind {
    // Graph boundary.
    /// Placeholder fed from the infeed.
    Input,
    /// Trainable variable resident in HBM.
    Parameter,
    /// Dequeues the next batch from the hardware infeed.
    InfeedDequeueTuple,
    /// Enqueues step results (loss, summaries) to the outfeed.
    OutfeedEnqueueTuple,
    // MXU ops.
    /// Dense matrix multiplication.
    MatMul,
    /// 2-D convolution (forward).
    Conv2D,
    /// Convolution filter gradient.
    Conv2DBackpropFilter,
    /// Convolution input gradient.
    Conv2DBackpropInput,
    // Memory-only ops.
    /// Re-layout without arithmetic; one of the paper's headline
    /// time-consumers.
    Reshape,
    /// Dimension permutation.
    Transpose,
    /// HBM-to-HBM copy.
    Copy,
    // Element-wise / vector ops.
    /// Rectified linear unit.
    Relu,
    /// ReLU gradient.
    ReluGrad,
    /// Element-wise multiply.
    Mul,
    /// Element-wise add.
    Add,
    /// Element-wise subtract.
    Sub,
    /// Element-wise maximum.
    Maximum,
    /// Element-wise minimum.
    Minimum,
    /// Dtype conversion.
    Cast,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Row-wise softmax.
    Softmax,
    /// Bias addition.
    BiasAdd,
    /// Bias gradient (column reduction).
    BiasAddGrad,
    // Normalization / loss / reductions.
    /// Fused batch normalization (forward).
    FusedBatchNormV3,
    /// Fused batch normalization (gradient).
    FusedBatchNormGradV3,
    /// Sum-of-squares regularization loss.
    L2Loss,
    /// Reduction sum.
    Sum,
    /// Reduction mean.
    Mean,
    /// Softmax cross-entropy loss with its gradient.
    SoftmaxCrossEntropy,
    // Collective.
    /// Cross-replica gradient reduction; profiles call it `all-reduce`.
    CrossReplicaSum,
    // Lookup / attention helpers.
    /// Embedding-table gather.
    GatherV2,
    /// Layer normalization.
    LayerNorm,
    // Weight update.
    /// Fused Adam update.
    ResourceApplyAdam,
    // Produced by the fusion pass.
    /// XLA fusion: several ops executed as one kernel.
    Fusion,
}

impl OpKind {
    /// The name this op carries in profiles. Matches Table II's spelling.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Input => "Input",
            OpKind::Parameter => "Parameter",
            OpKind::InfeedDequeueTuple => "InfeedDequeueTuple",
            OpKind::OutfeedEnqueueTuple => "OutfeedEnqueueTuple",
            OpKind::MatMul => "MatMul",
            OpKind::Conv2D => "Conv2D",
            OpKind::Conv2DBackpropFilter => "Conv2DBackpropFilter",
            OpKind::Conv2DBackpropInput => "Conv2DBackpropInput",
            OpKind::Reshape => "Reshape",
            OpKind::Transpose => "Transpose",
            OpKind::Copy => "Copy",
            OpKind::Relu => "Relu",
            OpKind::ReluGrad => "ReluGrad",
            OpKind::Mul => "Mul",
            OpKind::Add => "Add",
            OpKind::Sub => "Sub",
            OpKind::Maximum => "Maximum",
            OpKind::Minimum => "Minimum",
            OpKind::Cast => "Cast",
            OpKind::Tanh => "Tanh",
            OpKind::Sigmoid => "Sigmoid",
            OpKind::Softmax => "Softmax",
            OpKind::BiasAdd => "BiasAdd",
            OpKind::BiasAddGrad => "BiasAddGrad",
            OpKind::FusedBatchNormV3 => "FusedBatchNormV3",
            OpKind::FusedBatchNormGradV3 => "FusedBatchNormGradV3",
            OpKind::L2Loss => "L2Loss",
            OpKind::Sum => "Sum",
            OpKind::Mean => "Mean",
            OpKind::SoftmaxCrossEntropy => "SoftmaxCrossEntropy",
            OpKind::CrossReplicaSum => "all-reduce",
            OpKind::GatherV2 => "GatherV2",
            OpKind::LayerNorm => "LayerNorm",
            OpKind::ResourceApplyAdam => "ResourceApplyAdam",
            OpKind::Fusion => "fusion",
        }
    }

    /// True if the op's compute runs on the matrix units.
    pub fn uses_mxu(self) -> bool {
        matches!(
            self,
            OpKind::MatMul
                | OpKind::Conv2D
                | OpKind::Conv2DBackpropFilter
                | OpKind::Conv2DBackpropInput
        )
    }

    /// True if the op is element-wise and therefore fusible into its
    /// neighbors by XLA.
    pub fn is_elementwise(self) -> bool {
        matches!(
            self,
            OpKind::Relu
                | OpKind::ReluGrad
                | OpKind::Mul
                | OpKind::Add
                | OpKind::Sub
                | OpKind::Maximum
                | OpKind::Minimum
                | OpKind::Cast
                | OpKind::Tanh
                | OpKind::Sigmoid
                | OpKind::BiasAdd
        )
    }

    /// True for ops that only move data (no arithmetic).
    pub fn is_memory_only(self) -> bool {
        matches!(self, OpKind::Reshape | OpKind::Transpose | OpKind::Copy)
    }

    /// True for graph-boundary pseudo-ops that the executor, not the graph,
    /// accounts for.
    pub fn is_boundary(self) -> bool {
        matches!(
            self,
            OpKind::Input
                | OpKind::Parameter
                | OpKind::InfeedDequeueTuple
                | OpKind::OutfeedEnqueueTuple
        )
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Identifier of a node within one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index into the graph's node list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One operation instance in a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Operation kind.
    pub kind: OpKind,
    /// Human-readable label (layer name); the *profile* name comes from
    /// `kind.name()`.
    pub label: String,
    /// Producer nodes.
    pub inputs: Vec<NodeId>,
    /// Output tensor.
    pub output: TensorSpec,
    /// Floating-point operations this instance executes.
    pub flops: f64,
    /// HBM bytes read plus written.
    pub hbm_bytes: f64,
    /// True if this instance's compute runs on the matrix units. Equals
    /// `kind.uses_mxu()` for builder-made nodes; fusion nodes set it when
    /// any fused member used the MXUs.
    pub uses_mxu: bool,
}

/// An immutable, topologically-ordered computation graph.
///
/// Node ids are assigned in construction order and every node's inputs have
/// smaller ids, so iterating `nodes()` is already a topological schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
    outputs: Vec<NodeId>,
}

impl Graph {
    /// The graph's name (model name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes in topological (construction) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The designated output nodes.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Total FLOPs of one execution.
    pub fn total_flops(&self) -> f64 {
        self.nodes.iter().map(|n| n.flops).sum()
    }

    /// Total HBM traffic of one execution, bytes.
    pub fn total_hbm_bytes(&self) -> f64 {
        self.nodes.iter().map(|n| n.hbm_bytes).sum()
    }

    pub(crate) fn from_parts(name: String, nodes: Vec<Node>, outputs: Vec<NodeId>) -> Self {
        Graph {
            name,
            nodes,
            outputs,
        }
    }
}

/// Incrementally builds a [`Graph`], computing per-op work as it goes.
///
/// All methods panic on misuse (foreign node ids, incompatible shapes);
/// graph construction happens at workload-definition time where a panic is
/// the appropriate response to a programming error.
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// Starts a new graph.
    pub fn new(name: &str) -> Self {
        GraphBuilder {
            name: name.to_owned(),
            nodes: Vec::new(),
        }
    }

    fn push(
        &mut self,
        kind: OpKind,
        label: impl Into<String>,
        inputs: Vec<NodeId>,
        output: TensorSpec,
        flops: f64,
        hbm_bytes: f64,
    ) -> NodeId {
        for &i in &inputs {
            assert!(
                (i.index()) < self.nodes.len(),
                "input {i:?} does not exist in graph `{}`",
                self.name
            );
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            kind,
            label: label.into(),
            inputs,
            output,
            flops,
            hbm_bytes,
            uses_mxu: kind.uses_mxu(),
        });
        id
    }

    fn spec(&self, id: NodeId) -> &TensorSpec {
        &self.nodes[id.index()].output
    }

    /// An externally-fed input (arrives via infeed).
    pub fn input(&mut self, label: &str, dtype: DType, shape: Shape) -> NodeId {
        let spec = TensorSpec::new(dtype, shape);
        self.push(OpKind::Input, label, vec![], spec, 0.0, 0.0)
    }

    /// A trainable parameter resident in HBM.
    pub fn parameter(&mut self, label: &str, dtype: DType, shape: Shape) -> NodeId {
        let spec = TensorSpec::new(dtype, shape);
        self.push(OpKind::Parameter, label, vec![], spec, 0.0, 0.0)
    }

    /// Dense matmul of `a` (`[..., m, k]`) by `b` (`[k, n]` or
    /// `[..., k, n]`).
    ///
    /// # Panics
    ///
    /// Panics if the contraction dimensions disagree.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let sa = self.spec(a).clone();
        let sb = self.spec(b).clone();
        let da = sa.shape.dims();
        let db = sb.shape.dims();
        assert!(
            da.len() >= 2 && db.len() >= 2,
            "matmul operands must be at least rank 2, got {sa:?} x {sb:?}"
        );
        let (m, k) = (da[da.len() - 2], da[da.len() - 1]);
        let (k2, n) = (db[db.len() - 2], db[db.len() - 1]);
        assert_eq!(k, k2, "matmul contraction mismatch: {k} vs {k2}");
        let batch: u64 = da[..da.len() - 2].iter().product();
        let mut out_dims: Vec<u64> = da[..da.len() - 2].to_vec();
        out_dims.push(m);
        out_dims.push(n);
        let out = TensorSpec::new(sa.dtype, Shape::of(&out_dims));
        let flops = 2.0 * batch as f64 * m as f64 * k as f64 * n as f64;
        let bytes = (sa.size_bytes() + sb.size_bytes() + out.size_bytes()) as f64;
        self.push(OpKind::MatMul, "matmul", vec![a, b], out, flops, bytes)
    }

    fn conv_output(
        &self,
        x: NodeId,
        filter_hw: (u64, u64),
        out_channels: u64,
        stride: u64,
    ) -> (TensorSpec, f64) {
        let sx = self.spec(x).clone();
        let d = sx.shape.dims();
        assert_eq!(d.len(), 4, "conv input must be NHWC, got {sx:?}");
        assert!(stride > 0, "conv stride must be positive");
        let (b, h, w, c) = (d[0], d[1], d[2], d[3]);
        let oh = h.div_ceil(stride);
        let ow = w.div_ceil(stride);
        let out = TensorSpec::new(sx.dtype, Shape::of(&[b, oh, ow, out_channels]));
        let flops = 2.0
            * b as f64
            * oh as f64
            * ow as f64
            * filter_hw.0 as f64
            * filter_hw.1 as f64
            * c as f64
            * out_channels as f64;
        (out, flops)
    }

    /// SAME-padded 2-D convolution over an NHWC input.
    pub fn conv2d(
        &mut self,
        x: NodeId,
        filter_hw: (u64, u64),
        out_channels: u64,
        stride: u64,
    ) -> NodeId {
        let (out, flops) = self.conv_output(x, filter_hw, out_channels, stride);
        let in_c = self.spec(x).shape.dims()[3];
        let filter_bytes =
            filter_hw.0 * filter_hw.1 * in_c * out_channels * self.spec(x).dtype.size_bytes();
        let bytes = (self.spec(x).size_bytes() + filter_bytes + out.size_bytes()) as f64;
        self.push(OpKind::Conv2D, "conv2d", vec![x], out, flops, bytes)
    }

    /// Filter gradient of a convolution; same arithmetic cost as forward.
    pub fn conv2d_backprop_filter(
        &mut self,
        x: NodeId,
        filter_hw: (u64, u64),
        out_channels: u64,
        stride: u64,
    ) -> NodeId {
        let (fwd_out, flops) = self.conv_output(x, filter_hw, out_channels, stride);
        let in_c = self.spec(x).shape.dims()[3];
        let out = TensorSpec::new(
            self.spec(x).dtype,
            Shape::of(&[filter_hw.0, filter_hw.1, in_c, out_channels]),
        );
        let bytes = (self.spec(x).size_bytes() + fwd_out.size_bytes() + out.size_bytes()) as f64;
        self.push(
            OpKind::Conv2DBackpropFilter,
            "conv2d_grad_filter",
            vec![x],
            out,
            flops,
            bytes,
        )
    }

    /// Input gradient of a convolution; same arithmetic cost as forward.
    pub fn conv2d_backprop_input(
        &mut self,
        x: NodeId,
        filter_hw: (u64, u64),
        out_channels: u64,
        stride: u64,
    ) -> NodeId {
        let (fwd_out, flops) = self.conv_output(x, filter_hw, out_channels, stride);
        let out = self.spec(x).clone();
        let bytes = (fwd_out.size_bytes() + 2 * out.size_bytes()) as f64;
        self.push(
            OpKind::Conv2DBackpropInput,
            "conv2d_grad_input",
            vec![x],
            out,
            flops,
            bytes,
        )
    }

    /// Reinterprets `x` with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&mut self, x: NodeId, shape: Shape) -> NodeId {
        let sx = self.spec(x).clone();
        assert_eq!(
            sx.shape.num_elements(),
            shape.num_elements(),
            "reshape must preserve element count ({} -> {})",
            sx.shape,
            shape
        );
        let out = TensorSpec::new(sx.dtype, shape);
        // Reshape on TPU realigns data for the next op's tiling: it is pure
        // HBM traffic (read + write), which is why the paper finds it so
        // costly despite doing no math.
        let bytes = 2.0 * sx.size_bytes() as f64;
        self.push(OpKind::Reshape, "reshape", vec![x], out, 0.0, bytes)
    }

    /// Permutes dimensions of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of the input's dimensions.
    pub fn transpose(&mut self, x: NodeId, perm: &[usize]) -> NodeId {
        let sx = self.spec(x).clone();
        let d = sx.shape.dims();
        let mut seen = vec![false; d.len()];
        assert_eq!(perm.len(), d.len(), "perm rank mismatch");
        for &p in perm {
            assert!(p < d.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let out_dims: Vec<u64> = perm.iter().map(|&p| d[p]).collect();
        let out = TensorSpec::new(sx.dtype, Shape::of(&out_dims));
        let bytes = 2.0 * sx.size_bytes() as f64;
        self.push(OpKind::Transpose, "transpose", vec![x], out, 0.0, bytes)
    }

    /// Element-wise unary op.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a unary element-wise kind.
    pub fn unary(&mut self, kind: OpKind, x: NodeId) -> NodeId {
        assert!(
            kind.is_elementwise(),
            "unary() requires an element-wise kind, got {kind}"
        );
        let sx = self.spec(x).clone();
        let elems = sx.shape.num_elements() as f64;
        let flops = match kind {
            OpKind::Tanh | OpKind::Sigmoid => 8.0 * elems,
            _ => elems,
        };
        let bytes = 2.0 * sx.size_bytes() as f64;
        let out = sx;
        self.push(kind, kind.name().to_lowercase(), vec![x], out, flops, bytes)
    }

    /// ReLU activation.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        self.unary(OpKind::Relu, x)
    }

    /// Dtype cast.
    pub fn cast(&mut self, x: NodeId, to: DType) -> NodeId {
        let sx = self.spec(x).clone();
        let elems = sx.shape.num_elements() as f64;
        let out = TensorSpec::new(to, sx.shape.clone());
        let bytes = (sx.size_bytes() + out.size_bytes()) as f64;
        self.push(OpKind::Cast, "cast", vec![x], out, elems, bytes)
    }

    /// Element-wise binary op; output takes the larger operand's shape
    /// (broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not element-wise.
    pub fn binary(&mut self, kind: OpKind, a: NodeId, b: NodeId) -> NodeId {
        assert!(
            kind.is_elementwise(),
            "binary() requires an element-wise kind, got {kind}"
        );
        let sa = self.spec(a).clone();
        let sb = self.spec(b).clone();
        let out = if sa.shape.num_elements() >= sb.shape.num_elements() {
            sa.clone()
        } else {
            sb.clone()
        };
        let elems = out.shape.num_elements() as f64;
        let bytes = (sa.size_bytes() + sb.size_bytes() + out.size_bytes()) as f64;
        self.push(
            kind,
            kind.name().to_lowercase(),
            vec![a, b],
            out,
            elems,
            bytes,
        )
    }

    /// Fused batch normalization (forward).
    pub fn batch_norm(&mut self, x: NodeId) -> NodeId {
        let sx = self.spec(x).clone();
        let elems = sx.shape.num_elements() as f64;
        let bytes = 2.0 * sx.size_bytes() as f64;
        let out = sx;
        self.push(
            OpKind::FusedBatchNormV3,
            "batch_norm",
            vec![x],
            out,
            5.0 * elems,
            bytes,
        )
    }

    /// Fused batch normalization (gradient).
    pub fn batch_norm_grad(&mut self, x: NodeId) -> NodeId {
        let sx = self.spec(x).clone();
        let elems = sx.shape.num_elements() as f64;
        let bytes = 3.0 * sx.size_bytes() as f64;
        let out = sx;
        self.push(
            OpKind::FusedBatchNormGradV3,
            "batch_norm_grad",
            vec![x],
            out,
            7.0 * elems,
            bytes,
        )
    }

    /// Layer normalization (used by the transformer workloads).
    pub fn layer_norm(&mut self, x: NodeId) -> NodeId {
        let sx = self.spec(x).clone();
        let elems = sx.shape.num_elements() as f64;
        let bytes = 2.0 * sx.size_bytes() as f64;
        let out = sx;
        self.push(
            OpKind::LayerNorm,
            "layer_norm",
            vec![x],
            out,
            6.0 * elems,
            bytes,
        )
    }

    /// Row-wise softmax over the last dimension.
    pub fn softmax(&mut self, x: NodeId) -> NodeId {
        let sx = self.spec(x).clone();
        let elems = sx.shape.num_elements() as f64;
        let bytes = 2.0 * sx.size_bytes() as f64;
        let out = sx;
        self.push(
            OpKind::Softmax,
            "softmax",
            vec![x],
            out,
            10.0 * elems,
            bytes,
        )
    }

    /// L2 regularization loss (scalar output).
    pub fn l2_loss(&mut self, x: NodeId) -> NodeId {
        let sx = self.spec(x).clone();
        let elems = sx.shape.num_elements() as f64;
        let out = TensorSpec::new(DType::F32, Shape::scalar());
        self.push(
            OpKind::L2Loss,
            "l2_loss",
            vec![x],
            out,
            2.0 * elems,
            sx.size_bytes() as f64,
        )
    }

    /// Full reduction sum (scalar output).
    pub fn reduce_sum(&mut self, x: NodeId) -> NodeId {
        let sx = self.spec(x).clone();
        let elems = sx.shape.num_elements() as f64;
        let out = TensorSpec::new(DType::F32, Shape::scalar());
        self.push(
            OpKind::Sum,
            "sum",
            vec![x],
            out,
            elems,
            sx.size_bytes() as f64,
        )
    }

    /// Full reduction mean (scalar output).
    pub fn reduce_mean(&mut self, x: NodeId) -> NodeId {
        let sx = self.spec(x).clone();
        let elems = sx.shape.num_elements() as f64;
        let out = TensorSpec::new(DType::F32, Shape::scalar());
        self.push(
            OpKind::Mean,
            "mean",
            vec![x],
            out,
            elems,
            sx.size_bytes() as f64,
        )
    }

    /// Bias-gradient column reduction.
    pub fn bias_add_grad(&mut self, x: NodeId) -> NodeId {
        let sx = self.spec(x).clone();
        let d = sx.shape.dims();
        let last = *d.last().expect("bias_add_grad needs rank >= 1");
        let elems = sx.shape.num_elements() as f64;
        let out = TensorSpec::new(sx.dtype, Shape::of(&[last]));
        self.push(
            OpKind::BiasAddGrad,
            "bias_add_grad",
            vec![x],
            out,
            elems,
            sx.size_bytes() as f64,
        )
    }

    /// Softmax cross-entropy loss (per-example logits in, scalar loss out).
    pub fn softmax_cross_entropy(&mut self, logits: NodeId, labels: NodeId) -> NodeId {
        let sl = self.spec(logits).clone();
        let elems = sl.shape.num_elements() as f64;
        let bytes = (sl.size_bytes() + self.spec(labels).size_bytes()) as f64;
        let out = TensorSpec::new(DType::F32, Shape::scalar());
        self.push(
            OpKind::SoftmaxCrossEntropy,
            "xent",
            vec![logits, labels],
            out,
            12.0 * elems,
            bytes,
        )
    }

    /// Cross-replica gradient reduction (`all-reduce` in profiles).
    pub fn all_reduce(&mut self, x: NodeId) -> NodeId {
        let sx = self.spec(x).clone();
        let elems = sx.shape.num_elements() as f64;
        let bytes = 2.0 * sx.size_bytes() as f64;
        let out = sx;
        self.push(
            OpKind::CrossReplicaSum,
            "all_reduce",
            vec![x],
            out,
            elems,
            bytes,
        )
    }

    /// Embedding-table gather: `ids` rows from `table`.
    pub fn gather(&mut self, table: NodeId, ids: NodeId) -> NodeId {
        let st = self.spec(table).clone();
        let si = self.spec(ids).clone();
        let width = *st.shape.dims().last().expect("embedding table rank >= 1");
        let mut out_dims = si.shape.dims().to_vec();
        out_dims.push(width);
        let out = TensorSpec::new(st.dtype, Shape::of(&out_dims));
        let bytes = 2.0 * out.size_bytes() as f64;
        self.push(
            OpKind::GatherV2,
            "gather",
            vec![table, ids],
            out,
            0.0,
            bytes,
        )
    }

    /// Fused Adam update of a parameter from its gradient.
    pub fn apply_adam(&mut self, param: NodeId, grad: NodeId) -> NodeId {
        let sp = self.spec(param).clone();
        let elems = sp.shape.num_elements() as f64;
        let bytes = 4.0 * sp.size_bytes() as f64; // param, grad, two moments
        let out = sp;
        self.push(
            OpKind::ResourceApplyAdam,
            "apply_adam",
            vec![param, grad],
            out,
            10.0 * elems,
            bytes,
        )
    }

    /// HBM-to-HBM copy.
    pub fn copy(&mut self, x: NodeId) -> NodeId {
        let sx = self.spec(x).clone();
        let bytes = 2.0 * sx.size_bytes() as f64;
        let out = sx;
        self.push(OpKind::Copy, "copy", vec![x], out, 0.0, bytes)
    }

    /// Finalizes the graph.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is empty or references foreign nodes.
    pub fn finish(self, outputs: &[NodeId]) -> Graph {
        assert!(!outputs.is_empty(), "a graph needs at least one output");
        for &o in outputs {
            assert!(
                o.index() < self.nodes.len(),
                "output {o:?} does not exist in graph `{}`",
                self.name
            );
        }
        Graph::from_parts(self.name, self.nodes, outputs.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::BF16.size_bytes(), 2);
        assert_eq!(DType::U8.size_bytes(), 1);
    }

    #[test]
    fn shape_basics() {
        let s = Shape::of(&[2, 3, 4]);
        assert_eq!(s.num_elements(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(Shape::scalar().num_elements(), 1);
        assert_eq!(s.to_string(), "[2,3,4]");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        let _ = Shape::of(&[2, 0]);
    }

    #[test]
    fn matmul_shapes_and_flops() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[8, 32, 64]));
        let w = b.parameter("w", DType::BF16, Shape::of(&[64, 16]));
        let y = b.matmul(x, w);
        let g = b.finish(&[y]);
        let node = g.node(y);
        assert_eq!(node.output.shape, Shape::of(&[8, 32, 16]));
        assert_eq!(node.flops, 2.0 * 8.0 * 32.0 * 64.0 * 16.0);
        assert!(node.kind.uses_mxu());
    }

    #[test]
    #[should_panic(expected = "contraction mismatch")]
    fn matmul_rejects_bad_contraction() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[4, 8]));
        let w = b.parameter("w", DType::BF16, Shape::of(&[9, 2]));
        let _ = b.matmul(x, w);
    }

    #[test]
    fn conv2d_same_padding_output() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[4, 224, 224, 3]));
        let y = b.conv2d(x, (7, 7), 64, 2);
        let g = b.finish(&[y]);
        assert_eq!(g.node(y).output.shape, Shape::of(&[4, 112, 112, 64]));
    }

    #[test]
    fn conv_backprop_costs_match_forward() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[4, 56, 56, 64]));
        let fwd = b.conv2d(x, (3, 3), 64, 1);
        let gf = b.conv2d_backprop_filter(x, (3, 3), 64, 1);
        let gi = b.conv2d_backprop_input(x, (3, 3), 64, 1);
        let g = b.finish(&[fwd, gf, gi]);
        assert_eq!(g.node(fwd).flops, g.node(gf).flops);
        assert_eq!(g.node(fwd).flops, g.node(gi).flops);
    }

    #[test]
    fn reshape_preserves_elements_and_costs_memory_only() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[4, 6]));
        let y = b.reshape(x, Shape::of(&[24]));
        let g = b.finish(&[y]);
        assert_eq!(g.node(y).flops, 0.0);
        assert_eq!(g.node(y).hbm_bytes, 2.0 * 48.0);
    }

    #[test]
    #[should_panic(expected = "preserve element count")]
    fn reshape_rejects_count_change() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[4, 6]));
        let _ = b.reshape(x, Shape::of(&[25]));
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn transpose_rejects_bad_perm() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[4, 6]));
        let _ = b.transpose(x, &[0, 0]);
    }

    #[test]
    fn transpose_permutes_dims() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[2, 3, 5]));
        let y = b.transpose(x, &[2, 0, 1]);
        let g = b.finish(&[y]);
        assert_eq!(g.node(y).output.shape, Shape::of(&[5, 2, 3]));
    }

    #[test]
    fn binary_broadcasts_to_larger() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[8, 16]));
        let bias = b.parameter("b", DType::BF16, Shape::of(&[16]));
        let y = b.binary(OpKind::Add, x, bias);
        let g = b.finish(&[y]);
        assert_eq!(g.node(y).output.shape, Shape::of(&[8, 16]));
    }

    #[test]
    #[should_panic(expected = "element-wise")]
    fn binary_rejects_non_elementwise_kind() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[8]));
        let _ = b.binary(OpKind::MatMul, x, x);
    }

    #[test]
    fn gather_appends_table_width() {
        let mut b = GraphBuilder::new("t");
        let table = b.parameter("emb", DType::BF16, Shape::of(&[30000, 768]));
        let ids = b.input("ids", DType::I32, Shape::of(&[32, 128]));
        let y = b.gather(table, ids);
        let g = b.finish(&[y]);
        assert_eq!(g.node(y).output.shape, Shape::of(&[32, 128, 768]));
    }

    #[test]
    fn graph_totals_accumulate() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[8, 8]));
        let w = b.parameter("w", DType::BF16, Shape::of(&[8, 8]));
        let y = b.matmul(x, w);
        let z = b.relu(y);
        let g = b.finish(&[z]);
        assert_eq!(
            g.total_flops(),
            g.nodes().iter().map(|n| n.flops).sum::<f64>()
        );
        assert!(g.total_hbm_bytes() > 0.0);
    }

    #[test]
    fn topological_invariant_holds() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::BF16, Shape::of(&[8, 8]));
        let w = b.parameter("w", DType::BF16, Shape::of(&[8, 8]));
        let y = b.matmul(x, w);
        let z = b.relu(y);
        let g = b.finish(&[z]);
        for node in g.nodes() {
            for input in &node.inputs {
                assert!(input.index() < node.id.index());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn finish_requires_outputs() {
        let b = GraphBuilder::new("t");
        let _ = b.finish(&[]);
    }

    #[test]
    fn op_names_match_table_ii_spelling() {
        assert_eq!(OpKind::Fusion.name(), "fusion");
        assert_eq!(OpKind::CrossReplicaSum.name(), "all-reduce");
        assert_eq!(OpKind::FusedBatchNormV3.name(), "FusedBatchNormV3");
        assert_eq!(OpKind::InfeedDequeueTuple.name(), "InfeedDequeueTuple");
    }

    #[test]
    fn op_classification_is_consistent() {
        for kind in [
            OpKind::MatMul,
            OpKind::Conv2D,
            OpKind::Conv2DBackpropFilter,
            OpKind::Conv2DBackpropInput,
        ] {
            assert!(kind.uses_mxu());
            assert!(!kind.is_elementwise());
        }
        assert!(OpKind::Reshape.is_memory_only());
        assert!(!OpKind::Reshape.uses_mxu());
        assert!(OpKind::Relu.is_elementwise());
        assert!(OpKind::Input.is_boundary());
    }
}
