//! Host input-pipeline specification and its adjustable parameters.
//!
//! A TPU training program's `tf.data` pipeline — read from Cloud Storage,
//! decode/augment in parallel, shuffle, batch, prefetch, infeed — is where
//! the paper's dominant bottlenecks (infeed and data preparation) arise.
//! TPUPoint-Optimizer's *adjustable parameters* (Section VII-A) are exactly
//! the knobs of this pipeline: "buffer size, the number of threads dedicated
//! to an operation, and the order of operations that can be rearranged while
//! maintaining correctness".

use serde::{Deserialize, Serialize};
use std::fmt;

/// Description of a workload's host input pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// Examples per training batch. Fixed by the model definition — *not*
    /// adjustable, since changing it changes training results.
    pub batch_size: u64,
    /// Worker threads decoding/augmenting examples (`num_parallel_calls`).
    pub num_parallel_calls: u32,
    /// Decoded batches buffered ahead of the infeed (`prefetch(depth)`).
    pub prefetch_depth: u32,
    /// Raw batches read ahead from storage.
    pub read_ahead: u32,
    /// Hardware infeed queue capacity, in batches.
    pub infeed_queue_depth: u32,
    /// Shuffle buffer size in examples. Adjusting it reorders training
    /// examples, i.e. changes program output.
    pub shuffle_buffer: u64,
    /// Number of separate per-batch host transform passes (cast, pad,
    /// mask). Reorderable/mergeable without changing output: fewer passes
    /// mean fewer sweeps over the batch.
    pub host_transform_passes: u32,
}

impl PipelineSpec {
    /// A reasonable default pipeline, similar to the TF TPU reference
    /// models: parallel decode on 8 threads, moderate buffering.
    pub fn tuned_default(batch_size: u64) -> Self {
        PipelineSpec {
            batch_size,
            num_parallel_calls: 8,
            prefetch_depth: 8,
            read_ahead: 8,
            infeed_queue_depth: 4,
            shuffle_buffer: 4 * batch_size,
            host_transform_passes: 2,
        }
    }

    /// A naive pipeline as an unoptimized programmer would write it:
    /// single-threaded decode, minimal buffering, redundant transform
    /// passes. Used for the paper's naive-implementation experiments
    /// (Figures 15 and 16).
    pub fn naive(batch_size: u64) -> Self {
        PipelineSpec {
            batch_size,
            num_parallel_calls: 1,
            prefetch_depth: 1,
            read_ahead: 1,
            infeed_queue_depth: 1,
            shuffle_buffer: batch_size,
            host_transform_passes: 4,
        }
    }
}

/// Error returned when a parameter adjustment is rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjustError {
    /// The parameter that was being adjusted.
    pub param: AdjustableParam,
    /// The rejected value.
    pub value: i64,
    /// Inclusive valid range.
    pub range: (i64, i64),
}

impl fmt::Display for AdjustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {} for {} outside valid range [{}, {}]",
            self.value, self.param, self.range.0, self.range.1
        )
    }
}

impl std::error::Error for AdjustError {}

/// A tunable knob of the input pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdjustableParam {
    /// `num_parallel_calls` decode threads.
    NumParallelCalls,
    /// Prefetch buffer depth in batches.
    PrefetchDepth,
    /// Storage read-ahead in batches.
    ReadAhead,
    /// Hardware infeed queue depth in batches.
    InfeedQueueDepth,
    /// Shuffle buffer size in examples (output-affecting!).
    ShuffleBuffer,
    /// Number of host transform passes (op-order/merge optimization).
    HostTransformPasses,
}

impl AdjustableParam {
    /// All knobs, in the order the optimizer scans them.
    pub fn all() -> &'static [AdjustableParam] {
        &[
            AdjustableParam::NumParallelCalls,
            AdjustableParam::PrefetchDepth,
            AdjustableParam::ReadAhead,
            AdjustableParam::InfeedQueueDepth,
            AdjustableParam::HostTransformPasses,
            AdjustableParam::ShuffleBuffer,
        ]
    }

    /// Inclusive valid range of the knob.
    pub fn range(self) -> (i64, i64) {
        match self {
            AdjustableParam::NumParallelCalls => (1, 64),
            AdjustableParam::PrefetchDepth => (1, 64),
            AdjustableParam::ReadAhead => (1, 64),
            AdjustableParam::InfeedQueueDepth => (1, 16),
            AdjustableParam::ShuffleBuffer => (1, 1 << 24),
            AdjustableParam::HostTransformPasses => (1, 8),
        }
    }

    /// True if changing this knob can change program *output* (not just
    /// performance). TPUPoint-Optimizer must reject such changes to keep
    /// its "tuning does not affect program-execution output" guarantee.
    pub fn affects_output(self) -> bool {
        matches!(self, AdjustableParam::ShuffleBuffer)
    }

    /// Reads the knob's current value.
    pub fn get(self, spec: &PipelineSpec) -> i64 {
        match self {
            AdjustableParam::NumParallelCalls => spec.num_parallel_calls as i64,
            AdjustableParam::PrefetchDepth => spec.prefetch_depth as i64,
            AdjustableParam::ReadAhead => spec.read_ahead as i64,
            AdjustableParam::InfeedQueueDepth => spec.infeed_queue_depth as i64,
            AdjustableParam::ShuffleBuffer => spec.shuffle_buffer as i64,
            AdjustableParam::HostTransformPasses => spec.host_transform_passes as i64,
        }
    }

    /// Writes a new value after validating it against [`Self::range`].
    ///
    /// # Errors
    ///
    /// Returns [`AdjustError`] if `value` is outside the knob's range; the
    /// spec is left unchanged. The optimizer uses this to discover which
    /// parameters are actually adjustable.
    pub fn set(self, spec: &mut PipelineSpec, value: i64) -> Result<(), AdjustError> {
        let range = self.range();
        if value < range.0 || value > range.1 {
            return Err(AdjustError {
                param: self,
                value,
                range,
            });
        }
        match self {
            AdjustableParam::NumParallelCalls => spec.num_parallel_calls = value as u32,
            AdjustableParam::PrefetchDepth => spec.prefetch_depth = value as u32,
            AdjustableParam::ReadAhead => spec.read_ahead = value as u32,
            AdjustableParam::InfeedQueueDepth => spec.infeed_queue_depth = value as u32,
            AdjustableParam::ShuffleBuffer => spec.shuffle_buffer = value as u64,
            AdjustableParam::HostTransformPasses => spec.host_transform_passes = value as u32,
        }
        Ok(())
    }

    /// The next value to try above `current` (multiplicative for buffers
    /// and threads, -1 for transform passes where *fewer* is better), or
    /// `None` at the range edge.
    pub fn step_up(self, current: i64) -> Option<i64> {
        let (_, hi) = self.range();
        let next = match self {
            AdjustableParam::HostTransformPasses => current + 1,
            _ => current * 2,
        };
        (next <= hi).then_some(next)
    }

    /// The next value to try below `current`, or `None` at the range edge.
    pub fn step_down(self, current: i64) -> Option<i64> {
        let (lo, _) = self.range();
        let next = match self {
            AdjustableParam::HostTransformPasses => current - 1,
            _ => current / 2,
        };
        (next >= lo && next != current).then_some(next)
    }
}

impl fmt::Display for AdjustableParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AdjustableParam::NumParallelCalls => "num_parallel_calls",
            AdjustableParam::PrefetchDepth => "prefetch_depth",
            AdjustableParam::ReadAhead => "read_ahead",
            AdjustableParam::InfeedQueueDepth => "infeed_queue_depth",
            AdjustableParam::ShuffleBuffer => "shuffle_buffer",
            AdjustableParam::HostTransformPasses => "host_transform_passes",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_beats_naive_on_every_throughput_knob() {
        let tuned = PipelineSpec::tuned_default(64);
        let naive = PipelineSpec::naive(64);
        assert!(tuned.num_parallel_calls > naive.num_parallel_calls);
        assert!(tuned.prefetch_depth > naive.prefetch_depth);
        assert!(tuned.read_ahead > naive.read_ahead);
        assert!(tuned.infeed_queue_depth > naive.infeed_queue_depth);
        assert!(tuned.host_transform_passes < naive.host_transform_passes);
        assert_eq!(tuned.batch_size, naive.batch_size);
    }

    #[test]
    fn get_set_round_trip() {
        let mut spec = PipelineSpec::tuned_default(32);
        for &p in AdjustableParam::all() {
            let v = p.get(&spec);
            p.set(&mut spec, v).expect("current value is always valid");
            assert_eq!(p.get(&spec), v);
        }
    }

    #[test]
    fn set_rejects_out_of_range_and_leaves_spec_unchanged() {
        let mut spec = PipelineSpec::tuned_default(32);
        let before = spec.clone();
        let err = AdjustableParam::NumParallelCalls
            .set(&mut spec, 0)
            .expect_err("0 threads is invalid");
        assert_eq!(err.param, AdjustableParam::NumParallelCalls);
        assert_eq!(spec, before);
        let err2 = AdjustableParam::InfeedQueueDepth
            .set(&mut spec, 1000)
            .expect_err("1000 exceeds the range");
        assert_eq!(err2.range, (1, 16));
        assert_eq!(spec, before);
    }

    #[test]
    fn only_shuffle_buffer_affects_output() {
        for &p in AdjustableParam::all() {
            assert_eq!(
                p.affects_output(),
                p == AdjustableParam::ShuffleBuffer,
                "{p}"
            );
        }
    }

    #[test]
    fn stepping_respects_range_edges() {
        let p = AdjustableParam::InfeedQueueDepth;
        assert_eq!(p.step_up(8), Some(16));
        assert_eq!(p.step_up(16), None);
        assert_eq!(p.step_down(2), Some(1));
        assert_eq!(p.step_down(1), None);
    }

    #[test]
    fn transform_passes_step_additively() {
        let p = AdjustableParam::HostTransformPasses;
        assert_eq!(p.step_up(2), Some(3));
        assert_eq!(p.step_down(2), Some(1));
        assert_eq!(p.step_down(1), None);
        assert_eq!(p.step_up(8), None);
    }

    #[test]
    fn buffers_step_multiplicatively() {
        let p = AdjustableParam::PrefetchDepth;
        assert_eq!(p.step_up(8), Some(16));
        assert_eq!(p.step_down(8), Some(4));
    }

    #[test]
    fn adjust_error_displays_context() {
        let err = AdjustError {
            param: AdjustableParam::PrefetchDepth,
            value: 99,
            range: (1, 64),
        };
        let msg = err.to_string();
        assert!(msg.contains("prefetch_depth"));
        assert!(msg.contains("99"));
    }
}
