//! The in-process job fleet: admission control, per-tenant quotas, and a
//! create/cancel/status lifecycle over concurrent training jobs.
//!
//! The paper's profiler is a cloud service — many tenants' jobs run at
//! once while TPUPoint characterizes each one live. [`Fleet`] reproduces
//! the TPU-fleet-manager shape (create/delete/status lifecycle calls) as
//! an in-process orchestrator:
//!
//! * **Admission control.** [`Fleet::submit`] validates the job id,
//!   bounds the pending queue ([`FleetLimits::max_queued`]), and enforces
//!   a per-tenant cap on active (queued + running) jobs
//!   ([`FleetLimits::per_tenant_active`]); over-quota submissions are
//!   rejected as backpressure, not queued unboundedly.
//! * **Bounded concurrency.** At most [`FleetLimits::max_running`] jobs
//!   run at once, each on a dedicated `tpupoint-job-<id>` thread (the
//!   recording thread paces on wall clock, so parking it on a shared
//!   `tpupoint-par` worker would starve the pool; the jobs' window
//!   *sealing* work still drains on the shared pool through each job's
//!   [`SealPipeline`](../../tpupoint_profiler/pipeline/index.html)).
//! * **Graceful cancel.** [`Fleet::cancel`] removes a queued job
//!   outright; a running job gets its quit flag set, which cancels only
//!   the live pacing — the run rushes to completion at batch speed and
//!   seals its store, exactly like single-job serve shutdown.
//!
//! The fleet knows nothing about profilers or stores: jobs are executed
//! by a caller-supplied [`JobRunner`], keeping this crate free of
//! profiler dependencies (the dependency arrow points the other way).

use crate::config::JobConfig;
use crate::live::LiveStatus;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Job id reserved for the fleet-wide aggregate series on `/metrics`;
/// admitting a job under it would collide with those labels.
pub const AGGREGATE_JOB_ID: &str = "fleet";

/// Resident-memory floor charged per active job by admission accounting:
/// the irreducible window/analyzer/reservoir state a job holds even with
/// its seal-queue and spill caps squeezed to their minimums. The
/// [`FleetLimits::memory_budget_bytes`] admission check and the
/// `fleet.memory_inuse_bytes` gauge both count in units of this floor;
/// the *variable* part of a job's footprint (queue depths) is sized down
/// separately from the same budget by the serving layer.
pub const JOB_MEMORY_FLOOR_BYTES: u64 = 32 * 1024 * 1024;

/// Admission and concurrency bounds of a [`Fleet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetLimits {
    /// Jobs running concurrently.
    pub max_running: usize,
    /// Jobs waiting in the admission queue.
    pub max_queued: usize,
    /// Active (queued + running) jobs any one tenant may hold.
    pub per_tenant_active: usize,
    /// Fleet-wide memory budget in bytes; `0` (the default) is
    /// unbounded. Admission is shed ([`AdmitError::MemoryBudget`]) once
    /// one more active job would push the fleet past the budget at
    /// [`JOB_MEMORY_FLOOR_BYTES`] per job, and the serving layer sizes
    /// each job's seal-queue high-water and spill caps from the same
    /// budget divided by the admitted-job count.
    pub memory_budget_bytes: u64,
}

impl Default for FleetLimits {
    fn default() -> Self {
        FleetLimits {
            max_running: 4,
            max_queued: 64,
            per_tenant_active: 8,
            memory_budget_bytes: 0,
        }
    }
}

/// One job submission: identity plus the training configuration.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Unique fleet-wide id; lowercase alphanumerics, `-`, `_`, `.`.
    pub id: String,
    /// Owning tenant, for quota accounting and health attribution.
    pub tenant: String,
    /// The training job to simulate.
    pub config: JobConfig,
    /// Wall-clock pacing per recorded step, microseconds (0 = batch
    /// speed).
    pub pace_us: u64,
}

/// Lifecycle phase of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted, waiting for a running slot.
    Queued,
    /// Executing on its job thread.
    Running,
    /// Cancel requested while running: pacing is off, the run is rushing
    /// to completion and sealing its records.
    Draining,
    /// Finished cleanly.
    Completed,
    /// The runner returned an error.
    Failed,
    /// Cancelled (from the queue, or after a drain).
    Cancelled,
}

impl JobPhase {
    /// Whether the job will never run again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobPhase::Completed | JobPhase::Failed | JobPhase::Cancelled
        )
    }

    /// Stable lowercase name, used in the `/jobs` API.
    pub fn as_str(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Draining => "draining",
            JobPhase::Completed => "completed",
            JobPhase::Failed => "failed",
            JobPhase::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for JobPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Handles a [`JobRunner`] uses to cooperate with the fleet: publish
/// progress into `status`, and treat `quit` exactly like serve-mode
/// shutdown (stop pacing, rush to completion, seal).
#[derive(Debug, Clone)]
pub struct JobControl {
    /// Cooperative cancel flag; set by [`Fleet::cancel`] and
    /// [`Fleet::drain`].
    pub quit: Arc<AtomicBool>,
    /// Live progress the fleet reports from [`Fleet::status`].
    pub status: Arc<LiveStatus>,
}

impl JobControl {
    fn new() -> JobControl {
        JobControl {
            quit: Arc::new(AtomicBool::new(false)),
            status: LiveStatus::new(),
        }
    }
}

/// Point-in-time view of one job, as returned by [`Fleet::status`] /
/// [`Fleet::list`].
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job's id.
    pub id: String,
    /// The owning tenant.
    pub tenant: String,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Latest recorded training step.
    pub step: u64,
    /// Steps completed, once terminal.
    pub steps_completed: u64,
    /// The runner's error, when `phase` is [`JobPhase::Failed`].
    pub error: Option<String>,
}

/// Executes one admitted job. Implementations run on a dedicated
/// `tpupoint-job-<id>` thread and must honor `ctl.quit` as a graceful
/// drain request. Returns the number of steps completed.
pub trait JobRunner: Send + Sync + 'static {
    /// Runs `spec` to completion (or drained cancellation).
    ///
    /// # Errors
    ///
    /// A human-readable description of why the job failed.
    fn run(&self, spec: &JobSpec, ctl: &JobControl) -> Result<u64, String>;
}

impl<F> JobRunner for F
where
    F: Fn(&JobSpec, &JobControl) -> Result<u64, String> + Send + Sync + 'static,
{
    fn run(&self, spec: &JobSpec, ctl: &JobControl) -> Result<u64, String> {
        self(spec, ctl)
    }
}

/// Why a submission was refused at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The id is empty, too long, uses a bad character, or is reserved.
    InvalidId(String),
    /// A job with this id already exists (ids are never reused).
    Duplicate(String),
    /// The admission queue is at [`FleetLimits::max_queued`].
    Saturated {
        /// Jobs currently queued.
        queued: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The tenant is at [`FleetLimits::per_tenant_active`] active jobs.
    TenantQuota {
        /// The over-quota tenant.
        tenant: String,
        /// The configured bound.
        limit: usize,
    },
    /// One more active job would exceed
    /// [`FleetLimits::memory_budget_bytes`] at the
    /// [`JOB_MEMORY_FLOOR_BYTES`] accounting floor.
    MemoryBudget {
        /// Active (queued + running) jobs already admitted.
        active: usize,
        /// The configured budget, bytes.
        budget_bytes: u64,
    },
    /// The fleet is draining and admits nothing new.
    Closed,
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::InvalidId(id) => write!(
                f,
                "invalid job id {id:?}: use 1-64 of [a-z0-9._-], not the reserved {AGGREGATE_JOB_ID:?}"
            ),
            AdmitError::Duplicate(id) => write!(f, "job id {id:?} already exists"),
            AdmitError::Saturated { queued, limit } => {
                write!(f, "admission queue full ({queued}/{limit})")
            }
            AdmitError::TenantQuota { tenant, limit } => {
                write!(f, "tenant {tenant:?} is at its quota of {limit} active jobs")
            }
            AdmitError::MemoryBudget {
                active,
                budget_bytes,
            } => write!(
                f,
                "fleet memory budget exhausted: one more job past {active} active would exceed \
                 {budget_bytes} bytes at the {JOB_MEMORY_FLOOR_BYTES}-byte per-job floor"
            ),
            AdmitError::Closed => f.write_str("fleet is draining; no new jobs admitted"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Validates a fleet job id: 1-64 chars of `[a-z0-9._-]`, not reserved.
pub fn valid_job_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id != AGGREGATE_JOB_ID
        && id
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || matches!(c, '-' | '_' | '.'))
}

struct JobEntry {
    spec: JobSpec,
    phase: JobPhase,
    ctl: JobControl,
    steps_completed: u64,
    error: Option<String>,
}

impl JobEntry {
    fn status(&self) -> JobStatus {
        JobStatus {
            id: self.spec.id.clone(),
            tenant: self.spec.tenant.clone(),
            phase: self.phase,
            step: self.ctl.status.current_step(),
            steps_completed: self.steps_completed,
            error: self.error.clone(),
        }
    }
}

struct FleetState {
    jobs: BTreeMap<String, JobEntry>,
    /// Admitted, not yet dispatched, FIFO.
    queue: VecDeque<String>,
    running: usize,
    closed: bool,
    handles: Vec<JoinHandle<()>>,
}

struct FleetInner {
    limits: FleetLimits,
    runner: Box<dyn JobRunner>,
    state: Mutex<FleetState>,
    /// Signalled on every terminal transition (and queue removal).
    settled: Condvar,
}

impl FleetInner {
    /// Locks the fleet state, recovering from poisoning: a panic inside a
    /// holder (a buggy runner unwinding through `settle`, say) must not
    /// take the whole control API down with it — every field the lock
    /// guards is kept valid at each await point, so the recovered view is
    /// safe to keep serving. Each recovery is counted on the process-wide
    /// `fleet.poisoned` counter.
    fn state(&self) -> MutexGuard<'_, FleetState> {
        self.state.lock().unwrap_or_else(|poisoned| {
            tpupoint_obs::metrics().counter("fleet.poisoned").inc();
            poisoned.into_inner()
        })
    }

    /// [`Condvar::wait`] with the same poisoning recovery as
    /// [`FleetInner::state`].
    fn wait_settled<'a>(&self, guard: MutexGuard<'a, FleetState>) -> MutexGuard<'a, FleetState> {
        self.settled.wait(guard).unwrap_or_else(|poisoned| {
            tpupoint_obs::metrics().counter("fleet.poisoned").inc();
            poisoned.into_inner()
        })
    }
}

/// Best-effort text of a caught panic payload (`panic!` with a string
/// literal or a formatted message covers practically every real panic).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

/// The job orchestrator; see the module docs.
pub struct Fleet {
    inner: Arc<FleetInner>,
}

impl fmt::Debug for Fleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.inner.state();
        f.debug_struct("Fleet")
            .field("jobs", &state.jobs.len())
            .field("queued", &state.queue.len())
            .field("running", &state.running)
            .field("closed", &state.closed)
            .finish()
    }
}

impl Fleet {
    /// Creates a fleet executing jobs through `runner`.
    pub fn new(limits: FleetLimits, runner: Box<dyn JobRunner>) -> Fleet {
        let fleet = Fleet {
            inner: Arc::new(FleetInner {
                limits,
                runner,
                state: Mutex::new(FleetState {
                    jobs: BTreeMap::new(),
                    queue: VecDeque::new(),
                    running: 0,
                    closed: false,
                    handles: Vec::new(),
                }),
                settled: Condvar::new(),
            }),
        };
        // Publish the configured bounds immediately: the budget gauge
        // must be scrapeable before the first submission arrives.
        let state = fleet.inner.state();
        fleet.publish_gauges(&state);
        drop(state);
        fleet
    }

    /// Admits `spec`, queueing it for dispatch.
    ///
    /// # Errors
    ///
    /// Refuses over-quota, duplicate, invalid, or post-drain submissions;
    /// see [`AdmitError`].
    pub fn submit(&self, spec: JobSpec) -> Result<(), AdmitError> {
        let mut state = self.inner.state();
        if state.closed {
            return Err(AdmitError::Closed);
        }
        if !valid_job_id(&spec.id) {
            return Err(AdmitError::InvalidId(spec.id));
        }
        if state.jobs.contains_key(&spec.id) {
            return Err(AdmitError::Duplicate(spec.id));
        }
        if state.queue.len() >= self.inner.limits.max_queued {
            return Err(AdmitError::Saturated {
                queued: state.queue.len(),
                limit: self.inner.limits.max_queued,
            });
        }
        let active = state
            .jobs
            .values()
            .filter(|j| j.spec.tenant == spec.tenant && !j.phase.is_terminal())
            .count();
        if active >= self.inner.limits.per_tenant_active {
            return Err(AdmitError::TenantQuota {
                tenant: spec.tenant,
                limit: self.inner.limits.per_tenant_active,
            });
        }
        let budget = self.inner.limits.memory_budget_bytes;
        if budget > 0 {
            let active_total = state
                .jobs
                .values()
                .filter(|j| !j.phase.is_terminal())
                .count();
            if (active_total as u64 + 1) * JOB_MEMORY_FLOOR_BYTES > budget {
                return Err(AdmitError::MemoryBudget {
                    active: active_total,
                    budget_bytes: budget,
                });
            }
        }
        let id = spec.id.clone();
        state.jobs.insert(
            id.clone(),
            JobEntry {
                spec,
                phase: JobPhase::Queued,
                ctl: JobControl::new(),
                steps_completed: 0,
                error: None,
            },
        );
        state.queue.push_back(id);
        self.pump(&mut state);
        self.publish_gauges(&state);
        Ok(())
    }

    /// Requests cancellation. A queued job leaves the queue immediately;
    /// a running job drains gracefully (pacing off, records sealed).
    /// Returns the phase after the request, or `None` for an unknown id.
    pub fn cancel(&self, id: &str) -> Option<JobPhase> {
        let mut state = self.inner.state();
        let entry = state.jobs.get_mut(id)?;
        match entry.phase {
            JobPhase::Queued => {
                entry.phase = JobPhase::Cancelled;
                state.queue.retain(|queued| queued != id);
                self.inner.settled.notify_all();
            }
            JobPhase::Running | JobPhase::Draining => {
                entry.phase = JobPhase::Draining;
                entry.ctl.quit.store(true, Ordering::SeqCst);
            }
            _ => {}
        }
        let phase = state.jobs[id].phase;
        self.publish_gauges(&state);
        Some(phase)
    }

    /// The current view of one job.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        let state = self.inner.state();
        state.jobs.get(id).map(JobEntry::status)
    }

    /// All jobs, in id order.
    pub fn list(&self) -> Vec<JobStatus> {
        let state = self.inner.state();
        state.jobs.values().map(JobEntry::status).collect()
    }

    /// Active (non-terminal) jobs.
    pub fn active_count(&self) -> usize {
        let state = self.inner.state();
        state
            .jobs
            .values()
            .filter(|j| !j.phase.is_terminal())
            .count()
    }

    /// Blocks until every admitted job reaches a terminal phase.
    pub fn wait_idle(&self) {
        let mut state = self.inner.state();
        while state.jobs.values().any(|j| !j.phase.is_terminal()) {
            state = self.inner.wait_settled(state);
        }
        let handles = std::mem::take(&mut state.handles);
        drop(state);
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Stops admitting, cancels the queue, drains every running job
    /// gracefully, and waits for all of them to settle.
    pub fn drain(&self) {
        let ids: Vec<String> = {
            let mut state = self.inner.state();
            state.closed = true;
            state.jobs.keys().cloned().collect()
        };
        for id in ids {
            self.cancel(&id);
        }
        self.wait_idle();
    }

    /// Dispatches queued jobs into free running slots. Caller holds the
    /// state lock.
    fn pump(&self, state: &mut FleetState) {
        while state.running < self.inner.limits.max_running {
            let Some(id) = state.queue.pop_front() else {
                break;
            };
            let entry = state.jobs.get_mut(&id).expect("queued job exists");
            entry.phase = JobPhase::Running;
            state.running += 1;
            let spec = entry.spec.clone();
            let ctl = entry.ctl.clone();
            let inner = Arc::clone(&self.inner);
            let spawned = std::thread::Builder::new()
                .name(format!("tpupoint-job-{id}"))
                .spawn(move || {
                    // A panicking runner must neither skip `settle` (which
                    // would leak the running slot and hang `wait_idle`
                    // forever) nor unwind the thread with fleet locks in
                    // scope: the unwind is caught here and settled as a
                    // plain job failure.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        inner.runner.run(&spec, &ctl)
                    }))
                    .unwrap_or_else(|payload| {
                        Err(format!("panicked: {}", panic_message(payload.as_ref())))
                    });
                    inner.settle(&spec.id, result);
                });
            match spawned {
                Ok(handle) => state.handles.push(handle),
                Err(err) => {
                    // Thread spawn failed (fd/memory pressure): the job
                    // fails without ever running.
                    let entry = state.jobs.get_mut(&id).expect("job exists");
                    entry.phase = JobPhase::Failed;
                    entry.error = Some(format!("spawn: {err}"));
                    state.running -= 1;
                    self.inner.settled.notify_all();
                }
            }
        }
    }

    /// Publishes fleet-level occupancy gauges into the process-wide
    /// registry (fleet series are fleet-scoped by design; per-job series
    /// live in each job's own registry).
    fn publish_gauges(&self, state: &FleetState) {
        let metrics = tpupoint_obs::metrics();
        metrics
            .gauge("fleet.jobs_running")
            .set(state.running as f64);
        metrics
            .gauge("fleet.jobs_queued")
            .set(state.queue.len() as f64);
        metrics
            .gauge("fleet.jobs_total")
            .set(state.jobs.len() as f64);
        let active = state
            .jobs
            .values()
            .filter(|j| !j.phase.is_terminal())
            .count();
        metrics
            .gauge("fleet.memory_budget_bytes")
            .set(self.inner.limits.memory_budget_bytes as f64);
        metrics
            .gauge("fleet.memory_inuse_bytes")
            .set((active as u64 * JOB_MEMORY_FLOOR_BYTES) as f64);
    }
}

impl FleetInner {
    /// Records a finished run and dispatches the next queued job.
    fn settle(self: &Arc<Self>, id: &str, result: Result<u64, String>) {
        let mut state = self.state();
        if let Some(entry) = state.jobs.get_mut(id) {
            match result {
                Ok(steps) => {
                    entry.steps_completed = steps;
                    // A drained job lands in Cancelled even though the
                    // runner returned cleanly: the *request* was cancel.
                    entry.phase = if entry.phase == JobPhase::Draining {
                        JobPhase::Cancelled
                    } else {
                        JobPhase::Completed
                    };
                }
                Err(err) => {
                    entry.phase = JobPhase::Failed;
                    entry.error = Some(err);
                }
            }
        }
        state.running = state.running.saturating_sub(1);
        let fleet = Fleet {
            inner: Arc::clone(self),
        };
        fleet.pump(&mut state);
        fleet.publish_gauges(&state);
        self.settled.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn spec(id: &str, tenant: &str) -> JobSpec {
        JobSpec {
            id: id.to_owned(),
            tenant: tenant.to_owned(),
            config: JobConfig::demo(),
            pace_us: 0,
        }
    }

    /// A runner that parks until its quit flag (or a bounded timeout) and
    /// reports how many jobs ran concurrently at peak.
    struct ParkingRunner {
        concurrent: AtomicUsize,
        peak: AtomicUsize,
    }

    impl JobRunner for Arc<ParkingRunner> {
        fn run(&self, _spec: &JobSpec, ctl: &JobControl) -> Result<u64, String> {
            let now = self.concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak.fetch_max(now, Ordering::SeqCst);
            for _ in 0..2000 {
                if ctl.quit.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            self.concurrent.fetch_sub(1, Ordering::SeqCst);
            Ok(7)
        }
    }

    #[test]
    fn admission_enforces_ids_queue_and_tenant_quotas() {
        let fleet = Fleet::new(
            FleetLimits {
                max_running: 1,
                max_queued: 2,
                per_tenant_active: 2,
                ..FleetLimits::default()
            },
            Box::new(|_: &JobSpec, _: &JobControl| Ok(0u64)),
        );
        assert!(matches!(
            fleet.submit(spec("", "a")),
            Err(AdmitError::InvalidId(_))
        ));
        assert!(matches!(
            fleet.submit(spec("Bad/Id", "a")),
            Err(AdmitError::InvalidId(_))
        ));
        assert!(matches!(
            fleet.submit(spec(AGGREGATE_JOB_ID, "a")),
            Err(AdmitError::InvalidId(_))
        ));
        fleet.submit(spec("job-1", "a")).unwrap();
        assert!(matches!(
            fleet.submit(spec("job-1", "b")),
            Err(AdmitError::Duplicate(_))
        ));
        fleet.wait_idle();
        // Quota counts only *active* jobs: finished ones free the slot.
        fleet.submit(spec("job-2", "a")).unwrap();
        fleet.submit(spec("job-3", "a")).unwrap();
        fleet.wait_idle();
        assert_eq!(fleet.list().len(), 3);
        assert!(fleet.list().iter().all(|j| j.phase == JobPhase::Completed));
    }

    #[test]
    fn tenant_quota_rejects_active_overflow() {
        let runner = Arc::new(ParkingRunner {
            concurrent: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        });
        let fleet = Fleet::new(
            FleetLimits {
                max_running: 1,
                max_queued: 8,
                per_tenant_active: 2,
                ..FleetLimits::default()
            },
            Box::new(Arc::clone(&runner)),
        );
        fleet.submit(spec("a-1", "a")).unwrap();
        fleet.submit(spec("a-2", "a")).unwrap();
        assert!(matches!(
            fleet.submit(spec("a-3", "a")),
            Err(AdmitError::TenantQuota { .. })
        ));
        // Another tenant is unaffected.
        fleet.submit(spec("b-1", "b")).unwrap();
        fleet.drain();
        assert!(matches!(
            fleet.submit(spec("late", "a")),
            Err(AdmitError::Closed)
        ));
    }

    #[test]
    fn max_running_bounds_concurrency_and_cancel_drains() {
        let runner = Arc::new(ParkingRunner {
            concurrent: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        });
        let fleet = Fleet::new(
            FleetLimits {
                max_running: 2,
                max_queued: 16,
                per_tenant_active: 16,
                ..FleetLimits::default()
            },
            Box::new(Arc::clone(&runner)),
        );
        for i in 0..4 {
            fleet.submit(spec(&format!("job-{i}"), "t")).unwrap();
        }
        // Two dispatch, two queue.
        assert_eq!(fleet.status("job-2").unwrap().phase, JobPhase::Queued);
        // Cancelling a queued job removes it without running.
        assert_eq!(fleet.cancel("job-3"), Some(JobPhase::Cancelled));
        // Cancelling a running job requests a graceful drain.
        let drained = fleet.cancel("job-0").unwrap();
        assert!(matches!(drained, JobPhase::Draining), "{drained:?}");
        fleet.drain();
        assert!(runner.peak.load(Ordering::SeqCst) <= 2);
        let by_id = |id: &str| fleet.status(id).unwrap();
        assert_eq!(by_id("job-0").phase, JobPhase::Cancelled);
        assert_eq!(by_id("job-3").phase, JobPhase::Cancelled);
        assert_eq!(by_id("job-3").steps_completed, 0);
        // Drained jobs still report the steps their rushed run completed.
        assert_eq!(by_id("job-0").steps_completed, 7);
        assert_eq!(fleet.cancel("missing"), None);
    }

    #[test]
    fn failed_runner_surfaces_its_error() {
        let fleet = Fleet::new(
            FleetLimits::default(),
            Box::new(|spec: &JobSpec, _: &JobControl| {
                if spec.id.contains("bad") {
                    Err("boom".to_owned())
                } else {
                    Ok(1)
                }
            }),
        );
        fleet.submit(spec("good", "t")).unwrap();
        fleet.submit(spec("bad-job", "t")).unwrap();
        fleet.wait_idle();
        assert_eq!(fleet.status("good").unwrap().phase, JobPhase::Completed);
        let bad = fleet.status("bad-job").unwrap();
        assert_eq!(bad.phase, JobPhase::Failed);
        assert_eq!(bad.error.as_deref(), Some("boom"));
    }

    #[test]
    fn panicking_runner_fails_its_job_without_killing_the_fleet() {
        let fleet = Fleet::new(
            FleetLimits {
                max_running: 1,
                max_queued: 8,
                per_tenant_active: 8,
                ..FleetLimits::default()
            },
            Box::new(|spec: &JobSpec, _: &JobControl| {
                if spec.id.contains("panic") {
                    panic!("runner exploded");
                }
                Ok(3)
            }),
        );
        fleet.submit(spec("panic-job", "t")).unwrap();
        fleet.submit(spec("after", "t")).unwrap();
        // With max_running = 1, `after` only ever dispatches if the
        // panicking job settled and released its running slot.
        fleet.wait_idle();
        let failed = fleet.status("panic-job").unwrap();
        assert_eq!(failed.phase, JobPhase::Failed);
        assert!(
            failed.error.as_deref().unwrap().contains("panicked: runner exploded"),
            "{:?}",
            failed.error
        );
        assert_eq!(fleet.status("after").unwrap().phase, JobPhase::Completed);
        // The control API is still alive for new work.
        fleet.submit(spec("next", "t")).unwrap();
        fleet.wait_idle();
        assert_eq!(fleet.status("next").unwrap().phase, JobPhase::Completed);
    }

    #[test]
    fn poisoned_state_lock_recovers_and_counts() {
        let fleet = Fleet::new(
            FleetLimits::default(),
            Box::new(|_: &JobSpec, _: &JobControl| Ok(0u64)),
        );
        fleet.submit(spec("before", "t")).unwrap();
        fleet.wait_idle();
        // Poison the state mutex the hard way: panic while holding it.
        let inner = Arc::clone(&fleet.inner);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = inner.state.lock().unwrap();
            panic!("poisoning the fleet state");
        }));
        assert!(fleet.inner.state.is_poisoned());
        // Every lifecycle call keeps working on the recovered state.
        assert_eq!(fleet.list().len(), 1);
        assert_eq!(fleet.status("before").unwrap().phase, JobPhase::Completed);
        fleet.submit(spec("after-poison", "t")).unwrap();
        fleet.wait_idle();
        assert_eq!(
            fleet.status("after-poison").unwrap().phase,
            JobPhase::Completed
        );
        let poisoned = tpupoint_obs::metrics()
            .snapshot()
            .counters
            .get("fleet.poisoned")
            .copied()
            .unwrap_or(0);
        assert!(poisoned >= 1, "recoveries must be counted, got {poisoned}");
    }

    #[test]
    fn memory_budget_sheds_admission_and_exports_gauges() {
        let runner = Arc::new(ParkingRunner {
            concurrent: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        });
        let fleet = Fleet::new(
            FleetLimits {
                max_running: 4,
                max_queued: 16,
                per_tenant_active: 16,
                memory_budget_bytes: 2 * JOB_MEMORY_FLOOR_BYTES,
            },
            Box::new(Arc::clone(&runner)),
        );
        fleet.submit(spec("m-1", "t")).unwrap();
        fleet.submit(spec("m-2", "t")).unwrap();
        let err = fleet.submit(spec("m-3", "t")).unwrap_err();
        assert!(
            matches!(err, AdmitError::MemoryBudget { active: 2, .. }),
            "{err:?}"
        );
        // Budget accounting is exported (values race with concurrently
        // running tests' fleets on the process-global registry, so only
        // presence is asserted here; the serving-layer tests pin values).
        let gauges = tpupoint_obs::metrics().snapshot().gauges;
        assert!(gauges.contains_key("fleet.memory_budget_bytes"));
        assert!(gauges.contains_key("fleet.memory_inuse_bytes"));
        fleet.drain();
        // A settled fleet frees its quota: a fresh fleet under the same
        // budget admits again (terminal jobs release their share).
        assert!(matches!(
            fleet.submit(spec("late", "t")),
            Err(AdmitError::Closed)
        ));
    }

    #[test]
    fn job_id_validation_rules() {
        assert!(valid_job_id("bert-mrpc.0_1"));
        assert!(!valid_job_id(""));
        assert!(!valid_job_id("UPPER"));
        assert!(!valid_job_id("sp ace"));
        assert!(!valid_job_id(AGGREGATE_JOB_ID));
        assert!(!valid_job_id(&"x".repeat(65)));
    }
}
