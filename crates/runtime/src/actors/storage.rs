//! Cloud-storage reader: stages raw record batches from the Storage Bucket.

use super::tags;
use tpupoint_simcore::{
    trace::TraceEvent, Ctx, OpId, Process, PushOutcome, QueueId, Signal, SimDuration, SimTime,
    Track,
};

const TAG_READ_DONE: u64 = 10;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Waiting for the session's start poke.
    Idle,
    /// A read is in flight; finishes at the pending timer.
    Reading,
    /// Read finished but the raw queue was full.
    Pushing,
    /// All batches staged.
    Done,
}

/// Reads `total_batches` raw batches from storage, one at a time, at the
/// storage link's rate, and pushes them into the raw queue. Closes the
/// queue after the last batch so downstream stages can drain and stop.
#[derive(Debug)]
pub struct StorageReader {
    raw_q: QueueId,
    read_dur: SimDuration,
    read_op: OpId,
    total_batches: u64,
    jitter_sigma: f64,
    next_batch: u64,
    read_started: SimTime,
    state: State,
}

impl StorageReader {
    /// Creates a reader that stages `total_batches` batches, each taking
    /// `read_dur` (± jitter) to fetch.
    pub fn new(
        raw_q: QueueId,
        read_op: OpId,
        read_dur: SimDuration,
        total_batches: u64,
        jitter_sigma: f64,
    ) -> Self {
        StorageReader {
            raw_q,
            read_dur,
            read_op,
            total_batches,
            jitter_sigma,
            next_batch: 0,
            read_started: SimTime::ZERO,
            state: State::Idle,
        }
    }

    fn begin_read(&mut self, ctx: &mut Ctx<'_>) {
        if self.next_batch == self.total_batches {
            ctx.close_queue(self.raw_q);
            self.state = State::Done;
            return;
        }
        let jitter = ctx.rng().lognormal_jitter(self.jitter_sigma);
        self.read_started = ctx.now();
        ctx.schedule_in(self.read_dur.mul_f64(jitter), TAG_READ_DONE);
        self.state = State::Reading;
    }

    fn try_push(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.try_push(self.raw_q, self.next_batch) {
            PushOutcome::Stored => {
                ctx.emit(TraceEvent {
                    op: self.read_op,
                    track: Track::Storage,
                    start: self.read_started,
                    dur: ctx.now() - self.read_started,
                    mxu_dur: SimDuration::ZERO,
                    step: Some(self.next_batch + 1),
                });
                self.next_batch += 1;
                self.begin_read(ctx);
            }
            PushOutcome::WouldBlock => self.state = State::Pushing,
        }
    }
}

impl Process for StorageReader {
    fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>) {
        match (self.state, sig) {
            (State::Idle, Signal::Poke(tags::START)) => self.begin_read(ctx),
            (State::Reading, Signal::Timer(TAG_READ_DONE)) => self.try_push(ctx),
            (State::Pushing, Signal::QueueReady(q)) if q == self.raw_q => self.try_push(ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::trace::{OpAttrs, OpCatalog, VecSink};
    use tpupoint_simcore::Engine;

    /// Drives a lone reader with an infinite consumer drained at the end.
    fn run_reader(total: u64, cap: usize) -> (VecSink, u64) {
        let mut engine = Engine::new(3);
        let raw_q = engine.create_queue(cap);
        let mut catalog = OpCatalog::new();
        let op = catalog.intern("StorageRead", OpAttrs::default());
        let reader = engine.add_process(Box::new(StorageReader::new(
            raw_q,
            op,
            SimDuration::from_millis(2),
            total,
            0.0,
        )));
        // Kick the reader the way the session would.
        struct Kick(tpupoint_simcore::ProcessId);
        impl Process for Kick {
            fn on_signal(&mut self, _sig: Signal, ctx: &mut Ctx<'_>) {
                ctx.wake(self.0, tags::START);
            }
        }
        let kick = engine.add_process(Box::new(Kick(reader)));
        engine.start(kick);
        let mut sink = VecSink::new();
        engine.run(&mut sink);
        let staged = engine.queues().len(raw_q) as u64;
        (sink, staged)
    }

    #[test]
    fn stages_all_batches_when_queue_is_deep() {
        let (sink, staged) = run_reader(5, 16);
        assert_eq!(staged, 5);
        assert_eq!(sink.events.len(), 5);
        assert!(sink.events.iter().all(|e| e.track == Track::Storage));
    }

    #[test]
    fn blocks_when_queue_fills() {
        let (sink, staged) = run_reader(10, 3);
        // Only 3 fit; the 4th read completed but could not push.
        assert_eq!(staged, 3);
        assert_eq!(sink.events.len(), 3);
    }

    #[test]
    fn read_events_carry_step_numbers() {
        let (sink, _) = run_reader(4, 8);
        let steps: Vec<_> = sink.events.iter().map(|e| e.step).collect();
        assert_eq!(steps, vec![Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn reads_are_sequential_at_link_rate() {
        let (sink, _) = run_reader(3, 8);
        assert_eq!(sink.events[0].start.as_micros(), 0);
        assert_eq!(sink.events[1].start.as_micros(), 2_000);
        assert_eq!(sink.events[2].start.as_micros(), 4_000);
    }
}
