//! The TPU actor: executes one graph per step, stalls on infeed,
//! checkpoints, and loop boundaries.

use super::{tags, StepCosts};
use crate::config::StepKind;
use crate::metrics::SharedMetrics;
use std::collections::HashSet;
use std::sync::Arc;
use tpupoint_obs::{Counter, Histogram};
use tpupoint_simcore::{
    trace::TraceEvent, Ctx, OpId, PopOutcome, Process, ProcessId, PushOutcome, QueueId, Signal,
    SimDuration, SimTime, Track,
};

const TAG_STEP_DONE: u64 = 40;
const TAG_CHUNK_STALL: u64 = 41;

/// Host↔TPU round-trip pause at each `iterations_per_loop` boundary.
const CHUNK_STALL: SimDuration = SimDuration::from_micros(1_500);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    WaitBatch,
    Running,
    PushingOutfeed,
    ChunkStall,
    CheckpointStall,
    Done,
}

/// Executes the step plan: pops a batch from the infeed queue per step,
/// "runs" the appropriate graph by emitting its timed ops, pushes results
/// to the outfeed at loop boundaries, and requests checkpoints from the
/// session actor.
#[derive(Debug)]
pub struct TpuProc {
    metrics: SharedMetrics,
    infeed_q: QueueId,
    outfeed_q: QueueId,
    session: ProcessId,
    plan: Vec<StepKind>,
    checkpoint_after: HashSet<u64>,
    train_costs: StepCosts,
    eval_costs: StepCosts,
    infeed_dequeue_op: OpId,
    infeed_dequeue_dur: SimDuration,
    outfeed_enqueue_op: OpId,
    iterations_per_loop: u64,
    warmup_steps: u64,
    jitter_sigma: f64,
    cur: usize,
    state: State,
    step_started: SimTime,
    step_total: SimDuration,
    obs: StepObs,
}

/// Observability handles for the per-step boundary, resolved once per
/// actor so the step-completion path pays one atomic add per metric.
#[derive(Debug)]
struct StepObs {
    steps: Counter,
    train_steps: Counter,
    step_sim_us: Arc<Histogram>,
}

impl StepObs {
    fn new() -> Self {
        let metrics = tpupoint_obs::metrics();
        StepObs {
            steps: metrics.counter("runtime.steps"),
            train_steps: metrics.counter("runtime.train_steps"),
            step_sim_us: metrics.histogram("runtime.step_sim_us"),
        }
    }
}

impl TpuProc {
    /// Creates the TPU actor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        metrics: SharedMetrics,
        infeed_q: QueueId,
        outfeed_q: QueueId,
        session: ProcessId,
        plan: Vec<StepKind>,
        checkpoint_after: Vec<u64>,
        train_costs: StepCosts,
        eval_costs: StepCosts,
        infeed_dequeue_op: OpId,
        infeed_dequeue_dur: SimDuration,
        outfeed_enqueue_op: OpId,
        iterations_per_loop: u64,
        warmup_steps: u64,
        jitter_sigma: f64,
    ) -> Self {
        TpuProc {
            metrics,
            infeed_q,
            outfeed_q,
            session,
            plan,
            checkpoint_after: checkpoint_after.into_iter().collect(),
            train_costs,
            eval_costs,
            infeed_dequeue_op,
            infeed_dequeue_dur,
            outfeed_enqueue_op,
            iterations_per_loop: iterations_per_loop.max(1),
            warmup_steps,
            jitter_sigma,
            cur: 0,
            state: State::Idle,
            step_started: SimTime::ZERO,
            step_total: SimDuration::ZERO,
            obs: StepObs::new(),
        }
    }

    /// 1-based profile step number of the step at plan index `cur`.
    fn step_no(&self) -> u64 {
        self.cur as u64 + 1
    }

    fn try_start_step(&mut self, ctx: &mut Ctx<'_>) {
        if self.cur == self.plan.len() {
            self.finish(ctx);
            return;
        }
        match ctx.try_pop(self.infeed_q) {
            PopOutcome::Item(_) => self.run_step(ctx),
            PopOutcome::WouldBlock => self.state = State::WaitBatch,
            PopOutcome::Closed => self.finish(ctx),
        }
    }

    /// Extra slowdown for the first steps (cold caches, lazy
    /// initialization); decays linearly to 1.0 at `warmup_steps`.
    fn warmup_factor(&self) -> f64 {
        if (self.cur as u64) < self.warmup_steps {
            let remaining = (self.warmup_steps - self.cur as u64) as f64;
            1.0 + 1.5 * remaining / self.warmup_steps as f64
        } else {
            1.0
        }
    }

    fn run_step(&mut self, ctx: &mut Ctx<'_>) {
        let step = self.step_no();
        let kind = self.plan[self.cur];
        self.step_started = ctx.now();
        {
            let mut m = self.metrics.borrow_mut();
            if m.first_step_start.is_none() {
                m.first_step_start = Some(ctx.now());
            }
        }
        let warmup = self.warmup_factor();
        let mut t = ctx.now();
        let mut busy = SimDuration::ZERO;
        let mut mxu = SimDuration::ZERO;

        let deq = self
            .infeed_dequeue_dur
            .mul_f64(ctx.rng().lognormal_jitter(self.jitter_sigma));
        ctx.emit(TraceEvent {
            op: self.infeed_dequeue_op,
            track: Track::TpuCore(0),
            start: t,
            dur: deq,
            mxu_dur: SimDuration::ZERO,
            step: Some(step),
        });
        t += deq;
        busy += deq;

        let costs = match kind {
            StepKind::Train => self.train_costs.clone(),
            StepKind::Eval => self.eval_costs.clone(),
        };
        for op in &costs.ops {
            let factor = warmup * ctx.rng().lognormal_jitter(self.jitter_sigma);
            let dur = op.dur.mul_f64(factor);
            let mxu_dur = op.mxu.mul_f64(factor).min(dur);
            ctx.emit(TraceEvent {
                op: op.op,
                track: Track::TpuCore(0),
                start: t,
                dur,
                mxu_dur,
                step: Some(step),
            });
            t += dur;
            busy += dur;
            mxu += mxu_dur;
        }

        {
            let mut m = self.metrics.borrow_mut();
            m.tpu_busy += busy;
            m.mxu_busy += mxu;
        }
        self.step_total = t - ctx.now();
        ctx.schedule_in(self.step_total, TAG_STEP_DONE);
        self.state = State::Running;
    }

    fn step_done(&mut self, ctx: &mut Ctx<'_>) {
        let step = self.step_no();
        let kind = self.plan[self.cur];
        {
            let mut m = self.metrics.borrow_mut();
            m.last_step_end = Some(ctx.now());
            m.steps_completed += 1;
            if kind == StepKind::Train {
                m.train_steps_completed += 1;
            }
            m.step_walls.push(ctx.now() - self.step_started);
        }
        self.obs.steps.inc();
        if kind == StepKind::Train {
            self.obs.train_steps.inc();
        }
        self.obs
            .step_sim_us
            .record((ctx.now() - self.step_started).as_micros());
        ctx.mark_step(step);
        let last = self.cur + 1 == self.plan.len();
        // Checkpoints force a loop boundary too: the host has to dequeue
        // results and fetch variables before it can write a checkpoint.
        if step.is_multiple_of(self.iterations_per_loop)
            || last
            || self.checkpoint_after.contains(&step)
        {
            let dur = SimDuration::from_micros(80);
            ctx.emit(TraceEvent {
                op: self.outfeed_enqueue_op,
                track: Track::TpuCore(0),
                start: ctx.now(),
                dur,
                mxu_dur: SimDuration::ZERO,
                step: Some(step),
            });
            self.push_outfeed(ctx);
        } else {
            self.post_step(ctx);
        }
    }

    fn push_outfeed(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.try_push(self.outfeed_q, self.step_no()) {
            PushOutcome::Stored => self.after_outfeed(ctx),
            PushOutcome::WouldBlock => self.state = State::PushingOutfeed,
        }
    }

    fn after_outfeed(&mut self, ctx: &mut Ctx<'_>) {
        // Loop boundary: the host re-dispatches the device loop.
        let last = self.cur + 1 == self.plan.len();
        if !last {
            self.state = State::ChunkStall;
            ctx.schedule_in(CHUNK_STALL, TAG_CHUNK_STALL);
        } else {
            self.post_step(ctx);
        }
    }

    fn post_step(&mut self, ctx: &mut Ctx<'_>) {
        let step = self.step_no();
        self.cur += 1;
        if self.checkpoint_after.contains(&step) {
            ctx.wake(self.session, tags::CHECKPOINT_BASE + step);
            self.state = State::CheckpointStall;
        } else {
            self.try_start_step(ctx);
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>) {
        ctx.close_queue(self.outfeed_q);
        ctx.wake(self.session, tags::SHUTDOWN);
        self.state = State::Done;
    }
}

impl Process for TpuProc {
    fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>) {
        match (self.state, sig) {
            (State::Idle, Signal::Poke(tags::START)) => self.try_start_step(ctx),
            (State::WaitBatch, Signal::QueueReady(q)) if q == self.infeed_q => {
                self.try_start_step(ctx)
            }
            (State::Running, Signal::Timer(TAG_STEP_DONE)) => self.step_done(ctx),
            (State::PushingOutfeed, Signal::QueueReady(q)) if q == self.outfeed_q => {
                self.push_outfeed(ctx)
            }
            (State::ChunkStall, Signal::Timer(TAG_CHUNK_STALL)) => self.post_step(ctx),
            (State::CheckpointStall, Signal::Poke(tags::RESUME)) => self.try_start_step(ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actors::StepOp;
    use crate::metrics::shared_metrics;
    use tpupoint_simcore::trace::{OpAttrs, OpCatalog, VecSink};
    use tpupoint_simcore::Engine;

    struct Feeder {
        q: QueueId,
        n: u64,
        tpu: ProcessId,
    }
    impl Process for Feeder {
        fn on_signal(&mut self, _sig: Signal, ctx: &mut Ctx<'_>) {
            for b in 0..self.n {
                let _ = ctx.try_push(self.q, b);
            }
            ctx.wake(self.tpu, tags::START);
        }
    }

    /// Session stub that immediately resumes checkpoints and records pokes.
    struct SessionStub {
        tpu: std::rc::Rc<std::cell::RefCell<Option<ProcessId>>>,
        checkpoints: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
        shutdowns: std::rc::Rc<std::cell::RefCell<u32>>,
    }
    impl Process for SessionStub {
        fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>) {
            if let Signal::Poke(tag) = sig {
                if tag == tags::SHUTDOWN {
                    *self.shutdowns.borrow_mut() += 1;
                } else if tag >= tags::CHECKPOINT_BASE {
                    self.checkpoints
                        .borrow_mut()
                        .push(tag - tags::CHECKPOINT_BASE);
                    let tpu = self.tpu.borrow().expect("tpu id set before run");
                    ctx.wake(tpu, tags::RESUME);
                }
            }
        }
    }

    struct Harness {
        sink: VecSink,
        catalog: OpCatalog,
        metrics: SharedMetrics,
        checkpoints: Vec<u64>,
        shutdowns: u32,
    }

    fn run_tpu(plan: Vec<StepKind>, checkpoints: Vec<u64>, iterations_per_loop: u64) -> Harness {
        let mut engine = Engine::new(2);
        let infeed_q = engine.create_queue(1024);
        let outfeed_q = engine.create_queue(64);
        let mut catalog = OpCatalog::new();
        let fusion = catalog.intern("fusion", OpAttrs { uses_mxu: true });
        let reshape = catalog.intern("Reshape", OpAttrs::default());
        let deq = catalog.intern("InfeedDequeueTuple", OpAttrs::default());
        let enq = catalog.intern("OutfeedEnqueueTuple", OpAttrs::default());
        let train = StepCosts::new(vec![
            StepOp {
                op: fusion,
                dur: SimDuration::from_millis(10),
                mxu: SimDuration::from_millis(7),
            },
            StepOp {
                op: reshape,
                dur: SimDuration::from_millis(3),
                mxu: SimDuration::ZERO,
            },
        ]);
        let eval = StepCosts::new(vec![StepOp {
            op: fusion,
            dur: SimDuration::from_millis(4),
            mxu: SimDuration::from_millis(2),
        }]);
        let metrics = shared_metrics();
        let ckpt_log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let shutdown_log = std::rc::Rc::new(std::cell::RefCell::new(0));
        let tpu_cell = std::rc::Rc::new(std::cell::RefCell::new(None));
        let n = plan.len() as u64;
        let session = engine.add_process(Box::new(SessionStub {
            tpu: tpu_cell.clone(),
            checkpoints: ckpt_log.clone(),
            shutdowns: shutdown_log.clone(),
        }));
        let tpu = engine.add_process(Box::new(TpuProc::new(
            metrics.clone(),
            infeed_q,
            outfeed_q,
            session,
            plan,
            checkpoints,
            train,
            eval,
            deq,
            SimDuration::from_micros(100),
            enq,
            iterations_per_loop,
            0,
            0.0,
        )));
        *tpu_cell.borrow_mut() = Some(tpu);
        let feeder = engine.add_process(Box::new(Feeder {
            q: infeed_q,
            n,
            tpu,
        }));
        engine.start(feeder);
        let mut sink = VecSink::new();
        engine.run(&mut sink);
        let checkpoints = ckpt_log.borrow().clone();
        let shutdowns = *shutdown_log.borrow();
        Harness {
            sink,
            catalog,
            metrics,
            checkpoints,
            shutdowns,
        }
    }

    #[test]
    fn steps_execute_and_mark() {
        let h = run_tpu(vec![StepKind::Train; 5], vec![], 100);
        assert_eq!(h.metrics.borrow().steps_completed, 5);
        assert_eq!(h.sink.steps.len(), 5);
        assert_eq!(h.shutdowns, 1);
        let _ = &h.catalog;
    }

    #[test]
    fn eval_steps_use_eval_costs() {
        let h = run_tpu(vec![StepKind::Train, StepKind::Eval], vec![], 100);
        let walls = &h.metrics.borrow().step_walls;
        assert!(walls[0] > walls[1], "train steps are longer than eval");
    }

    #[test]
    fn checkpoints_stall_and_resume() {
        let h = run_tpu(vec![StepKind::Train; 4], vec![2], 100);
        assert_eq!(h.checkpoints, vec![2]);
        assert_eq!(h.metrics.borrow().steps_completed, 4);
    }

    #[test]
    fn outfeed_fires_at_loop_boundaries() {
        let h = run_tpu(vec![StepKind::Train; 6], vec![], 2);
        let enq = h
            .sink
            .events
            .iter()
            .filter(|e| h.catalog.name(e.op) == "OutfeedEnqueueTuple")
            .count();
        assert_eq!(enq, 3);
    }

    #[test]
    fn busy_time_accumulates() {
        let h = run_tpu(vec![StepKind::Train; 3], vec![], 100);
        let m = h.metrics.borrow();
        // 3 steps x (0.1ms dequeue + 13ms ops).
        assert_eq!(m.tpu_busy.as_micros(), 3 * (100 + 13_000));
        assert_eq!(m.mxu_busy.as_micros(), 3 * 7_000);
    }
}
