//! The simulated processes that make up a training session.
//!
//! Data flows left to right through bounded queues:
//!
//! ```text
//! StorageReader → raw_q → DecodeStage → prefetch_q → InfeedEngine
//!     → infeed_q → TpuProc → outfeed_q → OutfeedConsumer
//! ```
//!
//! [`session::SessionProc`] brackets the pipeline with initialization and
//! shutdown, and services the TPU's checkpoint requests.

pub mod decode;
pub mod infeed;
pub mod outfeed;
pub mod session;
pub mod storage;
pub mod tpu;

/// Poke tags exchanged between actors.
pub mod tags {
    /// Session → pipeline actors: begin work.
    pub const START: u64 = 1;
    /// Session → TPU: checkpoint finished, continue stepping.
    pub const RESUME: u64 = 2;
    /// TPU → session: all steps done, tear the system down.
    pub const SHUTDOWN: u64 = u64::MAX;
    /// TPU → session: checkpoint request; the low bits carry the profile
    /// step number.
    pub const CHECKPOINT_BASE: u64 = 1 << 32;
}

use tpupoint_simcore::{OpId, SimDuration};

/// One operation of a compiled TPU step: interned name plus modeled
/// durations.
#[derive(Debug, Clone, Copy)]
pub struct StepOp {
    /// Interned profile name.
    pub op: OpId,
    /// Wall duration before jitter.
    pub dur: SimDuration,
    /// MXU-busy portion of `dur`.
    pub mxu: SimDuration,
}

/// A graph lowered to a flat schedule of timed operations.
#[derive(Debug, Clone, Default)]
pub struct StepCosts {
    /// Operations in execution order.
    pub ops: Vec<StepOp>,
    /// Sum of all op durations.
    pub total: SimDuration,
}

impl StepCosts {
    /// Builds the schedule from timed ops.
    pub fn new(ops: Vec<StepOp>) -> Self {
        let total = ops.iter().map(|o| o.dur).sum();
        StepCosts { ops, total }
    }
}
