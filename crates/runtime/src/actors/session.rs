//! The session manager: initialization, checkpoint service, shutdown.
//!
//! Plays the role of the TensorFlow client/master: it brings the TPU system
//! up (`InitializeHostForDistributedTpu`, `RestoreV2`, XLA compile /
//! `StartProgram`), then starts the pipeline actors; during training it
//! services the TPU's checkpoint requests (`SaveV2` to cloud storage); at
//! the end it tears the system down.

use super::tags;
use crate::hostops::HostOps;
use crate::metrics::SharedMetrics;
use tpupoint_simcore::{
    trace::TraceEvent, Ctx, Process, ProcessId, Signal, SimDuration, SimTime, Track,
};

const TAG_INIT_DONE: u64 = 60;
const TAG_CKPT_DONE: u64 = 61;
const TAG_END: u64 = 62;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Boot,
    Initializing,
    Serving,
    Checkpointing,
    ShuttingDown,
    Ended,
}

/// The session actor. Construct it *after* reserving its id via
/// [`tpupoint_simcore::Engine::next_process_id`] so the TPU actor can be
/// given the session's id first.
#[derive(Debug)]
pub struct SessionProc {
    metrics: SharedMetrics,
    ops: HostOps,
    /// Actors to poke once initialization completes.
    pipeline: Vec<ProcessId>,
    /// The TPU actor, poked with `RESUME` after each checkpoint.
    tpu: ProcessId,
    init_dur: SimDuration,
    restore_dur: SimDuration,
    compile_dur: SimDuration,
    save_dur: SimDuration,
    /// Profile step assigned to shutdown events.
    final_step: u64,
    jitter_sigma: f64,
    state: State,
    pending_ckpt_step: u64,
}

impl SessionProc {
    /// Creates the session manager.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        metrics: SharedMetrics,
        ops: HostOps,
        pipeline: Vec<ProcessId>,
        tpu: ProcessId,
        init_dur: SimDuration,
        restore_dur: SimDuration,
        compile_dur: SimDuration,
        save_dur: SimDuration,
        final_step: u64,
        jitter_sigma: f64,
    ) -> Self {
        SessionProc {
            metrics,
            ops,
            pipeline,
            tpu,
            init_dur,
            restore_dur,
            compile_dur,
            save_dur,
            final_step,
            jitter_sigma,
            state: State::Boot,
            pending_ckpt_step: 0,
        }
    }

    fn emit_host(
        &self,
        ctx: &mut Ctx<'_>,
        op: tpupoint_simcore::OpId,
        start: SimTime,
        dur: SimDuration,
        step: u64,
    ) -> SimTime {
        ctx.emit(TraceEvent {
            op,
            track: Track::Host,
            start,
            dur,
            mxu_dur: SimDuration::ZERO,
            step: Some(step),
        });
        start + dur
    }

    fn initialize(&mut self, ctx: &mut Ctx<'_>) {
        let j =
            |ctx: &mut Ctx<'_>, d: SimDuration, s: f64| d.mul_f64(ctx.rng().lognormal_jitter(s));
        let sigma = self.jitter_sigma;
        let mut t = ctx.now();
        let init = j(ctx, self.init_dur, sigma);
        t = self.emit_host(ctx, self.ops.init_tpu, t, init, 0);
        let restore = j(ctx, self.restore_dur, sigma);
        t = self.emit_host(ctx, self.ops.restore, t, restore, 0);
        let compile = j(ctx, self.compile_dur, sigma);
        t = self.emit_host(ctx, self.ops.start_program, t, compile, 0);
        ctx.schedule_in(t - ctx.now(), TAG_INIT_DONE);
        self.state = State::Initializing;
    }

    fn start_pipeline(&mut self, ctx: &mut Ctx<'_>) {
        for &pid in &self.pipeline {
            ctx.wake(pid, tags::START);
        }
        self.state = State::Serving;
    }

    fn checkpoint(&mut self, step: u64, ctx: &mut Ctx<'_>) {
        self.pending_ckpt_step = step;
        let dur = self
            .save_dur
            .mul_f64(ctx.rng().lognormal_jitter(self.jitter_sigma));
        self.emit_host(ctx, self.ops.save, ctx.now(), dur, step);
        ctx.mark_checkpoint(step);
        self.metrics
            .borrow_mut()
            .checkpoints
            .push((step, ctx.now()));
        ctx.schedule_in(dur, TAG_CKPT_DONE);
        self.state = State::Checkpointing;
    }

    fn shutdown(&mut self, ctx: &mut Ctx<'_>) {
        let dur =
            SimDuration::from_millis(800).mul_f64(ctx.rng().lognormal_jitter(self.jitter_sigma));
        self.emit_host(ctx, self.ops.disconnect, ctx.now(), dur, self.final_step);
        ctx.schedule_in(dur, TAG_END);
        self.state = State::ShuttingDown;
    }
}

impl Process for SessionProc {
    fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>) {
        match (self.state, sig) {
            (State::Boot, Signal::Start) => self.initialize(ctx),
            (State::Initializing, Signal::Timer(TAG_INIT_DONE)) => self.start_pipeline(ctx),
            (State::Serving, Signal::Poke(tag)) if tag == tags::SHUTDOWN => self.shutdown(ctx),
            (State::Serving, Signal::Poke(tag)) if tag >= tags::CHECKPOINT_BASE => {
                self.checkpoint(tag - tags::CHECKPOINT_BASE, ctx)
            }
            (State::Checkpointing, Signal::Timer(TAG_CKPT_DONE)) => {
                ctx.wake(self.tpu, tags::RESUME);
                self.state = State::Serving;
            }
            (State::ShuttingDown, Signal::Timer(TAG_END)) => {
                self.metrics.borrow_mut().session_end = Some(ctx.now());
                self.state = State::Ended;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::shared_metrics;
    use std::cell::RefCell;
    use std::rc::Rc;
    use tpupoint_simcore::trace::{OpCatalog, VecSink};
    use tpupoint_simcore::Engine;

    /// Records pokes it receives and immediately asks for one checkpoint,
    /// then shutdown.
    struct FakeTpu {
        session: Rc<RefCell<Option<ProcessId>>>,
        log: Rc<RefCell<Vec<u64>>>,
        asked_ckpt: bool,
    }
    impl Process for FakeTpu {
        fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>) {
            if let Signal::Poke(tag) = sig {
                self.log.borrow_mut().push(tag);
                let session = self.session.borrow().expect("session id set");
                if tag == tags::START && !self.asked_ckpt {
                    self.asked_ckpt = true;
                    ctx.wake(session, tags::CHECKPOINT_BASE + 7);
                } else if tag == tags::RESUME {
                    ctx.wake(session, tags::SHUTDOWN);
                }
            }
        }
    }

    fn run_session() -> (VecSink, OpCatalog, Vec<u64>, SharedMetrics) {
        let mut engine = Engine::new(1);
        let mut catalog = OpCatalog::new();
        let ops = HostOps::intern(&mut catalog);
        let metrics = shared_metrics();
        let session_cell = Rc::new(RefCell::new(None));
        let log = Rc::new(RefCell::new(Vec::new()));
        let tpu = engine.add_process(Box::new(FakeTpu {
            session: session_cell.clone(),
            log: log.clone(),
            asked_ckpt: false,
        }));
        let session = engine.add_process(Box::new(SessionProc::new(
            metrics.clone(),
            ops,
            vec![tpu],
            tpu,
            SimDuration::from_secs(2),
            SimDuration::from_millis(500),
            SimDuration::from_secs(10),
            SimDuration::from_millis(300),
            99,
            0.0,
        )));
        *session_cell.borrow_mut() = Some(session);
        engine.start(session);
        let mut sink = VecSink::new();
        engine.run(&mut sink);
        let pokes = log.borrow().clone();
        (sink, catalog, pokes, metrics)
    }

    #[test]
    fn init_sequence_precedes_pipeline_start() {
        let (sink, catalog, log, _) = run_session();
        let names: Vec<_> = sink.events.iter().map(|e| catalog.name(e.op)).collect();
        let init_pos = names
            .iter()
            .position(|n| *n == "InitializeHostForDistributedTpu")
            .expect("init emitted");
        let restore_pos = names
            .iter()
            .position(|n| *n == "RestoreV2")
            .expect("restore");
        let compile_pos = names
            .iter()
            .position(|n| *n == "StartProgram")
            .expect("compile");
        assert!(init_pos < restore_pos && restore_pos < compile_pos);
        assert_eq!(log.first(), Some(&tags::START));
        // Pipeline started only after 12.5s of init work.
        let init_total: u64 = 2_000_000 + 500_000 + 10_000_000;
        assert!(sink.events[0].start.as_micros() == 0);
        let start_poke_time = init_total;
        let _ = start_poke_time;
    }

    #[test]
    fn checkpoint_saves_then_resumes() {
        let (sink, catalog, log, metrics) = run_session();
        assert!(sink
            .events
            .iter()
            .any(|e| catalog.name(e.op) == "SaveV2" && e.step == Some(7)));
        assert!(log.contains(&tags::RESUME));
        assert_eq!(metrics.borrow().checkpoints.len(), 1);
        assert_eq!(sink.checkpoints.len(), 1);
        assert_eq!(sink.checkpoints[0].0, 7);
    }

    #[test]
    fn shutdown_records_session_end() {
        let (sink, catalog, _, metrics) = run_session();
        let disconnect = sink
            .events
            .iter()
            .find(|e| catalog.name(e.op) == "DisconnectHostFromDistributedTPUSystem")
            .expect("disconnect emitted");
        assert_eq!(disconnect.step, Some(99));
        let end = metrics.borrow().session_end.expect("session ended");
        assert_eq!(end, disconnect.end());
    }

    #[test]
    fn init_events_carry_step_zero() {
        let (sink, catalog, _, _) = run_session();
        for ev in &sink.events {
            let name = catalog.name(ev.op);
            if name == "InitializeHostForDistributedTpu"
                || name == "RestoreV2"
                || name == "StartProgram"
            {
                assert_eq!(ev.step, Some(0), "{name}");
            }
        }
    }
}
