//! The host decode/transform stage: the heart of data preparation.
//!
//! Models the parallel `tf.data` map stage as a single server whose service
//! time already accounts for `num_parallel_calls` worker threads (via the
//! host model's parallel-efficiency curve). Each batch emits the decode op
//! appropriate to the data kind followed by `host_transform_passes`
//! transform ops; occasionally a data-dependent *operator substitution*
//! swaps one transform for a different op, changing the step's operator set
//! the way ragged real-world inputs do.

use super::tags;
use crate::config::{DataKind, StepKind};
use crate::hostops::HostOps;
use std::rc::Rc;
use tpupoint_simcore::{
    trace::TraceEvent, Ctx, OpId, PopOutcome, Process, PushOutcome, QueueId, Signal, SimDuration,
    Track,
};

const TAG_WORK_DONE: u64 = 20;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    WaitingItem,
    Working,
    Pushing,
    Done,
}

/// Pops raw batches, spends the modeled decode+transform time, and pushes
/// prepared batches into the prefetch queue.
#[derive(Debug)]
pub struct DecodeStage {
    raw_q: QueueId,
    prefetch_q: QueueId,
    kind: DataKind,
    ops: HostOps,
    decode_dur: SimDuration,
    pass_dur: SimDuration,
    passes: u32,
    substitution_prob: f64,
    jitter_sigma: f64,
    /// Batches per pass over the dataset.
    epoch_steps: u64,
    /// Iterator-restart stall paid at each epoch boundary.
    epoch_stall: SimDuration,
    /// The step plan; evaluation batches skip augmentation and cost a
    /// fraction of a training batch on the host.
    plan: Rc<Vec<StepKind>>,
    state: State,
    current: u64,
}

/// Host-cost multiplier for evaluation batches (no augmentation, no
/// shuffling).
const EVAL_HOST_FACTOR: f64 = 0.3;

impl DecodeStage {
    /// Creates the stage.
    ///
    /// `decode_dur` and `pass_dur` are the per-batch durations of the
    /// decode op and of each transform pass, already adjusted for thread
    /// count and profiling overhead.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        raw_q: QueueId,
        prefetch_q: QueueId,
        kind: DataKind,
        ops: HostOps,
        decode_dur: SimDuration,
        pass_dur: SimDuration,
        passes: u32,
        substitution_prob: f64,
        jitter_sigma: f64,
        epoch_steps: u64,
        epoch_stall: SimDuration,
        plan: Rc<Vec<StepKind>>,
    ) -> Self {
        DecodeStage {
            raw_q,
            prefetch_q,
            kind,
            ops,
            decode_dur,
            pass_dur,
            passes,
            substitution_prob,
            jitter_sigma,
            epoch_steps: epoch_steps.max(1),
            epoch_stall,
            plan,
            state: State::Idle,
            current: 0,
        }
    }

    /// The decode op plus the roster of transform-pass ops for a data kind.
    fn op_roster(&self) -> (OpId, [OpId; 6]) {
        match self.kind {
            DataKind::Image => (
                self.ops.decode_jpeg,
                [
                    self.ops.resize_bicubic,
                    self.ops.cast,
                    self.ops.sub,
                    self.ops.maximum,
                    self.ops.minimum,
                    self.ops.cast,
                ],
            ),
            DataKind::Text => (
                self.ops.cast,
                [
                    self.ops.sub,
                    self.ops.maximum,
                    self.ops.minimum,
                    self.ops.cast,
                    self.ops.sub,
                    self.ops.maximum,
                ],
            ),
            DataKind::ImageDetection => (
                self.ops.decode_jpeg,
                [
                    self.ops.resize_bicubic,
                    self.ops.build_padded_output,
                    self.ops.cast,
                    self.ops.sub,
                    self.ops.maximum,
                    self.ops.minimum,
                ],
            ),
        }
    }

    fn take_next(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.try_pop(self.raw_q) {
            PopOutcome::Item(batch) => self.work_on(batch, ctx),
            PopOutcome::WouldBlock => self.state = State::WaitingItem,
            PopOutcome::Closed => {
                ctx.close_queue(self.prefetch_q);
                self.state = State::Done;
            }
        }
    }

    fn work_on(&mut self, batch: u64, ctx: &mut Ctx<'_>) {
        self.current = batch;
        let step = Some(batch + 1);
        let (decode_op, roster) = self.op_roster();
        // Graded, data-dependent operator substitutions: real pipelines
        // occasionally take different code paths (ragged records, retry
        // reads). A light substitution swaps one pass op; heavier ones
        // swap two or three ops, so consecutive-step similarities land at
        // roughly (n-1)/n, (n-2)/n, and (n-3)/n — spreading OLS phase
        // breaks across the high-threshold region of Figure 6.
        let light = ctx.rng().chance(self.substitution_prob);
        let heavy = light && ctx.rng().chance(0.35);
        let heavier = heavy && ctx.rng().chance(0.35);
        let mut t = ctx.now();

        // Epoch boundary: the input iterator restarts and the shuffle
        // buffer refills before this batch can decode.
        if batch > 0 && batch.is_multiple_of(self.epoch_steps) && !self.epoch_stall.is_zero() {
            let stall = self
                .epoch_stall
                .mul_f64(ctx.rng().lognormal_jitter(self.jitter_sigma));
            ctx.emit(TraceEvent {
                op: self.ops.iterator_get_next,
                track: Track::Host,
                start: t,
                dur: stall,
                mxu_dur: SimDuration::ZERO,
                step,
            });
            t += stall;
        }

        let eval_factor = match self.plan.get(batch as usize) {
            Some(StepKind::Eval) => EVAL_HOST_FACTOR,
            _ => 1.0,
        };
        let decode_emit = if heavier {
            self.ops.get_next_as_optional
        } else {
            decode_op
        };
        let d = self
            .decode_dur
            .mul_f64(eval_factor * ctx.rng().lognormal_jitter(self.jitter_sigma));
        ctx.emit(TraceEvent {
            op: decode_emit,
            track: Track::Host,
            start: t,
            dur: d,
            mxu_dur: SimDuration::ZERO,
            step,
        });
        t += d;

        for i in 0..self.passes as usize {
            let mut op = roster[i % roster.len()];
            if light && i + 1 == self.passes as usize {
                op = self.ops.lsra;
            }
            if heavy && i == 0 {
                op = self.ops.iterator_get_next;
            }
            let d = self
                .pass_dur
                .mul_f64(eval_factor * ctx.rng().lognormal_jitter(self.jitter_sigma));
            ctx.emit(TraceEvent {
                op,
                track: Track::Host,
                start: t,
                dur: d,
                mxu_dur: SimDuration::ZERO,
                step,
            });
            t += d;
        }
        ctx.schedule_in(t - ctx.now(), TAG_WORK_DONE);
        self.state = State::Working;
    }

    fn push_out(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.try_push(self.prefetch_q, self.current) {
            PushOutcome::Stored => self.take_next(ctx),
            PushOutcome::WouldBlock => self.state = State::Pushing,
        }
    }
}

impl Process for DecodeStage {
    fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>) {
        match (self.state, sig) {
            (State::Idle, Signal::Poke(tags::START)) => self.take_next(ctx),
            (State::WaitingItem, Signal::QueueReady(q)) if q == self.raw_q => self.take_next(ctx),
            (State::Working, Signal::Timer(TAG_WORK_DONE)) => self.push_out(ctx),
            (State::Pushing, Signal::QueueReady(q)) if q == self.prefetch_q => self.push_out(ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::trace::{OpCatalog, VecSink};
    use tpupoint_simcore::{Engine, ProcessId};

    struct Feeder {
        raw_q: QueueId,
        n: u64,
        target: ProcessId,
    }
    impl Process for Feeder {
        fn on_signal(&mut self, _sig: Signal, ctx: &mut Ctx<'_>) {
            for b in 0..self.n {
                assert_eq!(ctx.try_push(self.raw_q, b), PushOutcome::Stored);
            }
            ctx.close_queue(self.raw_q);
            ctx.wake(self.target, tags::START);
        }
    }

    fn run_stage(kind: DataKind, n: u64, passes: u32, sub_prob: f64) -> (VecSink, OpCatalog) {
        let mut engine = Engine::new(11);
        let raw_q = engine.create_queue(64);
        let prefetch_q = engine.create_queue(64);
        let mut catalog = OpCatalog::new();
        let ops = HostOps::intern(&mut catalog);
        let stage = engine.add_process(Box::new(DecodeStage::new(
            raw_q,
            prefetch_q,
            kind,
            ops,
            SimDuration::from_millis(5),
            SimDuration::from_millis(1),
            passes,
            sub_prob,
            0.0,
            u64::MAX,
            SimDuration::ZERO,
            std::rc::Rc::new(vec![crate::config::StepKind::Train; n as usize]),
        )));
        let feeder = engine.add_process(Box::new(Feeder {
            raw_q,
            n,
            target: stage,
        }));
        engine.start(feeder);
        let mut sink = VecSink::new();
        engine.run(&mut sink);
        (sink, catalog)
    }

    #[test]
    fn emits_decode_plus_passes_per_batch() {
        let (sink, _) = run_stage(DataKind::Image, 3, 2, 0.0);
        // 3 batches x (1 decode + 2 passes).
        assert_eq!(sink.events.len(), 9);
    }

    #[test]
    fn image_batches_lead_with_jpeg_decode() {
        let (sink, catalog) = run_stage(DataKind::Image, 1, 2, 0.0);
        assert_eq!(catalog.name(sink.events[0].op), "DecodeAndCropJpeg");
        assert_eq!(catalog.name(sink.events[1].op), "ResizeBicubic");
    }

    #[test]
    fn detection_batches_build_padded_outputs() {
        let (sink, catalog) = run_stage(DataKind::ImageDetection, 1, 3, 0.0);
        let names: Vec<_> = sink.events.iter().map(|e| catalog.name(e.op)).collect();
        assert!(names.contains(&"BuildPaddedOutput"));
    }

    #[test]
    fn text_batches_skip_image_ops() {
        let (sink, catalog) = run_stage(DataKind::Text, 2, 3, 0.0);
        for ev in &sink.events {
            let name = catalog.name(ev.op);
            assert_ne!(name, "DecodeAndCropJpeg");
            assert_ne!(name, "ResizeBicubic");
        }
    }

    #[test]
    fn substitution_swaps_the_final_pass() {
        let (sink, catalog) = run_stage(DataKind::Text, 50, 2, 1.0);
        // With probability 1.0 every batch's last pass becomes LSRAv2.
        let lsra = sink
            .events
            .iter()
            .filter(|e| catalog.name(e.op) == "LSRAv2")
            .count();
        assert_eq!(lsra, 50);
    }

    #[test]
    fn no_substitution_without_probability() {
        let (sink, catalog) = run_stage(DataKind::Text, 50, 2, 0.0);
        assert!(!sink.events.iter().any(|e| catalog.name(e.op) == "LSRAv2"));
    }

    #[test]
    fn epoch_boundaries_pay_the_iterator_restart_stall() {
        let mut engine = Engine::new(4);
        let raw_q = engine.create_queue(64);
        let prefetch_q = engine.create_queue(64);
        let mut catalog = OpCatalog::new();
        let ops = HostOps::intern(&mut catalog);
        // Epoch every 3 batches; stall of 5ms.
        let stage = engine.add_process(Box::new(DecodeStage::new(
            raw_q,
            prefetch_q,
            DataKind::Text,
            ops,
            SimDuration::from_millis(1),
            SimDuration::from_micros(100),
            1,
            0.0,
            0.0,
            3,
            SimDuration::from_millis(5),
            std::rc::Rc::new(vec![crate::config::StepKind::Train; 8]),
        )));
        let feeder = engine.add_process(Box::new(Feeder {
            raw_q,
            n: 8,
            target: stage,
        }));
        engine.start(feeder);
        let mut sink = VecSink::new();
        engine.run(&mut sink);
        // Batches 3 and 6 cross epoch boundaries → 2 IteratorGetNext
        // stall events of 5ms each.
        let stalls: Vec<_> = sink
            .events
            .iter()
            .filter(|e| catalog.name(e.op) == "IteratorGetNext")
            .collect();
        assert_eq!(stalls.len(), 2);
        assert!(stalls.iter().all(|e| e.dur.as_micros() == 5_000));
        assert_eq!(stalls[0].step, Some(4)); // batch index 3 → step 4
        assert_eq!(stalls[1].step, Some(7));
    }

    #[test]
    fn eval_batches_cost_a_fraction_of_train_batches() {
        let mut engine = Engine::new(4);
        let raw_q = engine.create_queue(64);
        let prefetch_q = engine.create_queue(64);
        let mut catalog = OpCatalog::new();
        let ops = HostOps::intern(&mut catalog);
        use crate::config::StepKind::{Eval, Train};
        let stage = engine.add_process(Box::new(DecodeStage::new(
            raw_q,
            prefetch_q,
            DataKind::Text,
            ops,
            SimDuration::from_millis(10),
            SimDuration::from_millis(1),
            1,
            0.0,
            0.0,
            u64::MAX,
            SimDuration::ZERO,
            std::rc::Rc::new(vec![Train, Eval]),
        )));
        let feeder = engine.add_process(Box::new(Feeder {
            raw_q,
            n: 2,
            target: stage,
        }));
        engine.start(feeder);
        let mut sink = VecSink::new();
        engine.run(&mut sink);
        let decode_durs: Vec<u64> = sink
            .events
            .iter()
            .filter(|e| catalog.name(e.op) == "Cast")
            .map(|e| e.dur.as_micros())
            .collect();
        // Train decode 10ms; eval decode 3ms (x0.3).
        assert_eq!(decode_durs[0], 10_000);
        assert_eq!(decode_durs[1], 3_000);
    }

    #[test]
    fn batch_events_are_time_ordered_within_a_batch() {
        let (sink, _) = run_stage(DataKind::Image, 1, 4, 0.0);
        for pair in sink.events.windows(2) {
            assert!(pair[1].start >= pair[0].end());
        }
    }
}
