//! The outfeed consumer: host side of the TPU→host result path.
//!
//! `OutfeedDequeueTuple` is emitted with a duration that includes the time
//! the host spent *waiting* for the TPU to produce results — the reason it
//! is the single most frequent top host operator in the paper's Table II.

use super::tags;
use crate::hostops::HostOps;
use tpupoint_simcore::{
    trace::TraceEvent, Ctx, PopOutcome, Process, QueueId, Signal, SimDuration, SimTime, Track,
};

const TAG_PROCESSED: u64 = 50;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    Waiting,
    Processing,
    Done,
}

/// Pops loop-boundary result tokens from the outfeed queue and performs the
/// host-side bookkeeping for each chunk (`RunGraph`, `Send`, `Recv`).
#[derive(Debug)]
pub struct OutfeedConsumer {
    outfeed_q: QueueId,
    ops: HostOps,
    run_graph_dur: SimDuration,
    rpc_dur: SimDuration,
    jitter_sigma: f64,
    state: State,
    wait_started: Option<SimTime>,
}

impl OutfeedConsumer {
    /// Creates the consumer; `run_graph_dur` is the host dispatch cost per
    /// loop chunk, `rpc_dur` the cost of each gRPC leg.
    pub fn new(
        outfeed_q: QueueId,
        ops: HostOps,
        run_graph_dur: SimDuration,
        rpc_dur: SimDuration,
        jitter_sigma: f64,
    ) -> Self {
        OutfeedConsumer {
            outfeed_q,
            ops,
            run_graph_dur,
            rpc_dur,
            jitter_sigma,
            state: State::Idle,
            wait_started: None,
        }
    }

    fn take_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.wait_started.is_none() {
            self.wait_started = Some(ctx.now());
        }
        match ctx.try_pop(self.outfeed_q) {
            PopOutcome::Item(step) => self.process(step, ctx),
            PopOutcome::WouldBlock => self.state = State::Waiting,
            PopOutcome::Closed => self.state = State::Done,
        }
    }

    fn process(&mut self, step: u64, ctx: &mut Ctx<'_>) {
        let started = self.wait_started.take().expect("wait start recorded");
        let step = Some(step);
        // Dequeue op: waiting time plus a small copy cost.
        let copy =
            SimDuration::from_micros(150).mul_f64(ctx.rng().lognormal_jitter(self.jitter_sigma));
        let deq_dur = (ctx.now() - started) + copy;
        ctx.emit(TraceEvent {
            op: self.ops.outfeed_dequeue,
            track: Track::Host,
            start: started,
            dur: deq_dur,
            mxu_dur: SimDuration::ZERO,
            step,
        });
        let mut t = ctx.now() + copy;
        for (op, dur) in [
            (self.ops.run_graph, self.run_graph_dur),
            (self.ops.send, self.rpc_dur),
            (self.ops.recv, self.rpc_dur),
        ] {
            let dur = dur.mul_f64(ctx.rng().lognormal_jitter(self.jitter_sigma));
            ctx.emit(TraceEvent {
                op,
                track: Track::Host,
                start: t,
                dur,
                mxu_dur: SimDuration::ZERO,
                step,
            });
            t += dur;
        }
        ctx.schedule_in(t - ctx.now(), TAG_PROCESSED);
        self.state = State::Processing;
    }
}

impl Process for OutfeedConsumer {
    fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>) {
        match (self.state, sig) {
            (State::Idle, Signal::Poke(tags::START)) => self.take_next(ctx),
            (State::Waiting, Signal::QueueReady(q)) if q == self.outfeed_q => self.take_next(ctx),
            (State::Processing, Signal::Timer(TAG_PROCESSED)) => self.take_next(ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::trace::{OpCatalog, VecSink};
    use tpupoint_simcore::{Engine, ProcessId, PushOutcome, SimDuration};

    /// Pushes chunk tokens with a gap, then closes.
    struct SlowProducer {
        q: QueueId,
        n: u64,
        gap: SimDuration,
        sent: u64,
        target: ProcessId,
        kicked: bool,
    }
    impl Process for SlowProducer {
        fn on_signal(&mut self, _sig: Signal, ctx: &mut Ctx<'_>) {
            if !self.kicked {
                self.kicked = true;
                ctx.wake(self.target, tags::START);
            }
            if self.sent == self.n {
                ctx.close_queue(self.q);
                return;
            }
            assert_eq!(ctx.try_push(self.q, self.sent + 1), PushOutcome::Stored);
            self.sent += 1;
            ctx.schedule_in(self.gap, 0);
        }
    }

    fn run_consumer(n: u64, gap_ms: u64) -> (VecSink, OpCatalog) {
        let mut engine = Engine::new(8);
        let q = engine.create_queue(16);
        let mut catalog = OpCatalog::new();
        let ops = HostOps::intern(&mut catalog);
        let consumer = engine.add_process(Box::new(OutfeedConsumer::new(
            q,
            ops,
            SimDuration::from_millis(1),
            SimDuration::from_micros(200),
            0.0,
        )));
        let producer = engine.add_process(Box::new(SlowProducer {
            q,
            n,
            gap: SimDuration::from_millis(gap_ms),
            sent: 0,
            target: consumer,
            kicked: false,
        }));
        engine.start(producer);
        let mut sink = VecSink::new();
        engine.run(&mut sink);
        (sink, catalog)
    }

    #[test]
    fn each_chunk_produces_the_host_quartet() {
        let (sink, catalog) = run_consumer(3, 0);
        let count = |name: &str| {
            sink.events
                .iter()
                .filter(|e| catalog.name(e.op) == name)
                .count()
        };
        assert_eq!(count("OutfeedDequeueTuple"), 3);
        assert_eq!(count("RunGraph"), 3);
        assert_eq!(count("Send"), 3);
        assert_eq!(count("Recv"), 3);
    }

    #[test]
    fn dequeue_duration_absorbs_waiting() {
        // Producer emits every 50ms; consumer processes in ~1.4ms, so each
        // dequeue waits ~48ms.
        let (sink, catalog) = run_consumer(3, 50);
        let waits: Vec<u64> = sink
            .events
            .iter()
            .filter(|e| catalog.name(e.op) == "OutfeedDequeueTuple")
            .map(|e| e.dur.as_micros())
            .collect();
        assert!(
            waits.iter().skip(1).all(|&w| w > 40_000),
            "dequeues should absorb producer gaps: {waits:?}"
        );
    }

    #[test]
    fn immediate_items_cost_only_copy_time() {
        let (sink, catalog) = run_consumer(2, 0);
        let first = sink
            .events
            .iter()
            .find(|e| catalog.name(e.op) == "OutfeedDequeueTuple")
            .expect("dequeue present");
        assert!(first.dur.as_micros() <= 200);
    }
}
