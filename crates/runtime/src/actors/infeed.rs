//! The infeed engine: moves prepared batches into the TPU's hardware
//! infeed queue.
//!
//! `TransferBufferToInfeedLocked` — the most time-consuming host operator
//! in the paper's Table II — is emitted with a duration that *includes any
//! time spent blocked on a full infeed queue*, exactly as the real locked
//! transfer does. When the TPU is the bottleneck this op therefore absorbs
//! the host's wait time and rises to the top of the host rankings.

use super::tags;
use crate::hostops::HostOps;
use tpupoint_simcore::{
    trace::TraceEvent, Ctx, PopOutcome, Process, PushOutcome, QueueId, Signal, SimDuration,
    SimTime, Track,
};

const TAG_PREP_DONE: u64 = 30;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    WaitingItem,
    Preparing,
    PushWait,
    Done,
}

/// Pops prepared batches, linearizes them, performs the infeed transfer,
/// and pushes into the hardware infeed queue.
#[derive(Debug)]
pub struct InfeedEngine {
    prefetch_q: QueueId,
    infeed_q: QueueId,
    ops: HostOps,
    linearize_dur: SimDuration,
    enqueue_dur: SimDuration,
    transfer_dur: SimDuration,
    jitter_sigma: f64,
    state: State,
    current: u64,
    transfer_started: SimTime,
}

impl InfeedEngine {
    /// Creates the engine. `transfer_dur` is the unblocked wire time of one
    /// batch over the infeed link.
    pub fn new(
        prefetch_q: QueueId,
        infeed_q: QueueId,
        ops: HostOps,
        linearize_dur: SimDuration,
        transfer_dur: SimDuration,
        jitter_sigma: f64,
    ) -> Self {
        InfeedEngine {
            prefetch_q,
            infeed_q,
            ops,
            linearize_dur,
            enqueue_dur: SimDuration::from_micros(50),
            transfer_dur,
            jitter_sigma,
            state: State::Idle,
            current: 0,
            transfer_started: SimTime::ZERO,
        }
    }

    fn take_next(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.try_pop(self.prefetch_q) {
            PopOutcome::Item(batch) => self.prepare(batch, ctx),
            PopOutcome::WouldBlock => self.state = State::WaitingItem,
            PopOutcome::Closed => {
                ctx.close_queue(self.infeed_q);
                self.state = State::Done;
            }
        }
    }

    fn prepare(&mut self, batch: u64, ctx: &mut Ctx<'_>) {
        self.current = batch;
        let step = Some(batch + 1);
        let mut t = ctx.now();
        let lin = self
            .linearize_dur
            .mul_f64(ctx.rng().lognormal_jitter(self.jitter_sigma));
        ctx.emit(TraceEvent {
            op: self.ops.linearize,
            track: Track::Host,
            start: t,
            dur: lin,
            mxu_dur: SimDuration::ZERO,
            step,
        });
        t += lin;
        ctx.emit(TraceEvent {
            op: self.ops.infeed_enqueue,
            track: Track::Host,
            start: t,
            dur: self.enqueue_dur,
            mxu_dur: SimDuration::ZERO,
            step,
        });
        t += self.enqueue_dur;
        self.transfer_started = t;
        let wire = self
            .transfer_dur
            .mul_f64(ctx.rng().lognormal_jitter(self.jitter_sigma));
        ctx.schedule_in((t + wire) - ctx.now(), TAG_PREP_DONE);
        self.state = State::Preparing;
    }

    fn push_out(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.try_push(self.infeed_q, self.current) {
            PushOutcome::Stored => {
                // Duration spans the wire transfer plus any blocked time.
                ctx.emit(TraceEvent {
                    op: self.ops.transfer_to_infeed,
                    track: Track::Host,
                    start: self.transfer_started,
                    dur: ctx.now() - self.transfer_started,
                    mxu_dur: SimDuration::ZERO,
                    step: Some(self.current + 1),
                });
                self.take_next(ctx);
            }
            PushOutcome::WouldBlock => self.state = State::PushWait,
        }
    }
}

impl Process for InfeedEngine {
    fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>) {
        match (self.state, sig) {
            (State::Idle, Signal::Poke(tags::START)) => self.take_next(ctx),
            (State::WaitingItem, Signal::QueueReady(q)) if q == self.prefetch_q => {
                self.take_next(ctx)
            }
            (State::Preparing, Signal::Timer(TAG_PREP_DONE)) => self.push_out(ctx),
            (State::PushWait, Signal::QueueReady(q)) if q == self.infeed_q => self.push_out(ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::trace::{OpCatalog, VecSink};
    use tpupoint_simcore::{Engine, ProcessId};

    struct Feeder {
        q: QueueId,
        n: u64,
        target: ProcessId,
    }
    impl Process for Feeder {
        fn on_signal(&mut self, _sig: Signal, ctx: &mut Ctx<'_>) {
            for b in 0..self.n {
                assert_eq!(ctx.try_push(self.q, b), PushOutcome::Stored);
            }
            ctx.close_queue(self.q);
            ctx.wake(self.target, tags::START);
        }
    }

    /// A consumer that drains the infeed queue at a fixed service rate.
    struct SlowDrain {
        q: QueueId,
        service: SimDuration,
        busy: bool,
    }
    impl Process for SlowDrain {
        fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>) {
            if matches!(sig, Signal::Timer(_)) {
                self.busy = false;
            }
            if self.busy {
                return;
            }
            if let PopOutcome::Item(_) = ctx.try_pop(self.q) {
                self.busy = true;
                ctx.schedule_in(self.service, 0);
            }
        }
    }

    fn run_infeed(n: u64, infeed_cap: usize, drain_ms: u64) -> (VecSink, OpCatalog) {
        let mut engine = Engine::new(5);
        let prefetch_q = engine.create_queue(64);
        let infeed_q = engine.create_queue(infeed_cap);
        let mut catalog = OpCatalog::new();
        let ops = HostOps::intern(&mut catalog);
        let eng = engine.add_process(Box::new(InfeedEngine::new(
            prefetch_q,
            infeed_q,
            ops,
            SimDuration::from_micros(200),
            SimDuration::from_millis(1),
            0.0,
        )));
        let feeder = engine.add_process(Box::new(Feeder {
            q: prefetch_q,
            n,
            target: eng,
        }));
        let drain = engine.add_process(Box::new(SlowDrain {
            q: infeed_q,
            service: SimDuration::from_millis(drain_ms),
            busy: false,
        }));
        engine.start(feeder);
        engine.start(drain);
        let mut sink = VecSink::new();
        engine.run(&mut sink);
        (sink, catalog)
    }

    fn transfer_durs(sink: &VecSink, catalog: &OpCatalog) -> Vec<u64> {
        sink.events
            .iter()
            .filter(|e| catalog.name(e.op) == "TransferBufferToInfeedLocked")
            .map(|e| e.dur.as_micros())
            .collect()
    }

    #[test]
    fn all_batches_transfer_in_order() {
        let (sink, catalog) = run_infeed(5, 8, 0);
        let durs = transfer_durs(&sink, &catalog);
        assert_eq!(durs.len(), 5);
        // Unblocked: duration == wire time.
        assert!(durs.iter().all(|&d| d == 1_000), "durs: {durs:?}");
    }

    #[test]
    fn blocked_transfers_absorb_wait_time() {
        // Queue of 1, drained every 10ms while the wire takes 1ms: the
        // engine blocks on a full queue and the locked transfer op grows.
        let (sink, catalog) = run_infeed(4, 1, 10);
        let durs = transfer_durs(&sink, &catalog);
        assert_eq!(durs.len(), 4);
        assert!(
            durs.iter().skip(1).any(|&d| d > 5_000),
            "later transfers should include blocking: {durs:?}"
        );
    }

    #[test]
    fn linearize_precedes_transfer() {
        let (sink, catalog) = run_infeed(1, 8, 0);
        let names: Vec<_> = sink.events.iter().map(|e| catalog.name(e.op)).collect();
        let lin = names.iter().position(|n| *n == "LinearizeX32");
        let tx = names
            .iter()
            .position(|n| *n == "TransferBufferToInfeedLocked");
        assert!(lin.expect("linearize present") < tx.expect("transfer present"));
    }
}
