//! Host-side operation vocabulary.
//!
//! These are the CPU-side operator names that appear in real Cloud TPU
//! profiles (the "Host Operations" rows of Table II in the paper). The TPU
//! side's names come from [`tpupoint_graph::OpKind`]; the host side has no
//! graph, so its ops are declared here and interned into the shared
//! [`OpCatalog`] at job setup.

use tpupoint_simcore::trace::{OpAttrs, OpCatalog};
use tpupoint_simcore::OpId;

/// Blocking dequeue of step results from the TPU outfeed. Its duration
/// includes the time spent *waiting* for the TPU, which is why it tops the
/// paper's host-operator rankings.
pub const OUTFEED_DEQUEUE_TUPLE: &str = "OutfeedDequeueTuple";
/// Blocking transfer of a prepared batch into the hardware infeed queue;
/// the other headline host operator.
pub const TRANSFER_BUFFER_TO_INFEED_LOCKED: &str = "TransferBufferToInfeedLocked";
/// Session-level graph dispatch for one `iterations_per_loop` chunk.
pub const RUN_GRAPH: &str = "RunGraph";
/// gRPC send to the TPU worker.
pub const SEND: &str = "Send";
/// gRPC receive from the TPU worker.
pub const RECV: &str = "Recv";
/// Flattening/linearization of a batch into infeed wire format.
pub const LINEARIZE_X32: &str = "LinearizeX32";
/// Internal host runtime bookkeeping op observed in real profiles.
pub const LSRA_V2: &str = "LSRAv2";
/// Host-side enqueue notification paired with the infeed transfer.
pub const INFEED_ENQUEUE_TUPLE: &str = "InfeedEnqueueTuple";
/// One-time TPU system initialization.
pub const INITIALIZE_HOST_FOR_DISTRIBUTED_TPU: &str = "InitializeHostForDistributedTpu";
/// Checkpoint restore from cloud storage.
pub const RESTORE_V2: &str = "RestoreV2";
/// Checkpoint save to cloud storage.
pub const SAVE_V2: &str = "SaveV2";
/// One-time TPU system teardown.
pub const DISCONNECT_HOST_FROM_DISTRIBUTED_TPU_SYSTEM: &str =
    "DisconnectHostFromDistributedTPUSystem";
/// XLA program upload/launch at session start.
pub const START_PROGRAM: &str = "StartProgram";
/// Padding of ragged host outputs (detection workloads).
pub const BUILD_PADDED_OUTPUT: &str = "BuildPaddedOutput";
/// JPEG decode plus crop (image input pipelines).
pub const DECODE_AND_CROP_JPEG: &str = "DecodeAndCropJpeg";
/// Bicubic image resize (image input pipelines).
pub const RESIZE_BICUBIC: &str = "ResizeBicubic";
/// Host tensor transform: element-wise maximum (augmentation/clipping).
pub const MAXIMUM: &str = "Maximum";
/// Host tensor transform: element-wise minimum.
pub const MINIMUM: &str = "Minimum";
/// Host tensor transform: subtraction (normalization).
pub const SUB: &str = "Sub";
/// Host tensor transform: dtype cast.
pub const CAST: &str = "Cast";
/// Storage read of raw records.
pub const STORAGE_READ: &str = "StorageRead";
/// `tf.data` iterator pull observed when the pipeline restructures.
pub const ITERATOR_GET_NEXT: &str = "IteratorGetNext";
/// Optional-iterator pull observed on ragged/data-dependent batches.
pub const GET_NEXT_AS_OPTIONAL: &str = "GetNextAsOptional";

/// Interned host op ids, created once per job.
#[derive(Debug, Clone, Copy)]
pub struct HostOps {
    pub outfeed_dequeue: OpId,
    pub transfer_to_infeed: OpId,
    pub run_graph: OpId,
    pub send: OpId,
    pub recv: OpId,
    pub linearize: OpId,
    pub lsra: OpId,
    pub infeed_enqueue: OpId,
    pub init_tpu: OpId,
    pub restore: OpId,
    pub save: OpId,
    pub disconnect: OpId,
    pub start_program: OpId,
    pub build_padded_output: OpId,
    pub decode_jpeg: OpId,
    pub resize_bicubic: OpId,
    pub maximum: OpId,
    pub minimum: OpId,
    pub sub: OpId,
    pub cast: OpId,
    pub storage_read: OpId,
    pub iterator_get_next: OpId,
    pub get_next_as_optional: OpId,
}

impl HostOps {
    /// Interns every host op into `catalog`.
    pub fn intern(catalog: &mut OpCatalog) -> HostOps {
        let mut op = |name: &str| catalog.intern(name, OpAttrs { uses_mxu: false });
        HostOps {
            outfeed_dequeue: op(OUTFEED_DEQUEUE_TUPLE),
            transfer_to_infeed: op(TRANSFER_BUFFER_TO_INFEED_LOCKED),
            run_graph: op(RUN_GRAPH),
            send: op(SEND),
            recv: op(RECV),
            linearize: op(LINEARIZE_X32),
            lsra: op(LSRA_V2),
            infeed_enqueue: op(INFEED_ENQUEUE_TUPLE),
            init_tpu: op(INITIALIZE_HOST_FOR_DISTRIBUTED_TPU),
            restore: op(RESTORE_V2),
            save: op(SAVE_V2),
            disconnect: op(DISCONNECT_HOST_FROM_DISTRIBUTED_TPU_SYSTEM),
            start_program: op(START_PROGRAM),
            build_padded_output: op(BUILD_PADDED_OUTPUT),
            decode_jpeg: op(DECODE_AND_CROP_JPEG),
            resize_bicubic: op(RESIZE_BICUBIC),
            maximum: op(MAXIMUM),
            minimum: op(MINIMUM),
            sub: op(SUB),
            cast: op(CAST),
            storage_read: op(STORAGE_READ),
            iterator_get_next: op(ITERATOR_GET_NEXT),
            get_next_as_optional: op(GET_NEXT_AS_OPTIONAL),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_registers_all_names() {
        let mut catalog = OpCatalog::new();
        let ops = HostOps::intern(&mut catalog);
        assert_eq!(catalog.name(ops.outfeed_dequeue), OUTFEED_DEQUEUE_TUPLE);
        assert_eq!(
            catalog.name(ops.transfer_to_infeed),
            TRANSFER_BUFFER_TO_INFEED_LOCKED
        );
        assert_eq!(catalog.name(ops.storage_read), STORAGE_READ);
        assert!(catalog.len() >= 23);
    }

    #[test]
    fn host_ops_never_use_mxu() {
        let mut catalog = OpCatalog::new();
        let ops = HostOps::intern(&mut catalog);
        assert!(!catalog.attrs(ops.outfeed_dequeue).uses_mxu);
        assert!(!catalog.attrs(ops.decode_jpeg).uses_mxu);
    }

    #[test]
    fn interning_twice_is_stable() {
        let mut catalog = OpCatalog::new();
        let a = HostOps::intern(&mut catalog);
        let b = HostOps::intern(&mut catalog);
        assert_eq!(a.save, b.save);
        assert_eq!(a.recv, b.recv);
    }
}
