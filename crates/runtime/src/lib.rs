//! # tpupoint-runtime
//!
//! The TPUEstimator-style training-job executor. This crate stands in for
//! the TensorFlow + Cloud-TPU runtime stack: given a model graph, an input
//! pipeline, a dataset descriptor, and a TPU generation, it simulates an
//! entire training session on the discrete-event engine and streams a
//! profile-grade event trace — the exact surface the real TPUPoint-Profiler
//! taps via the Cloud TPU profiling service.
//!
//! A simulated session reproduces the structure of a real one:
//!
//! 1. **Initialization** — `InitializeHostForDistributedTpu`, `RestoreV2`
//!    from cloud storage, an XLA compile (`RunGraph`), `StartProgram`.
//! 2. **The steady pipeline** — a storage reader, a parallel decode stage,
//!    and an infeed engine feed batches through bounded buffers to the TPU
//!    actor, which executes the (fused) graph once per step; every
//!    `iterations_per_loop` steps results flow back through the outfeed.
//! 3. **Interruptions** — periodic evaluation segments, checkpoint saves
//!    (`SaveV2`) that stall the TPU, warm-up steps that run slower, and
//!    occasional operator substitutions that real data-dependent pipelines
//!    exhibit.
//! 4. **Shutdown** — final save and `DisconnectHostFromDistributedTPUSystem`.
//!
//! The emitted trace carries per-op wall/MXU durations and step numbers, so
//! the profiler can compute exactly the statistics the paper's profiler
//! records: per-step operator histograms, TPU idle time, and MXU
//! utilization.
//!
//! ```
//! use tpupoint_runtime::{JobConfig, TrainingJob};
//! use tpupoint_simcore::trace::NullSink;
//!
//! let config = JobConfig::demo(); // small MLP training job
//! let report = TrainingJob::new(config).run(&mut NullSink);
//! assert!(report.steps_completed > 0);
//! assert!(report.tpu_idle_fraction() >= 0.0 && report.tpu_idle_fraction() <= 1.0);
//! ```

pub mod actors;
pub mod config;
pub mod fleet;
pub mod hostops;
pub mod job;
pub mod live;
pub mod metrics;

pub use config::{DataKind, DatasetSpec, JobConfig, StepKind};
pub use fleet::{
    valid_job_id, AdmitError, Fleet, FleetLimits, JobControl, JobPhase, JobRunner, JobSpec,
    JobStatus, AGGREGATE_JOB_ID,
};
pub use job::{RunReport, TrainingJob};
pub use live::{LiveSink, LiveStatus};
