//! Wall-clock lane for serve mode: live run status and a pacing sink.
//!
//! Batch runs complete as fast as the host allows — the simulated clock is
//! the only notion of time. A long-running `tpupoint serve` job instead
//! wants the simulation to *unfold* on the wall clock so a scraper watching
//! `/metrics` and `/status` sees a training job in motion. [`LiveSink`]
//! provides that lane: it forwards every trace callback to an inner
//! [`TraceSink`] unchanged (so the recorded profile is byte-identical to a
//! batch run of the same seed) while
//!
//! * pacing the run by sleeping a fixed real duration per training step,
//! * tracking an *online* OLS phase estimate — the same Eq. 1 similarity
//!   the analyzer applies offline, here over consecutive steps' operator
//!   sets — and
//! * publishing progress into a shared [`LiveStatus`] that the HTTP status
//!   hook reads from another thread.
//!
//! A cooperative quit flag cancels the pacing (and only the pacing): once
//! shutdown is requested the job rushes through its remaining steps at
//! batch speed, so graceful shutdown still produces the complete,
//! deterministic record set.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tpupoint_simcore::trace::{TraceEvent, TraceSink};
use tpupoint_simcore::{OpId, SimTime};

/// Progress of a live run, shared between the recording thread (writer)
/// and the HTTP status hook (reader).
#[derive(Debug, Default)]
pub struct LiveStatus {
    step: AtomicU64,
    phase: AtomicU64,
    phase_changes: AtomicU64,
    checkpoints: AtomicU64,
    stream_phases: AtomicU64,
    stream_stable_for: AtomicU64,
    done: AtomicBool,
}

impl LiveStatus {
    /// A fresh status at step 0, phase 0.
    pub fn new() -> Arc<LiveStatus> {
        Arc::new(LiveStatus::default())
    }

    /// Latest training step the runtime announced.
    pub fn current_step(&self) -> u64 {
        self.step.load(Ordering::Relaxed)
    }

    /// Current online OLS phase index (0-based; increments at each
    /// detected boundary).
    pub fn ols_phase(&self) -> u64 {
        self.phase.load(Ordering::Relaxed)
    }

    /// Phase boundaries detected so far (== [`Self::ols_phase`], kept as
    /// its own accessor for readability at call sites).
    pub fn phase_changes(&self) -> u64 {
        self.phase_changes.load(Ordering::Relaxed)
    }

    /// Checkpoints written so far.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Phases the streaming analyzer currently distinguishes (0 until
    /// its first update).
    pub fn stream_phases(&self) -> u64 {
        self.stream_phases.load(Ordering::Relaxed)
    }

    /// Consecutive streaming-analyzer updates whose phase assignments
    /// stayed stable — the `--stop-on-stable` early-exit counter.
    pub fn stream_stable_for(&self) -> u64 {
        self.stream_stable_for.load(Ordering::Relaxed)
    }

    /// Publishes the streaming analyzer's latest state (called from the
    /// profiler's seal-observer hook on the simulation thread).
    pub fn set_stream_state(&self, phases: u64, stable_for: u64) {
        self.stream_phases.store(phases, Ordering::Relaxed);
        self.stream_stable_for.store(stable_for, Ordering::Relaxed);
    }

    /// Whether the job has finished (set by the serve driver after the
    /// run returns).
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Relaxed)
    }

    /// Marks the job finished.
    pub fn set_done(&self) {
        self.done.store(true, Ordering::Relaxed);
    }
}

/// The pacing/status decorator around a recording [`TraceSink`]; see the
/// module docs.
pub struct LiveSink<S: TraceSink> {
    inner: S,
    status: Arc<LiveStatus>,
    quit: Arc<AtomicBool>,
    pace: Duration,
    /// Eq. 1 similarity threshold below which consecutive steps are
    /// declared to belong to different phases.
    threshold: f64,
    prev_ops: BTreeSet<OpId>,
    cur_ops: BTreeSet<OpId>,
    seen_step: bool,
}

impl<S: TraceSink> LiveSink<S> {
    /// Wraps `inner`, sleeping `pace` per step until `quit` is set and
    /// publishing progress into `status`.
    pub fn new(
        inner: S,
        status: Arc<LiveStatus>,
        quit: Arc<AtomicBool>,
        pace: Duration,
        threshold: f64,
    ) -> Self {
        LiveSink {
            inner,
            status,
            quit,
            pace,
            threshold,
            prev_ops: BTreeSet::new(),
            cur_ops: BTreeSet::new(),
            seen_step: false,
        }
    }

    /// Unwraps the recording sink (serve finishes it after the run).
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Eq. 1 of the paper over the two most recent steps' operator sets:
    /// `|A ∩ B| / min(|A|, |B|)`. Two empty sets are trivially similar.
    fn similarity(a: &BTreeSet<OpId>, b: &BTreeSet<OpId>) -> f64 {
        let min = a.len().min(b.len());
        if min == 0 {
            return if a.len() == b.len() { 1.0 } else { 0.0 };
        }
        a.intersection(b).count() as f64 / min as f64
    }

    /// Closes out the step that just ended: updates the online phase
    /// estimate from its operator set.
    fn roll_phase(&mut self) {
        if self.seen_step && Self::similarity(&self.prev_ops, &self.cur_ops) < self.threshold {
            self.status.phase.fetch_add(1, Ordering::Relaxed);
            self.status.phase_changes.fetch_add(1, Ordering::Relaxed);
        }
        self.prev_ops = std::mem::take(&mut self.cur_ops);
        self.seen_step = true;
    }
}

impl<S: TraceSink> TraceSink for LiveSink<S> {
    fn record(&mut self, event: &TraceEvent) {
        if event.step.is_some() {
            self.cur_ops.insert(event.op);
        }
        self.inner.record(event);
    }

    fn on_step(&mut self, step: u64, at: SimTime) {
        // `on_step` announces the *start* of `step`; everything gathered in
        // cur_ops belongs to the step that just ended.
        if step > 0 {
            self.roll_phase();
        }
        self.status.step.store(step, Ordering::Relaxed);
        self.inner.on_step(step, at);
        if !self.quit.load(Ordering::Relaxed) && !self.pace.is_zero() {
            std::thread::sleep(self.pace);
        }
    }

    fn on_checkpoint(&mut self, step: u64, at: SimTime) {
        self.status.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.inner.on_checkpoint(step, at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JobConfig, TrainingJob};
    use tpupoint_simcore::trace::VecSink;
    use tpupoint_simcore::{SimDuration, Track};

    fn live(pace: Duration) -> (LiveSink<VecSink>, Arc<LiveStatus>, Arc<AtomicBool>) {
        let status = LiveStatus::new();
        let quit = Arc::new(AtomicBool::new(false));
        let sink = LiveSink::new(
            VecSink::new(),
            Arc::clone(&status),
            Arc::clone(&quit),
            pace,
            0.7,
        );
        (sink, status, quit)
    }

    fn event(op: u32, step: u64) -> TraceEvent {
        TraceEvent {
            op: OpId(op),
            track: Track::Host,
            start: SimTime::from_micros(step * 100),
            dur: SimDuration::from_micros(10),
            mxu_dur: SimDuration::ZERO,
            step: Some(step),
        }
    }

    #[test]
    fn forwards_everything_and_tracks_steps() {
        let (mut sink, status, _quit) = live(Duration::ZERO);
        let report = TrainingJob::new(JobConfig::demo()).run(&mut sink);
        assert!(report.steps_completed > 0);
        let inner = sink.into_inner();
        let last_marker = inner.steps.last().expect("steps announced").0;
        assert_eq!(status.current_step(), last_marker);
        assert!(!inner.events.is_empty(), "events forwarded");
        assert_eq!(
            inner.steps.len() as u64,
            report.steps_completed,
            "step markers forwarded"
        );
    }

    #[test]
    fn live_profile_matches_a_batch_run_exactly() {
        let (mut sink, _status, _quit) = live(Duration::ZERO);
        TrainingJob::new(JobConfig::demo()).run(&mut sink);
        let mut batch = VecSink::new();
        TrainingJob::new(JobConfig::demo()).run(&mut batch);
        let paced = sink.into_inner();
        assert_eq!(paced.events, batch.events);
        assert_eq!(paced.steps, batch.steps);
        assert_eq!(paced.checkpoints, batch.checkpoints);
    }

    #[test]
    fn phase_boundary_fires_when_op_sets_diverge() {
        let (mut sink, status, _quit) = live(Duration::ZERO);
        // Steps 0-1 share ops {0,1,2}; step 2 switches to {7,8,9}.
        for step in 0..2u64 {
            sink.on_step(step, SimTime::from_micros(step * 100));
            for op in 0..3 {
                sink.record(&event(op, step));
            }
        }
        sink.on_step(2, SimTime::from_micros(200));
        assert_eq!(status.ols_phase(), 0, "identical op sets, one phase");
        for op in 7..10 {
            sink.record(&event(op, 2));
        }
        sink.on_step(3, SimTime::from_micros(300));
        assert_eq!(status.ols_phase(), 1, "disjoint op set is a boundary");
        assert_eq!(status.phase_changes(), 1);
    }

    #[test]
    fn pacing_sleeps_until_quit_is_requested() {
        let (mut sink, _status, quit) = live(Duration::from_millis(5));
        let start = std::time::Instant::now();
        for step in 0..3 {
            sink.on_step(step, SimTime::from_micros(step * 100));
        }
        assert!(start.elapsed() >= Duration::from_millis(15), "paced");
        quit.store(true, Ordering::Relaxed);
        let start = std::time::Instant::now();
        for step in 3..60 {
            sink.on_step(step, SimTime::from_micros(step * 100));
        }
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "quit cancels pacing and the run rushes to completion"
        );
    }

    #[test]
    fn done_flag_round_trips() {
        let status = LiveStatus::new();
        assert!(!status.is_done());
        status.set_done();
        assert!(status.is_done());
    }
}
