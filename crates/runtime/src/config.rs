//! Job configuration: dataset descriptors, training schedules, and the
//! complete description of a simulated training session.

use serde::{Deserialize, Serialize};
use tpupoint_graph::{DType, Graph, GraphBuilder, OpKind, PipelineSpec, Shape};
use tpupoint_hw::{HostSpec, TpuChipSpec};

/// Broad class of input data; selects which host preprocessing ops appear
/// in the trace and how expensive decoding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataKind {
    /// JPEG-like images (decode + resize pipelines).
    Image,
    /// Tokenized text (cheap decode, padding/masking transforms).
    Text,
    /// Images plus variable-size annotations (detection workloads); adds
    /// padded-output construction and more op-set variability.
    ImageDetection,
}

/// A dataset as the input pipeline sees it: Table I's size columns plus the
/// per-record characteristics that drive host-side cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name, e.g. `"ImageNet"`.
    pub name: String,
    /// Total stored size in bytes (Table I's "Dataset Size").
    pub size_bytes: u64,
    /// Number of training examples.
    pub num_examples: u64,
    /// Broad data class.
    pub kind: DataKind,
    /// Calibration multiplier on host preparation cost; captures
    /// per-dataset decode complexity beyond raw byte counts.
    pub host_cost_factor: f64,
    /// Fixed per-batch host pipeline work (record parsing, batching,
    /// padding, session dispatch) in single-thread microseconds; divided
    /// by the effective worker-thread count. The main calibration lever
    /// for workloads whose host cost is not byte-proportional.
    pub host_us_per_batch: f64,
}

impl DatasetSpec {
    /// Average stored bytes per record.
    pub fn record_bytes(&self) -> u64 {
        (self.size_bytes / self.num_examples.max(1)).max(1)
    }

    /// Raw bytes the pipeline stages for one batch.
    pub fn raw_batch_bytes(&self, batch_size: u64) -> u64 {
        self.record_bytes() * batch_size
    }

    /// Returns a copy with the stored size (and example count) scaled by
    /// `factor`, used for the paper's reduced-dataset experiments
    /// (Figures 12 and 13).
    pub fn reduced(&self, factor: f64) -> DatasetSpec {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        DatasetSpec {
            name: format!("{}-reduced", self.name),
            size_bytes: ((self.size_bytes as f64) * factor) as u64,
            num_examples: ((self.num_examples as f64) * factor).max(1.0) as u64,
            ..self.clone()
        }
    }
}

/// What a single profile step executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepKind {
    /// A training step (forward + backward + update).
    Train,
    /// An evaluation step (forward + metrics).
    Eval,
}

/// Complete description of one simulated training session.
///
/// Build one from a workload definition (see the `tpupoint-workloads`
/// crate) or from [`JobConfig::demo`] for tests.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Model name (e.g. `"ResNet-50"`).
    pub model: String,
    /// Fused training-step graph.
    pub train_graph: Graph,
    /// Fused evaluation-step graph.
    pub eval_graph: Graph,
    /// Host input pipeline.
    pub pipeline: PipelineSpec,
    /// Input dataset.
    pub dataset: DatasetSpec,
    /// TPU chip the job runs on.
    pub chip: TpuChipSpec,
    /// Host VM.
    pub host: HostSpec,
    /// Number of training steps.
    pub train_steps: u64,
    /// Steps executed per host↔TPU loop (outfeed cadence).
    pub iterations_per_loop: u64,
    /// Run an eval segment after every this many training steps
    /// (`None` = single eval at the end).
    pub steps_per_eval: Option<u64>,
    /// Steps per eval segment.
    pub eval_steps: u64,
    /// Write a checkpoint every this many training steps.
    pub checkpoint_every: u64,
    /// Initial steps that run slower (cold caches, lazy initialization).
    pub warmup_steps: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Log-normal sigma applied to every op duration.
    pub jitter_sigma: f64,
    /// Per-step probability that a data-dependent operator substitution
    /// occurs (changes the step's op *set*; drives OLS fragmentation at
    /// high similarity thresholds).
    pub substitution_prob: f64,
    /// Fractional extra host cost while profiling is active (the paper's
    /// sub-10% profiling overhead).
    pub host_overhead_frac: f64,
}

impl JobConfig {
    /// Total checkpoint size: the byte size of all trainable parameters.
    pub fn model_bytes(&self) -> u64 {
        self.train_graph
            .nodes()
            .iter()
            .filter(|n| n.kind == OpKind::Parameter)
            .map(|n| n.output.size_bytes())
            .sum()
    }

    /// Bytes transferred over the infeed per batch: the training graph's
    /// input tensors.
    pub fn batch_device_bytes(&self) -> u64 {
        self.train_graph
            .nodes()
            .iter()
            .filter(|n| n.kind == OpKind::Input)
            .map(|n| n.output.size_bytes())
            .sum()
    }

    /// The full step schedule: training steps with eval segments
    /// interleaved per `steps_per_eval`, plus a final eval segment.
    pub fn step_plan(&self) -> Vec<StepKind> {
        let mut plan = Vec::new();
        let chunk = self.steps_per_eval.unwrap_or(self.train_steps).max(1);
        let mut trained = 0;
        while trained < self.train_steps {
            let n = chunk.min(self.train_steps - trained);
            plan.extend(std::iter::repeat_n(StepKind::Train, n as usize));
            trained += n;
            plan.extend(std::iter::repeat_n(
                StepKind::Eval,
                self.eval_steps as usize,
            ));
        }
        plan
    }

    /// Profile-step indices (1-based, in plan order) after which a
    /// checkpoint is written: every `checkpoint_every` *training* steps and
    /// after the final training step.
    pub fn checkpoint_plan(&self) -> Vec<u64> {
        let plan = self.step_plan();
        let mut out = Vec::new();
        let mut trained = 0u64;
        for (i, kind) in plan.iter().enumerate() {
            if *kind == StepKind::Train {
                trained += 1;
                let last_train = trained == self.train_steps;
                if (self.checkpoint_every > 0 && trained.is_multiple_of(self.checkpoint_every))
                    || last_train
                {
                    out.push(i as u64 + 1);
                }
            }
        }
        out.dedup();
        out
    }

    /// A deterministic digest of everything that affects *program output*
    /// (as opposed to performance): model, dataset, batch size, step
    /// counts, and the output-affecting pipeline knobs. TPUPoint-Optimizer
    /// compares digests to guarantee its tuning preserved results.
    pub fn output_digest(&self) -> u64 {
        // FNV-1a over the semantic fields.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(self.model.as_bytes());
        eat(self.dataset.name.as_bytes());
        eat(&self.pipeline.batch_size.to_le_bytes());
        eat(&self.pipeline.shuffle_buffer.to_le_bytes());
        eat(&self.train_steps.to_le_bytes());
        eat(&self.eval_steps.to_le_bytes());
        eat(&self.seed.to_le_bytes());
        h
    }

    /// A small MLP training job for tests and examples: ~20 steps, one
    /// eval segment, one checkpoint.
    pub fn demo() -> JobConfig {
        fn train_graph() -> Graph {
            let mut b = GraphBuilder::new("demo-mlp");
            let x = b.input("x", DType::BF16, Shape::of(&[32, 2048]));
            let labels = b.input("y", DType::I32, Shape::of(&[32]));
            let w1 = b.parameter("w1", DType::BF16, Shape::of(&[2048, 4096]));
            let w2 = b.parameter("w2", DType::BF16, Shape::of(&[4096, 256]));
            let h = b.matmul(x, w1);
            let a = b.relu(h);
            let r = b.reshape(a, Shape::of(&[32, 4096]));
            let logits = b.matmul(r, w2);
            let loss = b.softmax_cross_entropy(logits, labels);
            let g1 = b.matmul(r, w2); // gradient matmuls
            let g2 = b.matmul(x, w1);
            let up1 = b.apply_adam(w1, g2);
            let up2 = b.apply_adam(w2, g1);
            let ar = b.all_reduce(logits);
            b.finish(&[loss, up1, up2, ar])
        }
        fn eval_graph() -> Graph {
            let mut b = GraphBuilder::new("demo-mlp-eval");
            let x = b.input("x", DType::BF16, Shape::of(&[32, 2048]));
            let labels = b.input("y", DType::I32, Shape::of(&[32]));
            let w1 = b.parameter("w1", DType::BF16, Shape::of(&[2048, 4096]));
            let w2 = b.parameter("w2", DType::BF16, Shape::of(&[4096, 256]));
            let h = b.matmul(x, w1);
            let a = b.relu(h);
            let logits = b.matmul(a, w2);
            let loss = b.softmax_cross_entropy(logits, labels);
            let mean = b.reduce_mean(logits);
            b.finish(&[loss, mean])
        }
        JobConfig {
            model: "demo-mlp".to_owned(),
            train_graph: tpupoint_graph::fusion::fuse(&train_graph()),
            eval_graph: tpupoint_graph::fusion::fuse(&eval_graph()),
            pipeline: PipelineSpec::tuned_default(32),
            dataset: DatasetSpec {
                name: "demo-data".to_owned(),
                size_bytes: 64 * 1024 * 1024,
                num_examples: 50_000,
                kind: DataKind::Text,
                host_cost_factor: 1.0,
                host_us_per_batch: 0.0,
            },
            chip: TpuChipSpec::v2(),
            host: HostSpec::skylake_n1(),
            train_steps: 20,
            iterations_per_loop: 5,
            steps_per_eval: Some(10),
            eval_steps: 2,
            checkpoint_every: 10,
            warmup_steps: 2,
            seed: 7,
            jitter_sigma: 0.03,
            substitution_prob: 0.02,
            host_overhead_frac: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_bytes_divides_size() {
        let d = DatasetSpec {
            name: "d".into(),
            size_bytes: 1000,
            num_examples: 10,
            kind: DataKind::Text,
            host_cost_factor: 1.0,
            host_us_per_batch: 0.0,
        };
        assert_eq!(d.record_bytes(), 100);
        assert_eq!(d.raw_batch_bytes(4), 400);
    }

    #[test]
    fn reduced_scales_size_and_examples() {
        let d = DatasetSpec {
            name: "coco".into(),
            size_bytes: 1000,
            num_examples: 100,
            kind: DataKind::ImageDetection,
            host_cost_factor: 1.0,
            host_us_per_batch: 0.0,
        };
        let half = d.reduced(0.5);
        assert_eq!(half.size_bytes, 500);
        assert_eq!(half.num_examples, 50);
        assert!(half.name.contains("reduced"));
        // Record size is unchanged: same data, fewer records.
        assert_eq!(half.record_bytes(), d.record_bytes());
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn reduced_rejects_bad_factor() {
        let d = DatasetSpec {
            name: "d".into(),
            size_bytes: 10,
            num_examples: 1,
            kind: DataKind::Text,
            host_cost_factor: 1.0,
            host_us_per_batch: 0.0,
        };
        let _ = d.reduced(0.0);
    }

    #[test]
    fn step_plan_interleaves_eval_segments() {
        let mut c = JobConfig::demo();
        c.train_steps = 6;
        c.steps_per_eval = Some(3);
        c.eval_steps = 2;
        let plan = c.step_plan();
        use StepKind::*;
        assert_eq!(
            plan,
            vec![Train, Train, Train, Eval, Eval, Train, Train, Train, Eval, Eval]
        );
    }

    #[test]
    fn step_plan_without_periodic_eval_has_single_tail_eval() {
        let mut c = JobConfig::demo();
        c.train_steps = 4;
        c.steps_per_eval = None;
        c.eval_steps = 1;
        let plan = c.step_plan();
        assert_eq!(plan.len(), 5);
        assert_eq!(plan[4], StepKind::Eval);
    }

    #[test]
    fn checkpoint_plan_lands_on_training_steps() {
        let mut c = JobConfig::demo();
        c.train_steps = 6;
        c.steps_per_eval = Some(3);
        c.eval_steps = 2;
        c.checkpoint_every = 3;
        // plan: T T T E E T T T E E  → ckpt after 3rd train (index 3) and
        // 6th train (index 8).
        assert_eq!(c.checkpoint_plan(), vec![3, 8]);
    }

    #[test]
    fn model_bytes_counts_parameters_only() {
        let c = JobConfig::demo();
        // w1: 2048*4096*2 bytes, w2: 4096*256*2 bytes.
        assert_eq!(c.model_bytes(), 2048 * 4096 * 2 + 4096 * 256 * 2);
    }

    #[test]
    fn batch_device_bytes_counts_inputs() {
        let c = JobConfig::demo();
        // x: 32*2048*2, y: 32*4.
        assert_eq!(c.batch_device_bytes(), 32 * 2048 * 2 + 32 * 4);
    }

    #[test]
    fn output_digest_ignores_performance_knobs() {
        let a = JobConfig::demo();
        let mut b = JobConfig::demo();
        b.pipeline.prefetch_depth = 32;
        b.pipeline.num_parallel_calls = 64;
        b.host_overhead_frac = 0.5;
        assert_eq!(a.output_digest(), b.output_digest());
    }

    #[test]
    fn output_digest_tracks_semantic_changes() {
        let a = JobConfig::demo();
        let mut b = JobConfig::demo();
        b.pipeline.shuffle_buffer *= 2;
        assert_ne!(a.output_digest(), b.output_digest());
        let mut c = JobConfig::demo();
        c.train_steps += 1;
        assert_ne!(a.output_digest(), c.output_digest());
    }
}
