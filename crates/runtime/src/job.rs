//! Job wiring and the run report.

use crate::actors::{
    decode::DecodeStage, infeed::InfeedEngine, outfeed::OutfeedConsumer, session::SessionProc,
    storage::StorageReader, tpu::TpuProc, StepCosts, StepOp,
};
use crate::config::{DataKind, JobConfig};
use crate::hostops::HostOps;
use crate::metrics::shared_metrics;
use tpupoint_graph::Graph;
use tpupoint_hw::{LinkSpec, OpWork, TpuCoreModel, TpuGeneration};
use tpupoint_simcore::laned::{LaneAssignment, LaneStats};
use tpupoint_simcore::trace::{OpAttrs, OpCatalog, TraceSink};
use tpupoint_simcore::{Engine, SimDuration, SimTime};

/// Everything measured about one simulated training session.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// TPU generation the job ran on.
    pub generation: TpuGeneration,
    /// Wall time of the whole session, init through shutdown.
    pub session_wall: SimDuration,
    /// First-step-start to last-step-end window, over which utilization
    /// metrics are defined.
    pub steady_window: SimDuration,
    /// Profile steps completed (train + eval).
    pub steps_completed: u64,
    /// Training steps completed.
    pub train_steps_completed: u64,
    /// Accumulated TPU compute time.
    pub tpu_busy: SimDuration,
    /// Accumulated MXU-active time.
    pub mxu_busy: SimDuration,
    /// `(profile_step, time)` of every checkpoint.
    pub checkpoints: Vec<(u64, SimTime)>,
    /// Digest of everything that affects program output; equal digests ⇒
    /// identical results.
    pub output_digest: u64,
    /// Deterministic final loss (a pure function of the output digest).
    pub final_loss: f64,
    /// Per-step compute wall durations in plan order.
    pub step_walls: Vec<SimDuration>,
}

impl RunReport {
    /// Fraction of the steady window the TPU spent idle (Figure 10/12/15).
    pub fn tpu_idle_fraction(&self) -> f64 {
        if self.steady_window.is_zero() {
            return 0.0;
        }
        let busy = self.tpu_busy.as_micros() as f64;
        let window = self.steady_window.as_micros() as f64;
        (1.0 - busy / window).clamp(0.0, 1.0)
    }

    /// Fraction of the steady window the MXUs were computing
    /// (Figure 11/13/16).
    pub fn mxu_utilization(&self) -> f64 {
        if self.steady_window.is_zero() {
            return 0.0;
        }
        let mxu = self.mxu_busy.as_micros() as f64;
        let window = self.steady_window.as_micros() as f64;
        (mxu / window).clamp(0.0, 1.0)
    }

    /// Average steps per second over the steady window.
    pub fn throughput_steps_per_sec(&self) -> f64 {
        let window = self.steady_window.as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        self.steps_completed as f64 / window
    }
}

/// A simulated training session, ready to run.
///
/// ```
/// use tpupoint_runtime::{JobConfig, TrainingJob};
/// use tpupoint_simcore::trace::NullSink;
///
/// let job = TrainingJob::new(JobConfig::demo());
/// let report = job.run(&mut NullSink);
/// assert_eq!(report.steps_completed as usize, job.config().step_plan().len());
/// ```
#[derive(Debug)]
pub struct TrainingJob {
    config: JobConfig,
    catalog: OpCatalog,
    host_ops: HostOps,
    train_costs: StepCosts,
    eval_costs: StepCosts,
}

impl TrainingJob {
    /// Prepares a job: interns the op vocabulary and lowers both graphs to
    /// timed schedules on the configured chip.
    pub fn new(config: JobConfig) -> Self {
        let mut catalog = OpCatalog::new();
        let host_ops = HostOps::intern(&mut catalog);
        let model = config.chip.chip_model();
        let train_costs = compile_step(&config.train_graph, &model, &mut catalog);
        let eval_costs = compile_step(&config.eval_graph, &model, &mut catalog);
        TrainingJob {
            config,
            catalog,
            host_ops,
            train_costs,
            eval_costs,
        }
    }

    /// The job's configuration.
    pub fn config(&self) -> &JobConfig {
        &self.config
    }

    /// The op catalog shared by every event this job emits. Hand a clone to
    /// the profiler before calling [`TrainingJob::run`].
    pub fn catalog(&self) -> &OpCatalog {
        &self.catalog
    }

    /// The lowered training-step schedule (for inspection/tests).
    pub fn train_costs(&self) -> &StepCosts {
        &self.train_costs
    }

    /// Runs the session to completion, streaming the trace into `sink`.
    pub fn run(&self, sink: &mut dyn TraceSink) -> RunReport {
        let _span = tpupoint_obs::span!(
            "runtime.job",
            steps = self.config.step_plan().len(),
            model = self.config.model.as_str()
        );
        // Host (real) wall time of the simulation loop, published as a
        // gauge rather than a report field: RunReport is compared for
        // bit-identity across runs, and wall clocks never agree twice.
        let host_wall_start = std::time::Instant::now();
        let metrics = shared_metrics();
        let mut engine = self.build_engine(&metrics);
        engine.run(sink);
        self.finish(&metrics, host_wall_start)
    }

    /// Runs the session on the laned engine with `lanes` process shards.
    /// Produces the same trace, byte for byte, as [`TrainingJob::run`] —
    /// see [`tpupoint_simcore::laned`] — while sink work is flushed off the
    /// critical path on the `tpupoint-par` pool. Publishes
    /// `sim.sync_barriers`, `sim.lane_events.<lane>` and
    /// `sim.lookahead_stall_us` counters. `lanes <= 1` falls back to the
    /// serial engine.
    pub fn run_laned(&self, lanes: usize, sink: &mut (dyn TraceSink + Send)) -> RunReport {
        if lanes <= 1 {
            return self.run(sink);
        }
        let _span = tpupoint_obs::span!(
            "runtime.job",
            steps = self.config.step_plan().len(),
            model = self.config.model.as_str()
        );
        let host_wall_start = std::time::Instant::now();
        let metrics = shared_metrics();
        let mut engine = self.build_engine(&metrics);
        let assignment = LaneAssignment::contiguous(engine.process_count(), lanes);
        let stats = engine.run_laned(&assignment, sink);
        publish_lane_stats(&stats);
        self.finish(&metrics, host_wall_start)
    }

    /// Wires queues and actors into a started engine. Process registration
    /// order doubles as the lane-partition order: host-side actors (storage,
    /// decode, infeed) first, device-side (outfeed, TPU, session) after, so
    /// a two-lane contiguous split is the host/device partition.
    fn build_engine(&self, metrics: &crate::metrics::SharedMetrics) -> Engine {
        let c = &self.config;
        let plan = c.step_plan();
        assert!(!plan.is_empty(), "job must have at least one step");
        let mut engine = Engine::new(c.seed);

        let raw_q = engine.create_queue(c.pipeline.read_ahead.max(1) as usize);
        let prefetch_q = engine.create_queue(c.pipeline.prefetch_depth.max(1) as usize);
        let infeed_q = engine.create_queue(c.pipeline.infeed_queue_depth.max(1) as usize);
        let outfeed_q = engine.create_queue(8);

        // Derived byte counts and durations.
        let overhead = 1.0 + c.host_overhead_frac.max(0.0);
        let raw_bytes = c.dataset.raw_batch_bytes(c.pipeline.batch_size) as f64;
        let device_bytes = c.batch_device_bytes() as f64;
        let storage = LinkSpec::cloud_storage();
        let read_dur = storage.transfer_duration(raw_bytes);
        let decode_mult = match c.dataset.kind {
            DataKind::Image => 1.0,
            DataKind::Text => 0.25,
            DataKind::ImageDetection => 1.3,
        } * c.dataset.host_cost_factor;
        // Per-batch host work has a serial component (session dispatch,
        // batching, queue management) that more decode threads cannot
        // shrink — the Amdahl limit that bounds what pipeline tuning can
        // recover.
        const SERIAL_HOST_FRACTION: f64 = 0.3;
        let decode_dur = (c
            .host
            .decode_duration(raw_bytes * decode_mult, c.pipeline.num_parallel_calls)
            + c.host
                .fixed_work_duration(c.dataset.host_us_per_batch * SERIAL_HOST_FRACTION, 1)
            + c.host.fixed_work_duration(
                c.dataset.host_us_per_batch * (1.0 - SERIAL_HOST_FRACTION),
                c.pipeline.num_parallel_calls,
            ))
        .mul_f64(overhead);
        let pass_dur = c
            .host
            .transform_duration(
                device_bytes * c.dataset.host_cost_factor,
                c.pipeline.num_parallel_calls,
            )
            .mul_f64(overhead);
        let linearize_dur = SimDuration::from_secs_f64(device_bytes / 2.5e9).mul_f64(overhead)
            + SimDuration::from_micros(100);
        let transfer_dur = LinkSpec::infeed().transfer_duration(device_bytes);
        let chip = c.chip.chip_model();
        let infeed_dequeue_dur = SimDuration::from_micros(30)
            + SimDuration::from_secs_f64(device_bytes / chip.hbm_bytes_per_sec);
        let model_bytes = c.model_bytes() as f64;
        let init_dur = SimDuration::from_secs(2);
        let restore_dur = storage.transfer_duration(model_bytes);
        let compile_dur = SimDuration::from_secs(5)
            + SimDuration::from_millis(3) * c.train_graph.node_count() as u64;
        let save_dur = storage.transfer_duration(model_bytes);
        let final_step = plan.len() as u64 + 1;

        let storage_id = engine.add_process(Box::new(StorageReader::new(
            raw_q,
            self.host_ops.storage_read,
            read_dur,
            plan.len() as u64,
            c.jitter_sigma,
        )));
        // Each pass over the dataset restarts the input iterator: the
        // shuffle buffer refills and storage listings renew. Smaller
        // datasets wrap more often, which is one way the bottleneck moves
        // when only the dataset changes (Observation 6, Figures 12-13).
        let epoch_steps = (c.dataset.num_examples / c.pipeline.batch_size.max(1)).max(1);
        let refill_bytes =
            c.pipeline.shuffle_buffer as f64 * c.dataset.record_bytes() as f64 * decode_mult;
        let epoch_stall = SimDuration::from_secs(2)
            + c.host
                .decode_duration(refill_bytes, c.pipeline.num_parallel_calls)
                .mul_f64(overhead);
        let decode_id = engine.add_process(Box::new(DecodeStage::new(
            raw_q,
            prefetch_q,
            c.dataset.kind,
            self.host_ops,
            decode_dur,
            pass_dur,
            c.pipeline.host_transform_passes,
            c.substitution_prob,
            c.jitter_sigma,
            epoch_steps,
            epoch_stall,
            std::rc::Rc::new(plan.clone()),
        )));
        let infeed_id = engine.add_process(Box::new(InfeedEngine::new(
            prefetch_q,
            infeed_q,
            self.host_ops,
            linearize_dur,
            transfer_dur,
            c.jitter_sigma,
        )));
        let outfeed_id = engine.add_process(Box::new(OutfeedConsumer::new(
            outfeed_q,
            self.host_ops,
            SimDuration::from_micros(1_200),
            SimDuration::from_micros(250),
            c.jitter_sigma,
        )));
        // The TPU is added next and the session right after, so the session
        // id is the TPU's successor.
        let session_id = tpupoint_simcore::ProcessId::nth(engine.next_process_id().index() + 1);
        let tpu_id = engine.add_process(Box::new(TpuProc::new(
            metrics.clone(),
            infeed_q,
            outfeed_q,
            session_id,
            plan.clone(),
            c.checkpoint_plan(),
            self.train_costs.clone(),
            self.eval_costs.clone(),
            self.catalog
                .get("InfeedDequeueTuple")
                .expect("interned at construction"),
            infeed_dequeue_dur,
            self.catalog
                .get("OutfeedEnqueueTuple")
                .expect("interned at construction"),
            c.iterations_per_loop,
            c.warmup_steps,
            c.jitter_sigma,
        )));
        let session_actual = engine.add_process(Box::new(SessionProc::new(
            metrics.clone(),
            self.host_ops,
            vec![storage_id, decode_id, infeed_id, outfeed_id, tpu_id],
            tpu_id,
            init_dur,
            restore_dur,
            compile_dur,
            save_dur,
            final_step,
            c.jitter_sigma,
        )));
        assert_eq!(session_actual, session_id, "session id prediction broke");

        engine.start(session_actual);
        engine
    }

    /// Builds the report once the engine has drained.
    fn finish(
        &self,
        metrics: &crate::metrics::SharedMetrics,
        host_wall_start: std::time::Instant,
    ) -> RunReport {
        let c = &self.config;
        let m = metrics.borrow();
        let session_end = m
            .session_end
            .unwrap_or_else(|| panic!("session for `{}` never shut down (deadlock?)", c.model));
        let steady_window = m.steady_window().unwrap_or(SimDuration::ZERO);
        tpupoint_obs::metrics()
            .gauge("runtime.host_wall_us")
            .set(host_wall_start.elapsed().as_micros() as f64);
        let digest = c.output_digest();
        RunReport {
            model: c.model.clone(),
            dataset: c.dataset.name.clone(),
            generation: c.chip.generation,
            session_wall: session_end - SimTime::ZERO,
            steady_window,
            steps_completed: m.steps_completed,
            train_steps_completed: m.train_steps_completed,
            tpu_busy: m.tpu_busy,
            mxu_busy: m.mxu_busy,
            checkpoints: m.checkpoints.clone(),
            output_digest: digest,
            final_loss: loss_from_digest(digest, m.train_steps_completed),
            step_walls: m.step_walls.clone(),
        }
    }
}

/// Publishes laned-engine counters to the global obs registry, where the
/// Prometheus exporter and `obs-report`'s SimHealth section pick them up.
fn publish_lane_stats(stats: &LaneStats) {
    let metrics = tpupoint_obs::metrics();
    metrics.counter("sim.sync_barriers").add(stats.barriers);
    metrics
        .counter("sim.lookahead_stall_us")
        .add(stats.lookahead_stall.as_micros());
    for (lane, events) in stats.lane_events.iter().enumerate() {
        metrics
            .counter(&format!("sim.lane_events.{lane}"))
            .add(*events);
    }
}

/// Lowers a graph to a flat timed schedule on the given chip model,
/// interning every op name.
fn compile_step(graph: &Graph, model: &TpuCoreModel, catalog: &mut OpCatalog) -> StepCosts {
    // Intern the TPU boundary ops the actor emits itself.
    catalog.intern("InfeedDequeueTuple", OpAttrs::default());
    catalog.intern("OutfeedEnqueueTuple", OpAttrs::default());
    let mut ops = Vec::new();
    for node in graph.nodes() {
        if node.kind.is_boundary() {
            continue;
        }
        let work = OpWork {
            flops: node.flops,
            hbm_bytes: node.hbm_bytes,
            uses_mxu: node.uses_mxu,
        };
        let (dur, mxu) = model.op_duration(&work);
        let op = catalog.intern(
            node.kind.name(),
            OpAttrs {
                uses_mxu: node.uses_mxu,
            },
        );
        ops.push(StepOp { op, dur, mxu });
    }
    StepCosts::new(ops)
}

/// Deterministic pseudo-loss: a pure function of the output digest and the
/// number of training steps, so runs with identical semantics produce
/// identical "results" and the optimizer's output guard is meaningful.
fn loss_from_digest(digest: u64, train_steps: u64) -> f64 {
    let noise = (digest % 10_000) as f64 / 10_000.0;
    let progress = (train_steps as f64 / 1_000.0).min(20.0);
    0.05 + 2.5 * (-0.4 * progress).exp() + 0.02 * noise
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_graph::PipelineSpec;
    use tpupoint_hw::TpuChipSpec;
    use tpupoint_simcore::trace::{NullSink, VecSink};

    #[test]
    fn demo_job_completes_every_planned_step() {
        let job = TrainingJob::new(JobConfig::demo());
        let report = job.run(&mut NullSink);
        assert_eq!(
            report.steps_completed as usize,
            job.config().step_plan().len()
        );
        assert_eq!(report.train_steps_completed, 20);
        assert!(report.session_wall > report.steady_window);
    }

    #[test]
    fn runs_are_deterministic() {
        let job = TrainingJob::new(JobConfig::demo());
        let a = job.run(&mut NullSink);
        let b = job.run(&mut NullSink);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_change_timing_not_results() {
        let mut cfg = JobConfig::demo();
        cfg.seed = 1;
        let a = TrainingJob::new(cfg.clone()).run(&mut NullSink);
        cfg.seed = 1; // same seed first to sanity check
        let a2 = TrainingJob::new(cfg.clone()).run(&mut NullSink);
        assert_eq!(a.session_wall, a2.session_wall);
    }

    #[test]
    fn laned_run_matches_serial_run_exactly() {
        let job = TrainingJob::new(JobConfig::demo());
        let mut serial = VecSink::new();
        let report_serial = job.run(&mut serial);
        for lanes in [2, 3, 6] {
            let mut laned = VecSink::new();
            let report_laned = job.run_laned(lanes, &mut laned);
            assert_eq!(report_laned, report_serial, "lanes={lanes}");
            assert_eq!(laned.events, serial.events, "lanes={lanes}");
            assert_eq!(laned.steps, serial.steps, "lanes={lanes}");
            assert_eq!(laned.checkpoints, serial.checkpoints, "lanes={lanes}");
        }
    }

    #[test]
    fn checkpoints_happen_where_planned() {
        let job = TrainingJob::new(JobConfig::demo());
        let report = job.run(&mut NullSink);
        let at: Vec<u64> = report.checkpoints.iter().map(|c| c.0).collect();
        assert_eq!(at, job.config().checkpoint_plan());
    }

    #[test]
    fn trace_covers_all_steps_and_tracks() {
        let job = TrainingJob::new(JobConfig::demo());
        let mut sink = VecSink::new();
        let report = job.run(&mut sink);
        assert_eq!(sink.steps.len() as u64, report.steps_completed);
        use tpupoint_simcore::Track;
        let has = |t: Track| sink.events.iter().any(|e| e.track == t);
        assert!(has(Track::Host));
        assert!(has(Track::TpuCore(0)));
        assert!(has(Track::Storage));
    }

    #[test]
    fn v3_reduces_busy_time_and_mxu_utilization() {
        // Host-bound (naive pipeline), deterministic (no jitter): the wall
        // time stays pinned by the host while v3 halves MXU busy time.
        let mut cfg2 = JobConfig::demo();
        cfg2.jitter_sigma = 0.0;
        cfg2.pipeline = PipelineSpec::naive(cfg2.pipeline.batch_size);
        let mut cfg3 = cfg2.clone();
        cfg3.chip = TpuChipSpec::v3();
        let r2 = TrainingJob::new(cfg2).run(&mut NullSink);
        let r3 = TrainingJob::new(cfg3).run(&mut NullSink);
        assert!(r3.tpu_busy <= r2.tpu_busy, "v3 computes at least as fast");
        assert!(r3.mxu_busy < r2.mxu_busy, "v3 halves MXU busy time");
        assert!(
            r3.mxu_utilization() < r2.mxu_utilization(),
            "doubling MXUs lowers utilization: {} vs {}",
            r3.mxu_utilization(),
            r2.mxu_utilization()
        );
        assert!(
            r3.tpu_idle_fraction() >= r2.tpu_idle_fraction(),
            "a faster chip waits on the same host at least as much"
        );
    }

    #[test]
    fn naive_pipeline_idles_the_tpu_more() {
        let tuned = JobConfig::demo();
        let mut naive = JobConfig::demo();
        naive.pipeline = PipelineSpec::naive(naive.pipeline.batch_size);
        let rt = TrainingJob::new(tuned).run(&mut NullSink);
        let rn = TrainingJob::new(naive).run(&mut NullSink);
        assert!(
            rn.tpu_idle_fraction() >= rt.tpu_idle_fraction(),
            "naive {} vs tuned {}",
            rn.tpu_idle_fraction(),
            rt.tpu_idle_fraction()
        );
        assert!(rn.steady_window >= rt.steady_window);
    }

    #[test]
    fn profiling_overhead_slows_the_host() {
        // Host-bound and deterministic so the extra host cost must show.
        let mut plain = JobConfig::demo();
        plain.jitter_sigma = 0.0;
        plain.pipeline = PipelineSpec::naive(plain.pipeline.batch_size);
        let mut profiled = plain.clone();
        profiled.host_overhead_frac = 0.5;
        let rp = TrainingJob::new(plain).run(&mut NullSink);
        let ro = TrainingJob::new(profiled).run(&mut NullSink);
        assert!(
            ro.session_wall > rp.session_wall,
            "profiled {} vs plain {}",
            ro.session_wall,
            rp.session_wall
        );
    }

    #[test]
    fn output_digest_survives_performance_tuning() {
        let a = JobConfig::demo();
        let mut b = JobConfig::demo();
        b.pipeline.prefetch_depth = 32;
        let ra = TrainingJob::new(a).run(&mut NullSink);
        let rb = TrainingJob::new(b).run(&mut NullSink);
        assert_eq!(ra.output_digest, rb.output_digest);
        assert_eq!(ra.final_loss, rb.final_loss);
    }

    #[test]
    fn report_fractions_are_well_formed() {
        let report = TrainingJob::new(JobConfig::demo()).run(&mut NullSink);
        let idle = report.tpu_idle_fraction();
        let mxu = report.mxu_utilization();
        assert!((0.0..=1.0).contains(&idle));
        assert!((0.0..=1.0).contains(&mxu));
        assert!(report.throughput_steps_per_sec() > 0.0);
    }
}
