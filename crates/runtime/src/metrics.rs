//! Shared run metrics accumulated by the actors during simulation.

use std::cell::RefCell;
use std::rc::Rc;
use tpupoint_simcore::{SimDuration, SimTime};

/// Counters the pipeline actors update as the simulation runs. One instance
/// is shared (via [`SharedMetrics`]) by every actor of a job.
#[derive(Debug, Default, Clone)]
pub struct RunMetrics {
    /// Total TPU compute time (op wall durations).
    pub tpu_busy: SimDuration,
    /// Total MXU-active time.
    pub mxu_busy: SimDuration,
    /// Profile steps completed (train + eval).
    pub steps_completed: u64,
    /// Training steps completed.
    pub train_steps_completed: u64,
    /// Instant the first step started computing.
    pub first_step_start: Option<SimTime>,
    /// Instant the last step finished computing.
    pub last_step_end: Option<SimTime>,
    /// `(profile_step, time)` of every checkpoint written.
    pub checkpoints: Vec<(u64, SimTime)>,
    /// Wall-clock end of the session (after shutdown).
    pub session_end: Option<SimTime>,
    /// Wall duration of each profile step, in plan order.
    pub step_walls: Vec<SimDuration>,
}

/// Shared handle to [`RunMetrics`]. The engine is single-threaded, so a
/// plain `Rc<RefCell<..>>` suffices.
pub type SharedMetrics = Rc<RefCell<RunMetrics>>;

/// Creates a fresh shared metrics handle.
pub fn shared_metrics() -> SharedMetrics {
    Rc::new(RefCell::new(RunMetrics::default()))
}

impl RunMetrics {
    /// The window over which utilization metrics are computed: first step
    /// start to last step end. Returns `None` before any step completed.
    pub fn steady_window(&self) -> Option<SimDuration> {
        match (self.first_step_start, self.last_step_end) {
            (Some(a), Some(b)) if b > a => Some(b - a),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_window_requires_both_endpoints() {
        let mut m = RunMetrics::default();
        assert!(m.steady_window().is_none());
        m.first_step_start = Some(SimTime::from_micros(100));
        assert!(m.steady_window().is_none());
        m.last_step_end = Some(SimTime::from_micros(600));
        assert_eq!(m.steady_window(), Some(SimDuration::from_micros(500)));
    }

    #[test]
    fn shared_handle_is_actually_shared() {
        let shared = shared_metrics();
        let clone = shared.clone();
        clone.borrow_mut().steps_completed = 5;
        assert_eq!(shared.borrow().steps_completed, 5);
    }
}
