//! Integration: the simulated pipeline reacts to its knobs the way a real
//! input pipeline does.

use tpupoint_graph::PipelineSpec;
use tpupoint_runtime::{JobConfig, TrainingJob};
use tpupoint_simcore::trace::NullSink;

fn host_bound_config() -> JobConfig {
    let mut cfg = JobConfig::demo();
    cfg.jitter_sigma = 0.0;
    cfg.train_steps = 60;
    cfg.steps_per_eval = None;
    cfg.eval_steps = 0;
    cfg.dataset.host_us_per_batch = 150_000.0;
    cfg
}

#[test]
fn more_decode_threads_reduce_idle_until_the_tpu_binds() {
    let mut last_window = f64::INFINITY;
    let mut improved = 0;
    for threads in [1, 2, 4, 8, 16] {
        let mut cfg = host_bound_config();
        cfg.pipeline.num_parallel_calls = threads;
        let report = TrainingJob::new(cfg).run(&mut NullSink);
        let window = report.steady_window.as_secs_f64();
        assert!(
            window <= last_window * 1.001,
            "threads {threads}: window grew {window} > {last_window}"
        );
        if window < last_window * 0.98 {
            improved += 1;
        }
        last_window = window;
    }
    assert!(improved >= 2, "thread scaling must help somewhere");
}

#[test]
fn deeper_prefetch_never_hurts() {
    let walls: Vec<f64> = [1u32, 4, 16, 64]
        .into_iter()
        .map(|depth| {
            let mut cfg = host_bound_config();
            cfg.pipeline.prefetch_depth = depth;
            TrainingJob::new(cfg)
                .run(&mut NullSink)
                .steady_window
                .as_secs_f64()
        })
        .collect();
    for pair in walls.windows(2) {
        assert!(pair[1] <= pair[0] * 1.001, "{walls:?}");
    }
}

#[test]
fn fewer_transform_passes_speed_the_host() {
    let mut cfg_many = host_bound_config();
    cfg_many.pipeline.host_transform_passes = 6;
    let mut cfg_few = host_bound_config();
    cfg_few.pipeline.host_transform_passes = 1;
    let many = TrainingJob::new(cfg_many).run(&mut NullSink);
    let few = TrainingJob::new(cfg_few).run(&mut NullSink);
    assert!(few.steady_window <= many.steady_window);
}

#[test]
fn checkpoint_cadence_matches_the_plan_under_any_pipeline() {
    for pipeline in [PipelineSpec::tuned_default(32), PipelineSpec::naive(32)] {
        let mut cfg = JobConfig::demo();
        cfg.pipeline = pipeline;
        cfg.train_steps = 30;
        cfg.checkpoint_every = 7;
        let expected = cfg.checkpoint_plan();
        let report = TrainingJob::new(cfg).run(&mut NullSink);
        let at: Vec<u64> = report.checkpoints.iter().map(|(s, _)| *s).collect();
        assert_eq!(at, expected);
    }
}

#[test]
fn eval_steps_are_cheaper_than_train_steps() {
    let mut cfg = JobConfig::demo();
    cfg.jitter_sigma = 0.0;
    cfg.train_steps = 10;
    cfg.steps_per_eval = Some(5);
    cfg.eval_steps = 5;
    cfg.warmup_steps = 0;
    let report = TrainingJob::new(cfg.clone()).run(&mut NullSink);
    let plan = cfg.step_plan();
    // Average compute wall of train vs eval steps.
    let mut train = (0.0, 0u32);
    let mut eval = (0.0, 0u32);
    for (kind, wall) in plan.iter().zip(&report.step_walls) {
        match kind {
            tpupoint_runtime::StepKind::Train => {
                train.0 += wall.as_secs_f64();
                train.1 += 1;
            }
            tpupoint_runtime::StepKind::Eval => {
                eval.0 += wall.as_secs_f64();
                eval.1 += 1;
            }
        }
    }
    let train_avg = train.0 / train.1 as f64;
    let eval_avg = eval.0 / eval.1 as f64;
    assert!(
        eval_avg < train_avg,
        "eval {eval_avg} should be cheaper than train {train_avg}"
    );
}

#[test]
fn host_overhead_fraction_scales_the_wall_in_host_bound_runs() {
    let base = host_bound_config();
    let mut profiled = base.clone();
    profiled.host_overhead_frac = 0.10;
    let r0 = TrainingJob::new(base).run(&mut NullSink);
    let r1 = TrainingJob::new(profiled).run(&mut NullSink);
    let ratio = r1.steady_window.as_secs_f64() / r0.steady_window.as_secs_f64();
    assert!(
        (1.02..1.15).contains(&ratio),
        "10% host overhead should cost roughly that much: {ratio}"
    );
}
