//! Property tests: `par_map` is order-preserving and bit-identical to the
//! serial map for arbitrary inputs and pool sizes, and panics always
//! propagate to the caller no matter which item throws.

use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;
use tpupoint_par::ThreadPool;

/// The deliberate panics below fire on pool worker threads, where the
/// default hook would print a backtrace per case; silence exactly those.
fn silence_expected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("poisoned item"));
            if !expected {
                previous(info);
            }
        }));
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_map_matches_serial_map_in_order(
        items in proptest::collection::vec(0u64..1_000_000, 0..300),
        threads in 1usize..9,
    ) {
        let pool = ThreadPool::new(threads);
        let f = |x: u64| x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        let serial: Vec<u64> = items.iter().map(|&x| f(x)).collect();
        let parallel = pool.par_map(&items, |_, &x| f(x));
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_index_is_the_identity_permutation(
        n in 0usize..500,
        threads in 1usize..9,
    ) {
        let pool = ThreadPool::new(threads);
        let out = pool.par_map_index(n, |i| i);
        prop_assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_costs_never_change_results(
        items in proptest::collection::vec(0u64..1_000, 1..200),
        threads in 1usize..9,
    ) {
        let pool = ThreadPool::new(threads);
        // Cost skew: the item's value drives a variable amount of real
        // work, so some blocks are far heavier than others and idle
        // participants must steal to finish — results must not notice.
        let f = |x: u64| {
            let mut acc = x;
            for _ in 0..(x % 64) * 40 {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            acc
        };
        let serial: Vec<u64> = items.iter().map(|&x| f(x)).collect();
        prop_assert_eq!(pool.par_map(&items, |_, &x| f(x)), serial);
    }

    #[test]
    fn nested_par_map_terminates_with_serial_results(
        n in 1usize..40,
        m in 1usize..40,
        threads in 1usize..9,
    ) {
        let pool = ThreadPool::new(threads);
        let expect: Vec<u64> = (0..n)
            .map(|i| (0..m).map(|j| (i * m + j) as u64).sum())
            .collect();
        let out = pool.par_map_index(n, |i| {
            pool.par_map_index(m, |j| (i * m + j) as u64).iter().sum::<u64>()
        });
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn any_panicking_item_reaches_the_caller(
        n in 1usize..120,
        seed in 0u64..u64::MAX,
        threads in 1usize..9,
    ) {
        silence_expected_panics();
        let pool = ThreadPool::new(threads);
        let bad = (seed % n as u64) as usize;
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_index(n, |i| {
                assert_ne!(i, bad, "poisoned item");
                i
            })
        }));
        prop_assert!(result.is_err(), "panic at {bad}/{n} must propagate");
        // The pool stays usable after the unwound call.
        prop_assert_eq!(pool.par_map_index(3, |i| i), vec![0, 1, 2]);
    }
}
