//! # tpupoint-par
//!
//! A small dependency-free scoped thread pool for the analyzer's offline
//! hot paths (k-means k-sweeps, DBSCAN min-samples sweeps, PCA, feature
//! extraction). The container this reproduction builds in has no crates.io
//! access, so the parallelism layer is grown in-tree, vendored-style,
//! instead of pulling rayon.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Every parallel result is ordered by input index and
//!    bit-identical to the serial run for any thread count, so phase
//!    boundaries, elbow picks, and noise ratios stay reproducible.
//! 2. **No deadlocks under nesting.** A thread waiting on a scope executes
//!    queued jobs instead of blocking, so `par_map` inside `par_map` (the
//!    k-sweep calling the parallel assignment step) cannot starve.
//! 3. **Load balance under skew.** `par_map` hands each participant a
//!    contiguous share and claims size-aware blocks off its front; an idle
//!    participant steals the tail half of a loaded share (counted by
//!    `par.steals`), so one expensive region cannot serialize the map.
//! 4. **Observability.** Workers register their own trace lanes (real
//!    tids in the Chrome export), and the pool publishes `par.workers` /
//!    `par.queue_depth` gauges, `par.tasks` / `par.steals` counters, and
//!    the `span.par.task` duration histogram through [`tpupoint_obs`].
//!
//! The process-wide pool is sized from `TPUPOINT_THREADS` (a positive
//! integer) or, failing that, `std::thread::available_parallelism()`;
//! [`set_threads`] re-sizes it at runtime (the CLI's `--threads`).

mod pool;

pub use pool::{Scope, ThreadPool};

use std::sync::{Arc, Mutex};

static GLOBAL: Mutex<Option<Arc<ThreadPool>>> = Mutex::new(None);

/// The process-wide pool, created on first use with [`auto_threads`]
/// participants (or whatever the latest [`set_threads`] call asked for).
pub fn pool() -> Arc<ThreadPool> {
    let mut global = GLOBAL.lock().expect("global pool");
    match &*global {
        Some(pool) => Arc::clone(pool),
        None => {
            let pool = Arc::new(ThreadPool::new(auto_threads()));
            *global = Some(Arc::clone(&pool));
            pool
        }
    }
}

/// Re-sizes the process-wide pool; `0` means auto ([`auto_threads`]).
/// In-flight users of the old pool finish on it undisturbed — its worker
/// threads shut down once the last handle drops.
pub fn set_threads(threads: usize) {
    let size = if threads == 0 {
        auto_threads()
    } else {
        threads
    };
    let mut global = GLOBAL.lock().expect("global pool");
    if global.as_ref().is_some_and(|pool| pool.size() == size) {
        return;
    }
    *global = Some(Arc::new(ThreadPool::new(size)));
}

/// Participants of the process-wide pool.
pub fn current_threads() -> usize {
    pool().size()
}

/// The default pool size: `TPUPOINT_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn auto_threads() -> usize {
    std::env::var("TPUPOINT_THREADS")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_pool_is_shared_and_resizable() {
        set_threads(3);
        assert_eq!(current_threads(), 3);
        let a = pool();
        let b = pool();
        assert!(Arc::ptr_eq(&a, &b));
        set_threads(3); // same size: the pool instance is kept
        assert!(Arc::ptr_eq(&a, &pool()));
        set_threads(2);
        assert_eq!(current_threads(), 2);
        // The old handle keeps working while the new pool serves.
        assert_eq!(a.par_map_index(4, |i| i), vec![0, 1, 2, 3]);
        set_threads(0);
        assert_eq!(current_threads(), auto_threads());
    }

    #[test]
    fn auto_threads_is_positive() {
        assert!(auto_threads() >= 1);
    }
}
