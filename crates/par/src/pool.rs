//! The pool itself: fixed workers, a shared FIFO queue, scoped spawns,
//! and work-stealing deterministic `par_map`.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Size-aware claim granularity of [`ThreadPool::par_map`]: each
/// participant peels blocks of about `n / (participants * this)` indices
/// off the front of its own range, so per-block bookkeeping stays cheap
/// while skewed items cannot hide a long tail inside one huge chunk.
const BLOCKS_PER_PARTICIPANT: usize = 16;

/// Upper bound on one claim block, keeping the final straggler short even
/// for very large inputs.
const MAX_BLOCK: usize = 1024;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The shared job queue plus its instrumentation handles.
struct Queue {
    /// `(jobs, shutdown)` behind one lock so workers can observe both.
    state: Mutex<(VecDeque<Job>, bool)>,
    ready: Condvar,
    depth: tpupoint_obs::Gauge,
    tasks: tpupoint_obs::Counter,
}

impl Queue {
    fn new() -> Self {
        let metrics = tpupoint_obs::metrics();
        Queue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            depth: metrics.gauge("par.queue_depth"),
            tasks: metrics.counter("par.tasks"),
        }
    }

    fn push(&self, job: Job) {
        let mut state = self.state.lock().expect("queue");
        state.0.push_back(job);
        self.depth.set(state.0.len() as f64);
        self.tasks.inc();
        drop(state);
        self.ready.notify_one();
    }

    /// Pops one job without blocking.
    fn try_pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue");
        let job = state.0.pop_front();
        if job.is_some() {
            self.depth.set(state.0.len() as f64);
        }
        job
    }

    /// Blocks until a job is available or shutdown is flagged with the
    /// queue drained (workers finish queued work before exiting).
    fn pop_or_shutdown(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue");
        loop {
            if let Some(job) = state.0.pop_front() {
                self.depth.set(state.0.len() as f64);
                return Some(job);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).expect("queue");
        }
    }

    fn shutdown(&self) {
        self.state.lock().expect("queue").1 = true;
        self.ready.notify_all();
    }
}

/// A fixed-size scoped thread pool.
///
/// `threads` counts *participants*: the pool spawns `threads - 1` worker
/// threads and the calling thread contributes the final lane during
/// [`ThreadPool::par_map`] and while waiting in [`ThreadPool::scope`]
/// (it executes queued jobs instead of blocking, which also makes nested
/// `par_map` calls deadlock-free). A pool of size 1 runs everything
/// inline on the caller.
pub struct ThreadPool {
    queue: Arc<Queue>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}

impl ThreadPool {
    /// Builds a pool with `threads` participants (minimum 1).
    pub fn new(threads: usize) -> Self {
        let size = threads.max(1);
        let queue = Arc::new(Queue::new());
        tpupoint_obs::metrics()
            .gauge("par.workers")
            .set(size as f64);
        let workers = (1..size)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("tpupoint-par-{i}"))
                    .spawn(move || {
                        tpupoint_obs::register_thread_lane(&format!("par-worker-{i}"));
                        while let Some(job) = queue.pop_or_shutdown() {
                            run_job(job);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            queue,
            workers,
            size,
        }
    }

    /// Number of participants (worker threads + the caller).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs one queued job on the current thread, if any is waiting.
    fn try_run_one(&self) -> bool {
        match self.queue.try_pop() {
            Some(job) => {
                run_job(job);
                true
            }
            None => false,
        }
    }

    /// Runs `body` with a [`Scope`] on which non-`'static` tasks can be
    /// spawned. Returns only after every spawned task finished; while
    /// waiting, the caller executes queued pool jobs. The first panic —
    /// from the body or any task — is propagated to the caller after all
    /// tasks completed.
    pub fn scope<'env, F, R>(&self, body: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState::default()),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| body(&scope)));
        // All spawned tasks borrow from `'env`, so the wait below must
        // happen even when the body panicked.
        self.wait_scope(&scope.state);
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                let panicked = scope.state.panic.lock().expect("panic slot").take();
                match panicked {
                    Some(payload) => resume_unwind(payload),
                    None => value,
                }
            }
        }
    }

    fn wait_scope(&self, state: &ScopeState) {
        loop {
            if *state.pending.lock().expect("pending") == 0 {
                return;
            }
            // Help drain the queue instead of blocking: with every worker
            // parked in a nested wait, the queued tasks of the inner
            // scope would otherwise never run.
            if self.try_run_one() {
                continue;
            }
            let pending = state.pending.lock().expect("pending");
            if *pending == 0 {
                return;
            }
            // A job can land in the queue between try_pop and wait; the
            // timeout bounds that race instead of a queue-side condvar.
            let _ = state
                .done
                .wait_timeout(pending, Duration::from_millis(1))
                .expect("pending");
        }
    }

    /// Maps `f` over `items` in parallel. The output is ordered by input
    /// index and bit-identical to the serial `items.iter().map(..)` run
    /// for any pool size: each element is computed independently and
    /// reassembled in order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_index(items.len(), |i| f(i, &items[i]))
    }

    /// Index-range form of [`ThreadPool::par_map`]: evaluates `f(0..n)`
    /// with work-stealing claim ranges and returns results in index order.
    ///
    /// Each participant starts with a contiguous share of `0..n` and
    /// claims size-aware blocks from its front; a participant whose share
    /// runs dry steals the tail half of another participant's unclaimed
    /// range (which then becomes its own, further stealable, share). Every
    /// index is computed exactly once, so the reassembled output is
    /// bit-identical to the serial map regardless of thread count, skew,
    /// or steal timing.
    pub fn par_map_index<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.size <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let participants = self.size.min(n);
        let block = (n / (participants * BLOCKS_PER_PARTICIPANT)).clamp(1, MAX_BLOCK);
        let ranges: Vec<RangeQueue> = (0..participants)
            .map(|p| RangeQueue::new(p * n / participants, (p + 1) * n / participants))
            .collect();
        let segments: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
        let steals = tpupoint_obs::metrics().counter("par.steals");
        let work = |me: usize| loop {
            while let Some((start, end)) = ranges[me].claim_front(block) {
                let out: Vec<R> = (start..end).map(&f).collect();
                segments.lock().expect("segments").push((start, out));
            }
            // Local share exhausted: scan the ring for a victim with
            // unclaimed work and steal from the tail of its range.
            let stolen = (1..participants)
                .map(|offset| (me + offset) % participants)
                .find_map(|victim| ranges[victim].steal_tail(block));
            match stolen {
                Some((start, end)) => {
                    steals.inc();
                    ranges[me].refill(start, end);
                }
                None => break,
            }
        };
        let work = &work;
        self.scope(|s| {
            for p in 1..participants {
                s.spawn(move || work(p));
            }
            work(0);
        });
        let mut segments = segments.into_inner().expect("segments");
        segments.sort_unstable_by_key(|&(start, _)| start);
        let out: Vec<R> = segments.into_iter().flat_map(|(_, seg)| seg).collect();
        assert_eq!(out.len(), n, "every index computed exactly once");
        out
    }

    /// Queues a detached `'static` job on the pool. It runs on a worker
    /// thread (or on any caller helping a scope wait). With no worker
    /// threads (a pool of one) the job runs inline immediately, since no
    /// other thread would ever pick it up.
    pub fn spawn_detached<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        if self.workers.is_empty() {
            run_job(Box::new(job));
            return;
        }
        self.queue.push(Box::new(job));
    }
}

/// One participant's range of unclaimed `par_map` indices: the owner
/// claims blocks from the front, thieves take the tail half.
struct RangeQueue {
    /// `(next, end)` — the unclaimed indices are `next..end`.
    span: Mutex<(usize, usize)>,
}

impl RangeQueue {
    fn new(start: usize, end: usize) -> Self {
        RangeQueue {
            span: Mutex::new((start, end)),
        }
    }

    /// Claims up to `block` indices off the front, for the owner.
    fn claim_front(&self, block: usize) -> Option<(usize, usize)> {
        let mut span = self.span.lock().expect("range");
        if span.0 >= span.1 {
            return None;
        }
        let end = (span.0 + block).min(span.1);
        let claimed = (span.0, end);
        span.0 = end;
        Some(claimed)
    }

    /// Steals from the tail: the whole remainder when it is small,
    /// otherwise the back half, leaving the front for the owner (which is
    /// the half whose cache lines the owner is about to touch anyway).
    fn steal_tail(&self, block: usize) -> Option<(usize, usize)> {
        let mut span = self.span.lock().expect("range");
        let remaining = span.1 - span.0;
        if remaining == 0 {
            return None;
        }
        let take = if remaining <= 2 * block {
            remaining
        } else {
            remaining / 2
        };
        let old_end = span.1;
        span.1 = old_end - take;
        Some((old_end - take, old_end))
    }

    /// Installs a stolen range as the (empty) owner's new share.
    fn refill(&self, start: usize, end: usize) {
        let mut span = self.span.lock().expect("range");
        debug_assert!(span.0 >= span.1, "refill of a non-empty range");
        *span = (start, end);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.queue.shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Runs a job under a span so pool activity shows up in each worker's
/// trace lane and in the `span.par.task` duration histogram.
fn run_job(job: Job) {
    let _span = tpupoint_obs::span!("par.task");
    job();
}

#[derive(Default)]
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, exactly like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Queues `task` on the pool. The task may borrow from `'env`; the
    /// surrounding [`ThreadPool::scope`] call joins it before returning.
    /// A panicking task is caught and re-thrown from `scope`.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        *self.state.pending.lock().expect("pending") += 1;
        let state = Arc::clone(&self.state);
        let wrapped = move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                let mut slot = state.panic.lock().expect("panic slot");
                slot.get_or_insert(payload);
            }
            let mut pending = state.pending.lock().expect("pending");
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        };
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(wrapped);
        // SAFETY: only the lifetime is erased. `ThreadPool::scope` joins
        // every spawned task before returning (even on panic), so the
        // job cannot outlive the `'env` borrows it captures.
        let job: Job = unsafe { std::mem::transmute(job) };
        self.pool.queue.push(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn pool_of_one_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.size(), 1);
        let out = pool.par_map_index(5, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..1000).collect();
        let out = pool.par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * x
        });
        let expected: Vec<usize> = (0..1000).map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_handles_fewer_items_than_participants() {
        let pool = ThreadPool::new(8);
        assert_eq!(pool.par_map_index(3, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(pool.par_map_index(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn scope_joins_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn task_panic_propagates_to_the_caller() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task exploded"));
            });
        }));
        let payload = result.expect_err("panic must cross the scope");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "task exploded");
        // The pool survives a panicked scope.
        assert_eq!(pool.par_map_index(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn par_map_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_index(100, |i| {
                if i == 57 {
                    panic!("item 57");
                }
                i
            })
        }));
        assert!(result.is_err());
        assert_eq!(pool.par_map_index(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn nested_par_map_does_not_deadlock() {
        let pool = ThreadPool::new(2);
        let out = pool.par_map_index(4, |i| {
            let inner = pool.par_map_index(8, move |j| i * 8 + j);
            inner.iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..4).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn skewed_costs_still_produce_serial_results() {
        // All the heavy items sit in participant 0's initial share, so the
        // other participants must steal from its tail to finish.
        let pool = ThreadPool::new(4);
        let out = pool.par_map_index(64, |i| {
            if i < 16 {
                std::thread::sleep(Duration::from_millis(1));
            }
            i * 3 + 1
        });
        let expected: Vec<usize> = (0..64).map(|i| i * 3 + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn idle_participants_steal_from_loaded_tails() {
        let pool = ThreadPool::new(4);
        let before = tpupoint_obs::metrics().counter("par.steals").get();
        // Participant 0 owns indices 0..16, each 2ms; the rest are free.
        // The other three participants drain their shares instantly and
        // must steal to contribute at all.
        pool.par_map_index(64, |i| {
            if i < 16 {
                std::thread::sleep(Duration::from_millis(2));
            }
            i
        });
        let after = tpupoint_obs::metrics().counter("par.steals").get();
        assert!(
            after > before,
            "steals must occur under skew: {before} -> {after}"
        );
    }

    #[test]
    fn spawn_detached_runs_on_workers() {
        let pool = ThreadPool::new(2);
        let flag = Arc::new(AtomicBool::new(false));
        let seen = Arc::clone(&flag);
        pool.spawn_detached(move || seen.store(true, Ordering::SeqCst));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !flag.load(Ordering::SeqCst) {
            assert!(
                std::time::Instant::now() < deadline,
                "detached job never ran"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn spawn_detached_on_pool_of_one_runs_inline() {
        let pool = ThreadPool::new(1);
        let ran = Arc::new(AtomicBool::new(false));
        let seen = Arc::clone(&ran);
        pool.spawn_detached(move || seen.store(true, Ordering::SeqCst));
        assert!(
            ran.load(Ordering::SeqCst),
            "no workers: must run immediately"
        );
    }

    #[test]
    fn queue_metrics_are_published() {
        let pool = ThreadPool::new(2);
        let before = tpupoint_obs::metrics().counter("par.tasks").get();
        pool.par_map_index(100, |i| i);
        let after = tpupoint_obs::metrics().counter("par.tasks").get();
        assert!(after > before, "tasks were queued: {before} -> {after}");
        let snap = tpupoint_obs::metrics().snapshot();
        assert!(snap.gauges.contains_key("par.queue_depth"));
        assert!(snap.gauges.contains_key("par.workers"));
        assert!(snap.histograms.contains_key("span.par.task"));
    }
}
