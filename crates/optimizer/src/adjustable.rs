//! Adjustable-parameter discovery (the paper's program-analysis stage).
//!
//! "TPUPoint-Optimizer first identifies adjustable parameters originally
//! defined by the user … If any of these adjustable parameters cause
//! errors when altered, TPUPoint-Optimizer will not treat them as
//! adjustable" (Section VII-A). On top of the error probe, the output
//! guard excludes parameters whose adjustment would change program output.

use tpupoint_graph::{AdjustableParam, PipelineSpec};

/// Why a parameter was excluded from tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExclusionReason {
    /// Both neighboring values were rejected by validation, so altering
    /// the parameter "causes errors".
    CausesErrors,
    /// Changing the parameter changes program output; the output-quality
    /// guard forbids touching it.
    AffectsOutput,
}

/// Result of the discovery pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Discovery {
    /// Parameters the tuner may adjust, in scan order.
    pub adjustable: Vec<AdjustableParam>,
    /// Excluded parameters with their reasons.
    pub excluded: Vec<(AdjustableParam, ExclusionReason)>,
}

/// Probes every knob of `pipeline` and classifies it.
pub fn discover(pipeline: &PipelineSpec) -> Discovery {
    let mut adjustable = Vec::new();
    let mut excluded = Vec::new();
    for &param in AdjustableParam::all() {
        if param.affects_output() {
            excluded.push((param, ExclusionReason::AffectsOutput));
            continue;
        }
        let current = param.get(pipeline);
        let neighbors = [param.step_up(current), param.step_down(current)];
        let mut works = false;
        for candidate in neighbors.into_iter().flatten() {
            let mut probe = pipeline.clone();
            if param.set(&mut probe, candidate).is_ok() {
                works = true;
                break;
            }
        }
        if works {
            adjustable.push(param);
        } else {
            excluded.push((param, ExclusionReason::CausesErrors));
        }
    }
    Discovery {
        adjustable,
        excluded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_has_adjustable_throughput_knobs() {
        let d = discover(&PipelineSpec::tuned_default(64));
        for p in [
            AdjustableParam::NumParallelCalls,
            AdjustableParam::PrefetchDepth,
            AdjustableParam::ReadAhead,
            AdjustableParam::InfeedQueueDepth,
            AdjustableParam::HostTransformPasses,
        ] {
            assert!(d.adjustable.contains(&p), "{p} should be adjustable");
        }
    }

    #[test]
    fn shuffle_buffer_is_guarded_out() {
        let d = discover(&PipelineSpec::tuned_default(64));
        assert!(d.excluded.contains(&(
            AdjustableParam::ShuffleBuffer,
            ExclusionReason::AffectsOutput
        )));
        assert!(!d.adjustable.contains(&AdjustableParam::ShuffleBuffer));
    }

    #[test]
    fn knob_pinned_at_both_range_edges_is_excluded() {
        // InfeedQueueDepth range is [1, 16]; a pipeline already at 16 can
        // still step down, so construct the single-value case artificially
        // by checking a 1-wide knob: HostTransformPasses at 1 can step up.
        // The only way both neighbors fail is a range of width zero, which
        // no current knob has — so discovery finds every non-output knob.
        let naive = PipelineSpec::naive(32);
        let d = discover(&naive);
        assert_eq!(d.adjustable.len(), AdjustableParam::all().len() - 1);
        assert_eq!(d.excluded.len(), 1);
    }

    #[test]
    fn discovery_does_not_mutate_the_pipeline() {
        let p = PipelineSpec::tuned_default(32);
        let before = p.clone();
        let _ = discover(&p);
        assert_eq!(p, before);
    }
}
