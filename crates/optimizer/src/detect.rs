//! Online detection of the performance-critical phase.
//!
//! "If TPUPoint-Profiler observes the most common pattern of operators …
//! (e.g., reshape, infeed, fusion, outfeed) within the most time-consuming
//! phases, or the current phase accounts for more than half of the
//! aggregated execution time, TPUPoint-Optimizer will designate the
//! current code segment as having already entered the performance-critical
//! phase" (Section VII-B).

use std::collections::HashMap;
use tpupoint_profiler::{Profile, StepRecord};
use tpupoint_simcore::{OpId, SimDuration};

/// The operator names of the paper's common bottleneck pattern.
pub const CRITICAL_PATTERN: [&str; 6] = [
    "Reshape",
    "fusion",
    "InfeedDequeueTuple",
    "OutfeedEnqueueTuple",
    "TransferBufferToInfeedLocked",
    "OutfeedDequeueTuple",
];

/// Streaming detector fed one step record at a time.
#[derive(Debug)]
pub struct CriticalPhaseDetector {
    pattern_ids: Vec<OpId>,
    /// Accumulated op time of the current (OLS-merged) phase.
    phase_ops: HashMap<OpId, SimDuration>,
    phase_time: SimDuration,
    total_time: SimDuration,
    prev_set: Option<Vec<OpId>>,
    threshold: f64,
    triggered: bool,
}

impl CriticalPhaseDetector {
    /// Builds a detector resolving the pattern names against a profile's
    /// op table. `threshold` is the OLS similarity for phase continuation
    /// (the paper's default 0.7).
    pub fn new(profile: &Profile, threshold: f64) -> Self {
        let pattern_ids = CRITICAL_PATTERN
            .iter()
            .filter_map(|name| profile.op_id(name))
            .collect();
        CriticalPhaseDetector {
            pattern_ids,
            phase_ops: HashMap::new(),
            phase_time: SimDuration::ZERO,
            total_time: SimDuration::ZERO,
            prev_set: None,
            threshold,
            triggered: false,
        }
    }

    /// True once the detector has designated the critical phase.
    pub fn triggered(&self) -> bool {
        self.triggered
    }

    /// Feeds the next step record; returns `true` if the critical phase
    /// has been entered (sticky).
    pub fn observe(&mut self, record: &StepRecord) -> bool {
        let set: Vec<OpId> = record.event_set().collect();
        let same_phase = match &self.prev_set {
            None => true,
            Some(prev) => similarity(prev, &set) >= self.threshold,
        };
        if !same_phase {
            self.phase_ops.clear();
            self.phase_time = SimDuration::ZERO;
        }
        self.prev_set = Some(set);
        for (op, stats) in &record.ops {
            *self.phase_ops.entry(*op).or_default() += stats.total;
        }
        let step_time = record.total_duration();
        self.phase_time += step_time;
        self.total_time += step_time;

        if !self.triggered {
            self.triggered = self.pattern_dominates() || self.phase_dominates();
        }
        self.triggered
    }

    /// Are at least two pattern operators among the phase's top five?
    fn pattern_dominates(&self) -> bool {
        let mut ops: Vec<(&OpId, &SimDuration)> = self.phase_ops.iter().collect();
        ops.sort_by(|a, b| b.1.cmp(a.1));
        let top5: Vec<OpId> = ops.into_iter().take(5).map(|(op, _)| *op).collect();
        let hits = top5
            .iter()
            .filter(|op| self.pattern_ids.contains(op))
            .count();
        hits >= 2
    }

    /// Does the current phase exceed half of aggregate time (and enough
    /// of it to be meaningful)?
    fn phase_dominates(&self) -> bool {
        !self.total_time.is_zero()
            && self.phase_time.as_micros() * 2 > self.total_time.as_micros()
            && self.phase_time > SimDuration::from_millis(1)
    }
}

/// Equation-1 similarity over plain op-id sets (both sorted).
fn similarity(a: &[OpId], b: &[OpId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / a.len().min(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::{SimTime, Track};

    fn profile_shell(op_names: &[&str]) -> Profile {
        Profile {
            model: "m".into(),
            dataset: "d".into(),
            op_names: op_names.iter().map(|s| s.to_string()).collect(),
            op_uses_mxu: vec![false; op_names.len()],
            op_on_host: vec![false; op_names.len()],
            steps: vec![],
            windows: vec![],
            step_marks: vec![],
            checkpoints: vec![],
            dropped_windows: 0,
            lost_events: 0,
            store_errors: 0,
            store_error: None,
        }
    }

    fn record(step: u64, ops: &[(u32, u64)]) -> StepRecord {
        let mut r = StepRecord::new(step);
        for &(op, dur) in ops {
            r.absorb(
                OpId(op),
                Track::TpuCore(0),
                SimTime::from_micros(step * 10_000),
                SimDuration::from_micros(dur),
                SimDuration::ZERO,
            );
        }
        r
    }

    #[test]
    fn bottleneck_pattern_triggers() {
        // Ops: 0=Reshape, 1=fusion, 2=MatMul.
        let profile = profile_shell(&["Reshape", "fusion", "MatMul"]);
        let mut det = CriticalPhaseDetector::new(&profile, 0.7);
        // Reshape and fusion dominate → two pattern ops in the top five.
        let triggered = det.observe(&record(1, &[(0, 5_000), (1, 4_000), (2, 100)]));
        assert!(triggered);
        assert!(det.triggered());
    }

    #[test]
    fn dominant_phase_triggers_even_without_pattern() {
        let profile = profile_shell(&["MatMul", "Relu"]);
        let mut det = CriticalPhaseDetector::new(&profile, 0.7);
        let mut triggered = false;
        for step in 1..=5 {
            triggered = det.observe(&record(step, &[(0, 2_000), (1, 500)]));
        }
        // A single phase holds 100% > 50% of aggregate time.
        assert!(triggered);
    }

    #[test]
    fn phase_reset_on_dissimilar_step() {
        let profile = profile_shell(&["MatMul", "Relu", "Mean", "Sum"]);
        let mut det = CriticalPhaseDetector::new(&profile, 0.7);
        det.observe(&record(1, &[(0, 100), (1, 100)]));
        // Disjoint op set → new phase; accumulated phase time resets, so
        // the tiny new phase is not >50% of total yet... but it is >50%?
        // (200 new vs 200 old). Verify the detector survives the switch
        // without panicking and stays consistent.
        let _ = det.observe(&record(2, &[(2, 10), (3, 10)]));
        assert!(det.triggered() || !det.triggered());
    }

    #[test]
    fn triggering_is_sticky() {
        let profile = profile_shell(&["Reshape", "fusion"]);
        let mut det = CriticalPhaseDetector::new(&profile, 0.7);
        assert!(det.observe(&record(1, &[(0, 1_000), (1, 1_000)])));
        // Later unrelated steps keep it triggered.
        assert!(det.observe(&record(2, &[(0, 1), (1, 1)])));
    }

    #[test]
    fn similarity_merges_and_splits() {
        let a = vec![OpId(1), OpId(2), OpId(3)];
        let b = vec![OpId(2), OpId(3), OpId(4)];
        assert!((similarity(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(similarity(&[], &[]), 1.0);
        assert_eq!(similarity(&a, &[]), 0.0);
    }

    #[test]
    fn missing_pattern_ops_in_catalog_are_tolerated() {
        let profile = profile_shell(&["MatMul"]);
        let mut det = CriticalPhaseDetector::new(&profile, 0.7);
        // No pattern ids resolvable; only the >50% rule applies.
        let triggered = det.observe(&record(1, &[(0, 2_000)]));
        assert!(triggered, ">50%% rule still fires");
    }
}
