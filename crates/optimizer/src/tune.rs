//! The online hill-climbing tuner.
//!
//! "If performance improves and output does not change, TPUPoint-Optimizer
//! continues adjusting parameter values in the same direction until an
//! optimal value for that specific parameter is found. If no other
//! neighboring values are better than the default value, TPUPoint-Optimizer
//! will keep the default value" (Section VII-B).

use tpupoint_graph::{AdjustableParam, PipelineSpec};
use tpupoint_runtime::{JobConfig, TrainingJob};
use tpupoint_simcore::trace::NullSink;
use tpupoint_simcore::SimDuration;

/// A throughput measurement of one candidate configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Steps per second over the measurement segment's steady window.
    pub steps_per_sec: f64,
    /// Output digest of the measured configuration.
    pub output_digest: u64,
    /// Steady-window time the measurement segment spent training.
    pub segment_wall: SimDuration,
    /// Training steps the segment completed (they still count toward the
    /// job — tuning is online).
    pub segment_steps: u64,
}

/// Measures candidate pipelines. Object-safe so tests can fake it.
pub trait Measure {
    /// Runs a measurement segment with `pipeline` and reports throughput.
    fn measure(&mut self, pipeline: &PipelineSpec) -> Throughput;
}

/// Measures by running a short training segment of the real job — the
/// simulation analogue of resuming from the phase's nearest checkpoint
/// with instrumented code.
#[derive(Debug)]
pub struct SegmentRunner {
    base: JobConfig,
    segment_steps: u64,
}

impl SegmentRunner {
    /// Creates a runner measuring `segment_steps`-step segments of `base`.
    pub fn new(base: JobConfig, segment_steps: u64) -> Self {
        SegmentRunner {
            base,
            segment_steps: segment_steps.max(8),
        }
    }
}

impl Measure for SegmentRunner {
    fn measure(&mut self, pipeline: &PipelineSpec) -> Throughput {
        let mut cfg = self.base.clone();
        cfg.pipeline = pipeline.clone();
        cfg.train_steps = self.segment_steps;
        cfg.steps_per_eval = None;
        cfg.eval_steps = 0;
        cfg.checkpoint_every = 0;
        cfg.warmup_steps = 2;
        let report = TrainingJob::new(cfg).run(&mut NullSink);
        Throughput {
            steps_per_sec: report.throughput_steps_per_sec(),
            // The guard must compare *semantic* output, which the segment
            // inherits from the base config's pipeline-affecting fields.
            output_digest: semantic_digest(&self.base, pipeline),
            segment_wall: report.steady_window,
            segment_steps: report.steps_completed,
        }
    }
}

/// Digest of output-affecting state for the guard: the base job's digest
/// combined with every output-affecting pipeline knob.
fn semantic_digest(base: &JobConfig, pipeline: &PipelineSpec) -> u64 {
    let mut cfg = base.clone();
    cfg.pipeline = pipeline.clone();
    cfg.output_digest()
}

/// What happened to one candidate value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// Improved throughput with unchanged output: adopted.
    Accepted,
    /// Did not improve throughput enough: reverted.
    NoImprovement,
    /// Changed the output digest: rejected by the guard.
    OutputChanged,
    /// Validation rejected the value.
    Invalid,
}

/// Record of one candidate evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// The knob under adjustment.
    pub param: AdjustableParam,
    /// Value before the trial.
    pub from: i64,
    /// Candidate value.
    pub to: i64,
    /// Steps/second measured (0 when invalid).
    pub steps_per_sec: f64,
    /// Outcome.
    pub outcome: TrialOutcome,
}

/// Tuner options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerOptions {
    /// Minimum relative throughput gain to accept a candidate.
    pub min_gain: f64,
    /// Maximum accepted steps per parameter per direction.
    pub max_steps_per_param: usize,
    /// Coordinate-descent passes over the parameter list. Knobs interact
    /// (more decode threads can make a deeper prefetch worthwhile), so a
    /// second pass can find gains the first could not; scanning stops
    /// early once a whole pass accepts nothing.
    pub passes: usize,
}

impl Default for TunerOptions {
    fn default() -> Self {
        TunerOptions {
            min_gain: 0.01,
            max_steps_per_param: 6,
            passes: 2,
        }
    }
}

/// Result of a tuning session.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The tuned pipeline.
    pub pipeline: PipelineSpec,
    /// Every candidate evaluation.
    pub trials: Vec<Trial>,
    /// Steady-window time spent inside measurement segments.
    pub measured_time: SimDuration,
    /// Training steps completed inside measurement segments. Tuning is
    /// *online*: these steps still advance the job, so the net overhead is
    /// `measured_time` minus the time those steps would have taken at the
    /// tuned rate.
    pub measured_steps: u64,
}

impl TuneOutcome {
    /// Net online-tuning overhead given the final tuned throughput.
    pub fn net_overhead(&self, tuned_steps_per_sec: f64) -> SimDuration {
        if tuned_steps_per_sec <= 0.0 {
            return self.measured_time;
        }
        let ideal = SimDuration::from_secs_f64(self.measured_steps as f64 / tuned_steps_per_sec);
        self.measured_time.saturating_sub(ideal)
    }
}

/// The hill-climbing tuner.
#[derive(Debug)]
pub struct Tuner {
    options: TunerOptions,
}

impl Tuner {
    /// Creates a tuner.
    pub fn new(options: TunerOptions) -> Self {
        Tuner { options }
    }

    /// Tunes `pipeline` over `params` using `measure`.
    pub fn tune(
        &self,
        pipeline: &PipelineSpec,
        params: &[AdjustableParam],
        measure: &mut dyn Measure,
    ) -> TuneOutcome {
        let _span = tpupoint_obs::span!("optimizer.tune", params = params.len());
        let trial_counter = tpupoint_obs::metrics().counter("optimizer.trials");
        let accepted_counter = tpupoint_obs::metrics().counter("optimizer.trials_accepted");
        let mut current = pipeline.clone();
        let mut trials = Vec::new();
        let mut measured_time = SimDuration::ZERO;
        let mut measured_steps = 0u64;

        let baseline = measure.measure(&current);
        measured_time += baseline.segment_wall;
        measured_steps += baseline.segment_steps;
        let reference_digest = baseline.output_digest;
        let mut best_tput = baseline.steps_per_sec;

        for _pass in 0..self.options.passes.max(1) {
            let mut pass_accepted = false;
            for &param in params {
                for direction_up in [true, false] {
                    let mut accepted_any = false;
                    for _ in 0..self.options.max_steps_per_param {
                        let from = param.get(&current);
                        let next = if direction_up {
                            param.step_up(from)
                        } else {
                            param.step_down(from)
                        };
                        let Some(candidate) = next else { break };
                        let mut probe = current.clone();
                        if param.set(&mut probe, candidate).is_err() {
                            trials.push(Trial {
                                param,
                                from,
                                to: candidate,
                                steps_per_sec: 0.0,
                                outcome: TrialOutcome::Invalid,
                            });
                            break;
                        }
                        let t = {
                            let _trial_span = tpupoint_obs::span!("optimizer.trial");
                            trial_counter.inc();
                            measure.measure(&probe)
                        };
                        measured_time += t.segment_wall;
                        measured_steps += t.segment_steps;
                        let outcome = if t.output_digest != reference_digest {
                            TrialOutcome::OutputChanged
                        } else if t.steps_per_sec > best_tput * (1.0 + self.options.min_gain) {
                            TrialOutcome::Accepted
                        } else {
                            TrialOutcome::NoImprovement
                        };
                        trials.push(Trial {
                            param,
                            from,
                            to: candidate,
                            steps_per_sec: t.steps_per_sec,
                            outcome,
                        });
                        if outcome == TrialOutcome::Accepted {
                            accepted_counter.inc();
                            best_tput = t.steps_per_sec;
                            current = probe;
                            accepted_any = true;
                            pass_accepted = true;
                        } else {
                            break;
                        }
                    }
                    // Only try the downward direction if upward never
                    // helped.
                    if accepted_any {
                        break;
                    }
                }
            }
            if !pass_accepted {
                break;
            }
        }
        TuneOutcome {
            pipeline: current,
            trials,
            measured_time,
            measured_steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fake measurement: throughput improves with prefetch depth up to 16,
    /// then degrades; everything else is neutral.
    struct FakeMeasure {
        calls: usize,
    }
    impl Measure for FakeMeasure {
        fn measure(&mut self, pipeline: &PipelineSpec) -> Throughput {
            self.calls += 1;
            let depth = pipeline.prefetch_depth as f64;
            let score = if depth <= 16.0 { depth } else { 16.0 - depth };
            Throughput {
                steps_per_sec: 100.0 + score,
                output_digest: 42,
                segment_wall: SimDuration::from_secs(1),
                segment_steps: 100,
            }
        }
    }

    #[test]
    fn climbs_to_the_optimum_and_stops() {
        let tuner = Tuner::new(TunerOptions::default());
        let base = PipelineSpec::tuned_default(32); // prefetch 8
        let outcome = tuner.tune(
            &base,
            &[AdjustableParam::PrefetchDepth],
            &mut FakeMeasure { calls: 0 },
        );
        let (tuned, trials) = (outcome.pipeline.clone(), outcome.trials.clone());
        assert_eq!(tuned.prefetch_depth, 16);
        assert!(trials
            .iter()
            .any(|t| t.outcome == TrialOutcome::Accepted && t.to == 16));
        // Attempted 32, saw degradation, stopped.
        assert!(trials
            .iter()
            .any(|t| t.outcome == TrialOutcome::NoImprovement && t.to == 32));
        assert!(outcome.measured_time >= SimDuration::from_secs(3));
        assert!(outcome.measured_steps >= 300);
        // Net overhead at the winning throughput is below the raw time.
        assert!(outcome.net_overhead(116.0) < outcome.measured_time);
    }

    /// Throughput always "improves" but the digest changes: guard rejects.
    struct OutputChanger;
    impl Measure for OutputChanger {
        fn measure(&mut self, pipeline: &PipelineSpec) -> Throughput {
            Throughput {
                steps_per_sec: pipeline.prefetch_depth as f64 * 100.0,
                output_digest: pipeline.prefetch_depth as u64, // varies!
                segment_wall: SimDuration::ZERO,
                segment_steps: 0,
            }
        }
    }

    #[test]
    fn output_guard_rejects_improvements_that_change_results() {
        let tuner = Tuner::new(TunerOptions::default());
        let base = PipelineSpec::tuned_default(32);
        let outcome = tuner.tune(&base, &[AdjustableParam::PrefetchDepth], &mut OutputChanger);
        assert_eq!(outcome.pipeline, base, "nothing may be adopted");
        assert!(outcome
            .trials
            .iter()
            .all(|t| t.outcome == TrialOutcome::OutputChanged));
    }

    /// Downward is better (fewer transform passes is faster).
    struct FewerPassesBetter;
    impl Measure for FewerPassesBetter {
        fn measure(&mut self, pipeline: &PipelineSpec) -> Throughput {
            Throughput {
                steps_per_sec: 100.0 - pipeline.host_transform_passes as f64,
                output_digest: 7,
                segment_wall: SimDuration::ZERO,
                segment_steps: 0,
            }
        }
    }

    #[test]
    fn tries_downward_when_upward_fails() {
        let tuner = Tuner::new(TunerOptions::default());
        let base = PipelineSpec::naive(32); // passes = 4
        let outcome = tuner.tune(
            &base,
            &[AdjustableParam::HostTransformPasses],
            &mut FewerPassesBetter,
        );
        assert_eq!(outcome.pipeline.host_transform_passes, 1);
    }

    /// Nothing helps: defaults are kept.
    struct Flat;
    impl Measure for Flat {
        fn measure(&mut self, _pipeline: &PipelineSpec) -> Throughput {
            Throughput {
                steps_per_sec: 100.0,
                output_digest: 1,
                segment_wall: SimDuration::ZERO,
                segment_steps: 0,
            }
        }
    }

    #[test]
    fn keeps_defaults_when_no_neighbor_wins() {
        let tuner = Tuner::new(TunerOptions::default());
        let base = PipelineSpec::tuned_default(32);
        let params: Vec<_> = AdjustableParam::all()
            .iter()
            .copied()
            .filter(|p| !p.affects_output())
            .collect();
        let outcome = tuner.tune(&base, &params, &mut Flat);
        assert_eq!(outcome.pipeline, base);
        assert!(outcome
            .trials
            .iter()
            .all(|t| t.outcome == TrialOutcome::NoImprovement));
    }

    #[test]
    fn segment_runner_measures_real_jobs() {
        let mut cfg = JobConfig::demo();
        cfg.jitter_sigma = 0.0;
        let mut runner = SegmentRunner::new(cfg.clone(), 10);
        let tuned = runner.measure(&PipelineSpec::tuned_default(32));
        let naive = runner.measure(&PipelineSpec::naive(32));
        assert!(tuned.steps_per_sec > 0.0);
        assert!(naive.steps_per_sec <= tuned.steps_per_sec * 1.01);
        // Both pipelines leave program output unchanged... except the
        // shuffle buffer differs between tuned and naive defaults.
        assert_ne!(tuned.output_digest, naive.output_digest);
        let tuned2 = runner.measure(&PipelineSpec::tuned_default(32));
        assert_eq!(tuned.output_digest, tuned2.output_digest);
    }
}
