//! The optimizer facade: analysis → detection → tuning → verification.

use crate::adjustable::{discover, Discovery};
use crate::detect::CriticalPhaseDetector;
use crate::tune::{SegmentRunner, Trial, TuneOutcome, Tuner, TunerOptions};
use tpupoint_graph::PipelineSpec;
use tpupoint_profiler::{ProfilerOptions, ProfilerSink};
use tpupoint_runtime::{JobConfig, RunReport, TrainingJob};
use tpupoint_simcore::trace::NullSink;
use tpupoint_simcore::SimDuration;

/// Everything TPUPoint-Optimizer did and measured for one workload.
#[derive(Debug, Clone)]
pub struct OptimizerReport {
    /// Adjustable-parameter discovery results.
    pub discovery: Discovery,
    /// Whether the critical-phase detector fired (tuning only runs then).
    pub critical_phase_detected: bool,
    /// Every candidate evaluation.
    pub trials: Vec<Trial>,
    /// Pipeline before tuning.
    pub initial_pipeline: PipelineSpec,
    /// Pipeline after tuning.
    pub tuned_pipeline: PipelineSpec,
    /// Full run with the default pipeline.
    pub baseline: RunReport,
    /// Full run with the tuned pipeline.
    pub optimized: RunReport,
    /// Wall time consumed by measurement segments.
    pub tuning_overhead: SimDuration,
}

/// Fixed post-processing time TPUPoint-Optimizer spends after the run
/// (statistics aggregation, code rewrite bookkeeping). Negligible for
/// long workloads; the reason sub-20-minute workloads "can actually take
/// a performance hit" (Section VII-C).
pub const POST_PROCESSING: SimDuration = SimDuration::from_secs(60);

impl OptimizerReport {
    /// Steady-state throughput gain (ignoring tuning overhead).
    pub fn throughput_speedup(&self) -> f64 {
        let base = self.baseline.throughput_steps_per_sec();
        let opt = self.optimized.throughput_steps_per_sec();
        if base <= 0.0 {
            return 1.0;
        }
        opt / base
    }

    /// Projected end-to-end speedup of a full-length run of
    /// `full_plan_steps` profile steps, amortizing session setup and the
    /// tuning overhead — the quantity behind Figure 14. Short workloads
    /// come out below 1.0 because the overhead never amortizes, matching
    /// the paper's observation about sub-20-minute workloads.
    pub fn projected_full_run_speedup(&self, full_plan_steps: u64) -> f64 {
        let project = |r: &RunReport, extra: SimDuration| -> f64 {
            let steps = r.steps_completed.max(1);
            let per_step = r.steady_window.as_secs_f64() / steps as f64;
            let fixed = r.session_wall.as_secs_f64() - r.steady_window.as_secs_f64();
            fixed + per_step * full_plan_steps as f64 + extra.as_secs_f64()
        };
        let base = project(&self.baseline, SimDuration::ZERO);
        let opt = project(&self.optimized, self.tuning_overhead + POST_PROCESSING);
        if opt <= 0.0 {
            return 1.0;
        }
        base / opt
    }

    /// True if the output-quality guarantee held: the tuned run produced
    /// the same output digest (and hence loss) as the baseline.
    pub fn output_preserved(&self) -> bool {
        self.baseline.output_digest == self.optimized.output_digest
            && self.baseline.final_loss == self.optimized.final_loss
    }
}

/// TPUPoint-Optimizer for one configured job.
#[derive(Debug)]
pub struct TpuPointOptimizer {
    config: JobConfig,
    tuner_options: TunerOptions,
    segment_steps: u64,
    detection_steps: u64,
}

impl TpuPointOptimizer {
    /// Creates an optimizer with default tuning options.
    pub fn new(config: JobConfig) -> Self {
        TpuPointOptimizer {
            config,
            tuner_options: TunerOptions::default(),
            segment_steps: 48,
            detection_steps: 64,
        }
    }

    /// Overrides the measurement-segment length.
    pub fn with_segment_steps(mut self, steps: u64) -> Self {
        self.segment_steps = steps.max(8);
        self
    }

    /// Overrides tuner options.
    pub fn with_tuner_options(mut self, options: TunerOptions) -> Self {
        self.tuner_options = options;
        self
    }

    /// Runs the detection segment with profiling enabled and feeds the
    /// records through the critical-phase detector.
    fn detect_critical_phase(&self) -> bool {
        let mut cfg = self.config.clone();
        cfg.train_steps = self.detection_steps.min(cfg.train_steps.max(1));
        cfg.steps_per_eval = None;
        cfg.eval_steps = 0;
        cfg.checkpoint_every = 0;
        // Profiling adds host overhead while the optimizer watches.
        cfg.host_overhead_frac += 0.05;
        let job = TrainingJob::new(cfg);
        let mut sink = ProfilerSink::new(job.catalog().clone(), ProfilerOptions::default());
        job.run(&mut sink);
        let profile = sink.finish();
        let mut detector = CriticalPhaseDetector::new(&profile, 0.7);
        for record in profile.training_records() {
            if detector.observe(record) {
                return true;
            }
        }
        false
    }

    /// Runs the full analyze–detect–tune–verify sequence.
    pub fn optimize(&self) -> OptimizerReport {
        let discovery = discover(&self.config.pipeline);
        let critical = self.detect_critical_phase();

        let outcome = if critical {
            let mut runner = SegmentRunner::new(self.config.clone(), self.segment_steps);
            let tuner = Tuner::new(self.tuner_options);
            tuner.tune(&self.config.pipeline, &discovery.adjustable, &mut runner)
        } else {
            TuneOutcome {
                pipeline: self.config.pipeline.clone(),
                trials: Vec::new(),
                measured_time: SimDuration::ZERO,
                measured_steps: 0,
            }
        };

        let baseline = TrainingJob::new(self.config.clone()).run(&mut NullSink);
        let mut optimized_cfg = self.config.clone();
        optimized_cfg.pipeline = outcome.pipeline.clone();
        let optimized = TrainingJob::new(optimized_cfg).run(&mut NullSink);

        // Tuning is online: measurement-segment steps still advance the
        // job, so only the slowdown relative to the tuned rate counts.
        let tuning_overhead = outcome.net_overhead(optimized.throughput_steps_per_sec());
        OptimizerReport {
            discovery,
            critical_phase_detected: critical,
            trials: outcome.trials,
            initial_pipeline: self.config.pipeline.clone(),
            tuned_pipeline: outcome.pipeline,
            baseline,
            optimized,
            tuning_overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tune::TrialOutcome;

    fn demo_config() -> JobConfig {
        let mut cfg = JobConfig::demo();
        cfg.jitter_sigma = 0.0;
        // Make the host clearly the bottleneck so tuning has headroom.
        cfg.pipeline = PipelineSpec::naive(cfg.pipeline.batch_size);
        cfg.dataset.host_us_per_batch = 200_000.0;
        cfg.train_steps = 40;
        cfg
    }

    #[test]
    fn optimizer_improves_a_naive_host_bound_job() {
        let report = TpuPointOptimizer::new(demo_config())
            .with_segment_steps(16)
            .optimize();
        assert!(report.critical_phase_detected);
        assert!(
            report.throughput_speedup() > 1.05,
            "speedup {}",
            report.throughput_speedup()
        );
        assert!(report
            .trials
            .iter()
            .any(|t| t.outcome == TrialOutcome::Accepted));
        assert!(report.output_preserved());
    }

    #[test]
    fn tuned_pipeline_never_regresses_throughput() {
        let report = TpuPointOptimizer::new(demo_config())
            .with_segment_steps(16)
            .optimize();
        assert!(report.throughput_speedup() >= 0.99);
    }

    #[test]
    fn shuffle_buffer_is_untouched() {
        let cfg = demo_config();
        let before = cfg.pipeline.shuffle_buffer;
        let report = TpuPointOptimizer::new(cfg)
            .with_segment_steps(16)
            .optimize();
        assert_eq!(report.tuned_pipeline.shuffle_buffer, before);
    }

    #[test]
    fn projected_speedup_penalizes_short_runs() {
        let report = TpuPointOptimizer::new(demo_config())
            .with_segment_steps(16)
            .optimize();
        let short = report.projected_full_run_speedup(40);
        let long = report.projected_full_run_speedup(500_000);
        assert!(long > short, "long {long} vs short {short}");
        assert!(short < long, "overhead should matter more for short runs");
    }

    #[test]
    fn overhead_is_accounted() {
        let report = TpuPointOptimizer::new(demo_config())
            .with_segment_steps(16)
            .optimize();
        // Online tuning: the net overhead is positive (candidates ran
        // slower than the tuned rate) but bounded.
        assert!(report.tuning_overhead > SimDuration::ZERO);
    }
}
