//! # tpupoint-optimizer
//!
//! TPUPoint-Optimizer (Section VII of the paper): automatic, online tuning
//! of a workload's *adjustable parameters* — input-pipeline buffer sizes,
//! thread counts, and reorderable host transforms — "without programmer
//! input", while "ensur\[ing\] that tuning does not affect program-execution
//! output".
//!
//! The three stages map directly onto the paper:
//!
//! 1. **Program analysis** ([`adjustable`]) — discover which parameters
//!    are adjustable: knobs whose modification raises errors are dropped,
//!    and knobs that change program *output* (the shuffle buffer) are
//!    excluded by the output-quality guard.
//! 2. **Critical-phase detection** ([`detect`]) — watch the profile stream
//!    for the common bottleneck operator pattern (reshape / infeed /
//!    fusion / outfeed) in the dominant phase, or a phase exceeding half
//!    of aggregate execution time.
//! 3. **Online tuning** ([`tune`]) — hill-climb each adjustable parameter:
//!    keep stepping in a direction while measured throughput improves and
//!    the output digest is unchanged; revert to the best (possibly
//!    default) value otherwise. Measurement segments restart from the
//!    nearest checkpoint rather than step zero (Section IV-C), modeled
//!    here by running short jobs.
//!
//! [`TpuPointOptimizer`] ties the stages together and produces the
//! before/after comparison behind Figures 14–16.

pub mod adjustable;
pub mod detect;
pub mod optimizer;
pub mod tune;

pub use adjustable::{discover, Discovery, ExclusionReason};
pub use detect::CriticalPhaseDetector;
pub use optimizer::{OptimizerReport, TpuPointOptimizer};
pub use tune::{Measure, SegmentRunner, Throughput, Trial, TrialOutcome, Tuner, TunerOptions};
