//! Tiny flag parser: `--key value` pairs, `--flag` booleans, and
//! positional arguments, with helpful errors.

use std::collections::BTreeMap;

/// Parsed arguments of one subcommand.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--key value` options.
    options: BTreeMap<String, String>,
    /// Bare `--flag` switches.
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv`, treating `known_flags` as value-less switches.
    ///
    /// # Errors
    ///
    /// Returns a message when an option is missing its value.
    pub fn parse(argv: &[String], known_flags: &[&str]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if known_flags.contains(&name) {
                    args.flags.push(name.to_owned());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    args.options.insert(name.to_owned(), value.clone());
                }
            } else {
                args.positional.push(arg.clone());
            }
        }
        Ok(args)
    }

    /// Raw option value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Option value parsed as `T`, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value fails to parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{key} got unparsable value `{raw}`")),
        }
    }

    /// True if the bare flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// First positional argument or an error naming what was expected.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing argument.
    pub fn positional0(&self, what: &str) -> Result<&str, String> {
        self.positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_options_flags_and_positionals() {
        let args = Args::parse(
            &argv(&["file.json", "--threshold", "0.8", "--naive", "extra"]),
            &["naive"],
        )
        .unwrap();
        assert_eq!(args.positional, vec!["file.json", "extra"]);
        assert_eq!(args.get("threshold"), Some("0.8"));
        assert!(args.flag("naive"));
        assert!(!args.flag("tuned"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Args::parse(&argv(&["--out"]), &[]).unwrap_err();
        assert!(err.contains("--out"));
    }

    #[test]
    fn typed_getters_parse_and_default() {
        let args = Args::parse(&argv(&["--scale", "0.5"]), &[]).unwrap();
        assert_eq!(args.get_or("scale", 1.0_f64).unwrap(), 0.5);
        assert_eq!(args.get_or("seed", 42_u64).unwrap(), 42);
        assert!(args.get_or::<f64>("scale", 1.0).is_ok());
        let bad = Args::parse(&argv(&["--scale", "abc"]), &[]).unwrap();
        assert!(bad.get_or::<f64>("scale", 1.0).is_err());
    }

    #[test]
    fn positional0_errors_helpfully() {
        let args = Args::parse(&argv(&[]), &[]).unwrap();
        let err = args.positional0("a profile path").unwrap_err();
        assert!(err.contains("profile path"));
    }
}
