//! Tiny flag parser: `--key value` pairs, `--flag` booleans, and
//! positional arguments, with helpful errors.
//!
//! Every subcommand declares the options and flags it understands; an
//! unrecognized `--option` is rejected with a "did you mean" hint instead
//! of being silently swallowed as a key/value pair.

use std::collections::BTreeMap;

/// Parsed arguments of one subcommand.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--key value` options.
    options: BTreeMap<String, String>,
    /// Bare `--flag` switches.
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv` against the subcommand's vocabulary:
    /// `known_options` take a value (`--key value`), `known_flags` are
    /// value-less switches.
    ///
    /// # Errors
    ///
    /// Returns a message when an option is missing its value or is not in
    /// the vocabulary (with a closest-match suggestion when one is near).
    pub fn parse(
        argv: &[String],
        known_options: &[&str],
        known_flags: &[&str],
    ) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if known_flags.contains(&name) {
                    args.flags.push(name.to_owned());
                } else if known_options.contains(&name) {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    args.options.insert(name.to_owned(), value.clone());
                } else {
                    let mut msg = format!("unknown option `--{name}`");
                    let candidates = known_options.iter().chain(known_flags);
                    if let Some(near) = closest_match(name, candidates) {
                        msg.push_str(&format!("; did you mean `--{near}`?"));
                    }
                    return Err(msg);
                }
            } else {
                args.positional.push(arg.clone());
            }
        }
        Ok(args)
    }

    /// Raw option value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Option value parsed as `T`, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value fails to parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{key} got unparsable value `{raw}`")),
        }
    }

    /// True if the bare flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// First positional argument or an error naming what was expected.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing argument.
    pub fn positional0(&self, what: &str) -> Result<&str, String> {
        self.positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}"))
    }
}

/// The known name closest to `unknown`, when close enough to be a likely
/// typo: within edit distance 2, or a prefix/extension of the unknown
/// name (so `--thresh` suggests `--threshold`).
fn closest_match<'a>(
    unknown: &str,
    candidates: impl Iterator<Item = &'a &'a str>,
) -> Option<&'a str> {
    let mut best: Option<(usize, &str)> = None;
    for candidate in candidates {
        if candidate.starts_with(unknown) || unknown.starts_with(candidate) {
            return Some(candidate);
        }
        let distance = edit_distance(unknown, candidate);
        if best.is_none_or(|(d, _)| distance < d) {
            best = Some((distance, candidate));
        }
    }
    best.filter(|&(d, _)| d <= 2).map(|(_, name)| name)
}

/// Levenshtein distance over bytes; option names are ASCII.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitute = prev[j] + usize::from(ca != cb);
            cur[j + 1] = substitute.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_options_flags_and_positionals() {
        let args = Args::parse(
            &argv(&["file.json", "--threshold", "0.8", "--naive", "extra"]),
            &["threshold"],
            &["naive"],
        )
        .unwrap();
        assert_eq!(args.positional, vec!["file.json", "extra"]);
        assert_eq!(args.get("threshold"), Some("0.8"));
        assert!(args.flag("naive"));
        assert!(!args.flag("tuned"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Args::parse(&argv(&["--out"]), &["out"], &[]).unwrap_err();
        assert!(err.contains("--out"));
    }

    #[test]
    fn typed_getters_parse_and_default() {
        let args = Args::parse(&argv(&["--scale", "0.5"]), &["scale"], &[]).unwrap();
        assert_eq!(args.get_or("scale", 1.0_f64).unwrap(), 0.5);
        assert_eq!(args.get_or("seed", 42_u64).unwrap(), 42);
        assert!(args.get_or::<f64>("scale", 1.0).is_ok());
        let bad = Args::parse(&argv(&["--scale", "abc"]), &["scale"], &[]).unwrap();
        assert!(bad.get_or::<f64>("scale", 1.0).is_err());
    }

    #[test]
    fn positional0_errors_helpfully() {
        let args = Args::parse(&argv(&[]), &[], &[]).unwrap();
        let err = args.positional0("a profile path").unwrap_err();
        assert!(err.contains("profile path"));
    }

    #[test]
    fn unknown_option_is_rejected() {
        let err = Args::parse(&argv(&["--bogus", "1"]), &["out"], &["naive"]).unwrap_err();
        assert!(err.contains("unknown option `--bogus`"), "{err}");
    }

    #[test]
    fn typo_gets_a_did_you_mean_hint() {
        let err =
            Args::parse(&argv(&["--thresold", "0.8"]), &["threshold", "out"], &[]).unwrap_err();
        assert!(err.contains("did you mean `--threshold`?"), "{err}");
    }

    #[test]
    fn prefix_typo_suggests_the_long_name() {
        let err = Args::parse(&argv(&["--thresh", "0.8"]), &["threshold"], &[]).unwrap_err();
        assert!(err.contains("did you mean `--threshold`?"), "{err}");
    }

    #[test]
    fn flag_names_are_also_suggested() {
        let err = Args::parse(&argv(&["--nave"]), &["out"], &["naive"]).unwrap_err();
        assert!(err.contains("did you mean `--naive`?"), "{err}");
    }

    #[test]
    fn far_off_names_get_no_suggestion() {
        let err = Args::parse(&argv(&["--zzzzqqq", "1"]), &["out"], &[]).unwrap_err();
        assert!(err.contains("unknown option"), "{err}");
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }
}
