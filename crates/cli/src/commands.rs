//! Subcommand implementations.

use crate::args::Args;
use crate::obs::{obs_report_cmd, ObsSession, OBS_OPTIONS};
use std::fs::File;
use std::path::PathBuf;
use tpupoint::analyzer::PhaseSet;
use tpupoint::optimizer::{TpuPointOptimizer, TrialOutcome};
use tpupoint::prelude::*;
use tpupoint::profiler::audit_windows;
use tpupoint::sim::SimDuration;

const USAGE: &str = "\
tpupoint — automatic characterization of (simulated) TPU ML behavior

USAGE:
  tpupoint workloads
      List every workload of the suite with its Table I parameters.

  tpupoint profile --workload <id> [--generation v2|v3] [--scale F]
                   [--seed N] [--naive] [--out DIR] [--store-retries N]
                   [--store-fault-prob F] [--store-fault-seed N]
                   [--store-format jsonl|binary] [--store-segment-kib N]
                   [--store-retain-mib N] [--pipeline-profiler]
                   [--paired-baseline] [--sim-lanes N]
      Simulate and profile a training session; writes <DIR>/profile.json.
      --store-retries bounds record-store retries before spilling to
      memory (default 3; 0 disables resilience). --store-fault-prob
      injects store failures with the given per-call probability
      (deterministic under --store-fault-seed) to exercise that path.
      --store-format picks the record encoding (default jsonl): binary
      writes length-prefixed checksummed segments, rotated every
      --store-segment-kib KiB (default 256) and merged by a background
      compaction task; --store-retain-mib budgets the sealed bytes kept,
      retiring the oldest segments with manifest accounting (0 = keep
      everything). Both formats share the crash-recovery contract;
      `analyze --recover` auto-detects whichever was written.
      --pipeline-profiler seals windows off the simulation thread on the
      shared worker pool (TPUPOINT_THREADS); the recorded output is
      byte-identical to the default serial path. --paired-baseline also
      runs an uninstrumented twin of the job and reports the *measured*
      instrumented-to-baseline wall ratio instead of the modeled bound.
      --sim-lanes shards the simulator's processes into N event lanes
      under conservative time-window sync, flushing trace records off
      the critical path on the shared pool; output is byte-identical to
      the serial engine for any N (default 1 = serial).

  tpupoint analyze <profile.json> [--algorithm ols|kmeans|dbscan]
                   [--threshold F] [--k N] [--min-samples N] [--out DIR]
                   [--threads N] [--recover] [--prefix-stable]
      Detect phases and print coverage, top operators, and checkpoints.
      --threads sizes the analyzer worker pool (default: TPUPOINT_THREADS
      or all cores); results are identical for any value. With --recover
      the argument is a records directory (e.g. <out>/records) from a
      possibly crashed run: the valid record prefix is salvaged past any
      torn tail and analyzed, with the losses reported. --prefix-stable
      replays the streaming analyzer over the profile and, once its phase
      assignments stabilize, analyzes only that prefix of the steps — a
      SeqPoint-style answer to \"how little of the run characterizes it\".

  tpupoint serve --workload <id> [--generation v2|v3] [--scale F]
                 [--seed N] [--naive] [--out DIR]
                 [--metrics-listen HOST:PORT] [--pace-us N]
                 [--store-retries N] [--store-fault-prob F]
                 [--store-fault-seed N] [--store-format jsonl|binary]
                 [--store-segment-kib N] [--store-retain-mib N]
                 [--recorded-backoff]
                 [--stop-on-stable K] [--paired-baseline]
      Run the job as a long-lived daemon on a wall-clock recording
      thread, serving live observability over HTTP (default listen
      127.0.0.1:9090; port 0 picks an ephemeral port):
        GET  /metrics   Prometheus text exposition of all live series
        GET  /healthz   200 ok, or 503 + degradation causes
        GET  /status    JSON: step, OLS phase, windows, spill depth
        GET  /phases    JSON: live streaming-analyzer phase structure
        POST /quit      graceful shutdown (as does Ctrl-C / SIGINT)
      --pace-us paces the job by sleeping N real microseconds per step
      (default 500; 0 runs at batch speed). Retry backoff is actually
      slept on this lane unless --recorded-backoff restores the batch
      recorded-not-slept behavior. Graceful shutdown seals all .part
      record files and flushes a final scrape to <DIR>/metrics.prom;
      the recorded JSONL is byte-identical to a batch run of the seed.
      --stop-on-stable K ends the paced run early (exactly like /quit)
      once the live phase assignments hold stable for K consecutive
      analyzer updates; the remaining steps rush at batch speed so the
      recorded profile stays complete.

  tpupoint serve --fleet [--out DIR] [--metrics-listen HOST:PORT]
                 [--pace-us N] [--max-running N] [--max-queued N]
                 [--per-tenant N] [--fleet-memory-mib N]
                 [--store-retries N]
                 [--store-format jsonl|binary] [--store-segment-kib N]
                 [--store-retain-mib N] [--recorded-backoff]
      Run the multi-job fleet daemon: one scrape plane over N concurrent
      jobs, each recording to its own sharded store under
      <DIR>/jobs/<id>/ and into its own metrics registry. No --workload
      here — jobs arrive over the control API:
        POST   /jobs       admit a job; JSON body: {\"workload\": \"...\",
                           \"id\"?, \"tenant\"?, \"generation\"?, \"scale\"?,
                           \"seed\"?, \"naive\"?, \"pace_us\"?,
                           \"store_fault_prob\"?, \"store_fault_seed\"?}
        GET    /jobs       list all jobs;  GET /jobs/<id> one job
        DELETE /jobs/<id>  cancel (queued exits now, running drains)
        GET    /metrics    every job's series labeled {job,tenant,
                           workload}, plus a merged job=\"fleet\" aggregate
        GET    /healthz    degradations attributed per job and tenant
        POST   /quit       drain every job gracefully and exit
      --max-running bounds concurrent jobs (default 4), --max-queued the
      admission queue (default 64), --per-tenant each tenant's active
      jobs (default 8). --fleet-memory-mib caps the fleet's memory
      budget (default 0 = unbounded): admissions past the budget are
      shed with 429, each admitted job's seal-queue and spill caps are
      sized from its share, and the budget is exported as
      fleet.memory_budget_bytes / fleet.memory_inuse_bytes. Scrapes are
      served from per-job published snapshots (refreshed at seal points
      and on a ~200 ms cadence), so /metrics never blocks on a live
      job. Each job's sealed JSONL is byte-identical to a
      solo profile run of the same workload, scale, and seed. Under
      --store-format binary the --store-retain-mib budget applies per
      job, bounding every tenant's record footprint.

  tpupoint optimize --workload <id> [--generation v2|v3] [--scale F]
                    [--naive]
      Run TPUPoint-Optimizer and print the tuning report.

  tpupoint compare <a.json> <b.json> [--top N]
      Compare two profiles op by op (v2 vs v3, naive vs tuned, ...).

  tpupoint report <profile.json>
      Print a full characterization report (phases, operators, bottleneck).

  tpupoint audit <profile.json>
      Audit the profile's window stream for gaps, overlaps, and losses.

  tpupoint obs-report <metrics.json>
      Summarize a --metrics-out file: per-stage wall time, analyzer
      algorithm runtimes, profiler overhead, and window health.

OBSERVABILITY (profile, analyze, optimize):
  --metrics-out <path>   Write the command's own metrics (counters,
                         gauges, histograms) to <path>.
  --self-trace <path>    Write a Chrome-tracing JSON of the command's
                         internal spans to <path>.
  --obs-format json|prom Format for --metrics-out (default json).
";

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    match argv.first().map(String::as_str) {
        Some("workloads") => workloads(),
        Some("profile") => profile(&argv[1..]),
        Some("serve") => serve(&argv[1..]),
        Some("analyze") => analyze(&argv[1..]),
        Some("optimize") => optimize(&argv[1..]),
        Some("compare") => compare_cmd(&argv[1..]),
        Some("report") => report(&argv[1..]),
        Some("audit") => audit(&argv[1..]),
        Some("obs-report") => obs_report_cmd(&argv[1..]),
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    }
}

fn parse_generation(args: &Args) -> Result<TpuGeneration, String> {
    match args.get("generation").unwrap_or("v2") {
        "v2" | "V2" => Ok(TpuGeneration::V2),
        "v3" | "V3" => Ok(TpuGeneration::V3),
        other => Err(format!("--generation must be v2 or v3, got `{other}`")),
    }
}

fn build_from_args(args: &Args) -> Result<JobConfig, String> {
    let id: WorkloadId = args
        .get("workload")
        .ok_or("--workload is required")?
        .parse()
        .map_err(|e| format!("{e}"))?;
    let generation = parse_generation(args)?;
    let opts = BuildOptions {
        scale: args.get_or("scale", id.default_sim_scale())?,
        seed: args.get_or("seed", 42)?,
        variant: if args.flag("naive") {
            Variant::Naive
        } else {
            Variant::Tuned
        },
        ..BuildOptions::default()
    };
    Ok(build(id, generation, &opts))
}

fn workloads() -> Result<(), String> {
    println!(
        "{:20} {:10} {:>7} {:>12} {:>12} {:>8}",
        "id", "dataset", "batch", "train steps", "size (MiB)", "scale"
    );
    for id in WorkloadId::all() {
        let cfg = build(id, TpuGeneration::V2, &BuildOptions::default());
        println!(
            "{:20} {:10} {:>7} {:>12} {:>12.2} {:>8.3}",
            id.label().to_ascii_lowercase(),
            cfg.dataset.name,
            cfg.pipeline.batch_size,
            cfg.train_steps,
            cfg.dataset.size_bytes as f64 / (1024.0 * 1024.0),
            id.default_sim_scale(),
        );
    }
    Ok(())
}

const BUILD_OPTIONS: [&str; 4] = ["workload", "generation", "scale", "seed"];

fn with_obs<'a>(options: &[&'a str]) -> Vec<&'a str> {
    options.iter().chain(OBS_OPTIONS.iter()).copied().collect()
}

/// The record-store tuning options shared by `profile` and `serve`.
const STORE_OPTIONS: [&str; 3] = ["store-format", "store-segment-kib", "store-retain-mib"];

/// Applies `--store-format`, `--store-segment-kib`, and
/// `--store-retain-mib` to the builder.
fn apply_store_options(
    builder: tpupoint::TpuPointBuilder,
    args: &Args,
) -> Result<tpupoint::TpuPointBuilder, String> {
    let format: tpupoint::profiler::StoreFormat =
        args.get("store-format").unwrap_or("jsonl").parse()?;
    let segment_kib: u64 = args.get_or("store-segment-kib", 256)?;
    let retain_mib: u64 = args.get_or("store-retain-mib", 0)?;
    Ok(builder
        .store_format(format)
        .store_segment_bytes(segment_kib.max(1) * 1024)
        .store_retention_bytes(retain_mib * 1024 * 1024))
}

fn profile(argv: &[String]) -> Result<(), String> {
    let mut options = with_obs(&BUILD_OPTIONS);
    options.extend([
        "out",
        "store-retries",
        "store-fault-prob",
        "store-fault-seed",
        "sim-lanes",
    ]);
    options.extend(STORE_OPTIONS);
    let args = Args::parse(
        argv,
        &options,
        &["naive", "pipeline-profiler", "paired-baseline"],
    )?;
    let session = ObsSession::start(&args)?;
    let config = build_from_args(&args)?;
    let out: PathBuf = args.get("out").unwrap_or("tpupoint-out").into();
    let fault_prob: f64 = args.get_or("store-fault-prob", 0.0)?;
    if !(0.0..=1.0).contains(&fault_prob) {
        return Err(format!(
            "--store-fault-prob must be in [0, 1], got {fault_prob}"
        ));
    }
    let builder = TpuPoint::builder()
        .analyzer(true)
        .output_dir(&out)
        .store_retries(args.get_or("store-retries", 3)?)
        .store_fault(fault_prob, args.get_or("store-fault-seed", 0xFA117)?)
        .pipeline_profiler(args.flag("pipeline-profiler"))
        .paired_baseline(args.flag("paired-baseline"))
        .sim_lanes(args.get_or("sim-lanes", 1)?);
    let tp = apply_store_options(builder, &args)?.build();
    let run = tp
        .profile(config)
        .map_err(|e| format!("profiling failed: {e}"))?;
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let path = out.join("profile.json");
    run.profile
        .save_json(File::create(&path).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    println!(
        "profiled {} ({}) on {:?}: {} steps, wall {:.1}s",
        run.profile.model,
        run.profile.dataset,
        run.report.generation,
        run.report.steps_completed,
        run.report.session_wall.as_secs_f64()
    );
    println!(
        "TPU idle {:.1}%  MXU util {:.1}%  windows {}  checkpoints {}",
        run.profile.steady_tpu_idle_fraction() * 100.0,
        run.profile.steady_mxu_utilization() * 100.0,
        run.profile.windows.len(),
        run.profile.checkpoints.len()
    );
    if run.profile.store_errors > 0 {
        eprintln!(
            "warning: {} record-store error(s) surfaced past the retry layer{}; \
             the persisted record stream under {} may be incomplete",
            run.profile.store_errors,
            run.profile
                .store_error
                .as_deref()
                .map(|e| format!(" (first: {e})"))
                .unwrap_or_default(),
            out.join("records").display()
        );
    }
    println!("profile written to {}", path.display());
    session.finish()
}

fn serve(argv: &[String]) -> Result<(), String> {
    let mut options = with_obs(&BUILD_OPTIONS);
    options.extend([
        "out",
        "metrics-listen",
        "pace-us",
        "store-retries",
        "store-fault-prob",
        "store-fault-seed",
        "stop-on-stable",
        "max-running",
        "max-queued",
        "per-tenant",
        "fleet-memory-mib",
    ]);
    options.extend(STORE_OPTIONS);
    let args = Args::parse(
        argv,
        &options,
        &["naive", "recorded-backoff", "paired-baseline", "fleet"],
    )?;
    if args.flag("fleet") {
        return serve_fleet(&args);
    }
    let session = ObsSession::start(&args)?;
    let config = build_from_args(&args)?;
    let out: PathBuf = args.get("out").unwrap_or("tpupoint-out").into();
    let fault_prob: f64 = args.get_or("store-fault-prob", 0.0)?;
    if !(0.0..=1.0).contains(&fault_prob) {
        return Err(format!(
            "--store-fault-prob must be in [0, 1], got {fault_prob}"
        ));
    }
    let listen = args.get("metrics-listen").unwrap_or("127.0.0.1:9090");
    let mut builder = TpuPoint::builder()
        .analyzer(true)
        .output_dir(&out)
        .store_retries(args.get_or("store-retries", 3)?)
        .store_fault(fault_prob, args.get_or("store-fault-seed", 0xFA117)?)
        .serve(listen)
        .serve_pace_us(args.get_or("pace-us", 500)?)
        .serve_real_backoff(!args.flag("recorded-backoff"))
        .serve_sigint(true)
        .paired_baseline(args.flag("paired-baseline"));
    builder = apply_store_options(builder, &args)?;
    if let Some(raw) = args.get("stop-on-stable") {
        let k: u64 = raw
            .parse()
            .map_err(|_| format!("--stop-on-stable got unparsable value `{raw}`"))?;
        builder = builder.stop_on_stable(k);
    }
    let tp = builder.build();
    let serving = tp
        .serve(config)
        .map_err(|e| format!("serve failed to start: {e}"))?;
    let addr = serving.addr();
    println!("serving on http://{addr}");
    println!(
        "  GET /metrics  GET /healthz  GET /status  GET /phases  POST /quit  (Ctrl-C to stop)"
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let run = serving
        .wait()
        .map_err(|e| format!("serve run failed: {e}"))?;
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let path = out.join("profile.json");
    run.profile
        .save_json(File::create(&path).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    println!(
        "served {} ({}): {} steps, {} windows, {} checkpoints",
        run.profile.model,
        run.profile.dataset,
        run.report.steps_completed,
        run.profile.windows.len(),
        run.profile.checkpoints.len()
    );
    println!(
        "sealed records under {}; final scrape at {}",
        out.join("records").display(),
        out.join("metrics.prom").display()
    );
    println!("profile written to {}", path.display());
    session.finish()
}

/// The `serve --fleet` lane: no workload on the command line — jobs
/// arrive over `POST /jobs` until `/quit` (or Ctrl-C) drains the fleet.
fn serve_fleet(args: &Args) -> Result<(), String> {
    let out: PathBuf = args.get("out").unwrap_or("tpupoint-fleet").into();
    let listen = args.get("metrics-listen").unwrap_or("127.0.0.1:9090");
    let memory_mib: u64 = args.get_or("fleet-memory-mib", 0)?;
    let limits = tpupoint::runtime::FleetLimits {
        max_running: args.get_or("max-running", 4)?,
        max_queued: args.get_or("max-queued", 64)?,
        per_tenant_active: args.get_or("per-tenant", 8)?,
        memory_budget_bytes: memory_mib * 1024 * 1024,
    };
    let builder = TpuPoint::builder()
        .analyzer(true)
        .output_dir(&out)
        .store_retries(args.get_or("store-retries", 3)?)
        .serve(listen)
        .serve_pace_us(args.get_or("pace-us", 500)?)
        .serve_real_backoff(!args.flag("recorded-backoff"))
        .serve_sigint(true)
        .fleet_limits(limits);
    let tp = apply_store_options(builder, args)?.build();
    let session = tp
        .serve_fleet()
        .map_err(|e| format!("fleet failed to start: {e}"))?;
    let addr = session.addr();
    println!("fleet serving on http://{addr}");
    println!(
        "  POST /jobs  GET /jobs[/<id>]  DELETE /jobs/<id>  GET /metrics  \
         GET /healthz  POST /quit  (Ctrl-C to stop)"
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let statuses = session
        .wait()
        .map_err(|e| format!("fleet drain failed: {e}"))?;
    println!("fleet drained: {} job(s)", statuses.len());
    for job in &statuses {
        println!(
            "  {:20} tenant {:10} {:9} {:>6} steps{}",
            job.id,
            job.tenant,
            job.phase.as_str(),
            job.steps_completed,
            job.error
                .as_deref()
                .map(|e| format!("  error: {e}"))
                .unwrap_or_default()
        );
    }
    println!(
        "sharded records under {}; final scrape at {}",
        out.join("jobs").display(),
        out.join("metrics.prom").display()
    );
    Ok(())
}

fn load_profile(path: &str) -> Result<Profile, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Profile::load_json(file).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Salvages a profile from a (possibly crashed) record directory of
/// either format — JSONL lines or binary segments, auto-detected — and
/// reports what the recovery could and could not produce.
fn recover_profile(dir: &str) -> Result<Profile, String> {
    let summary = tpupoint::profiler::recover_records(std::path::Path::new(dir))
        .map_err(|e| format!("cannot recover records from {dir}: {e}"))?;
    println!(
        "recovered {} step record(s) and {} window(s) from {dir} ({})",
        summary.steps.len(),
        summary.windows.len(),
        if summary.sealed_files {
            "sealed stream"
        } else {
            "unsealed .part stream of a crashed writer"
        }
    );
    if let Some(manifest) = &summary.manifest {
        if manifest.steps_retired > 0 || manifest.windows_retired > 0 {
            println!(
                "  retention retired {} step(s) and {} window(s) (accounted, not lost)",
                manifest.steps_retired, manifest.windows_retired
            );
        }
    }
    if summary.skipped_step_lines > 0 || summary.skipped_window_lines > 0 {
        println!(
            "  skipped torn tail: {} step line(s), {} window line(s)",
            summary.skipped_step_lines, summary.skipped_window_lines
        );
    }
    let (missing_steps, missing_windows) = summary.missing_acknowledged();
    if missing_steps > 0 || missing_windows > 0 {
        println!(
            "  WARNING: {missing_steps} acknowledged step(s) and \
             {missing_windows} acknowledged window(s) are missing"
        );
    } else if summary.manifest.is_some() {
        println!("  every acknowledged record survived");
    }
    Ok(summary.to_profile())
}

fn analyze(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(
        argv,
        &with_obs(&[
            "algorithm",
            "threshold",
            "k",
            "min-samples",
            "out",
            "threads",
        ]),
        &["recover", "prefix-stable"],
    )?;
    let session = ObsSession::start(&args)?;
    let mut profile = if args.flag("recover") {
        let dir = args.positional0("records directory")?;
        recover_profile(dir)?
    } else {
        let path = args.positional0("profile.json path")?;
        load_profile(path)?
    };
    if args.flag("prefix-stable") {
        profile = prefix_stable(profile);
    }
    let analyzer = Analyzer::with_options(
        &profile,
        tpupoint::analyzer::AnalyzerOptions {
            threads: args.get_or("threads", 0)?,
            ..Default::default()
        },
    );
    let algorithm = args.get("algorithm").unwrap_or("ols");
    let set: PhaseSet = match algorithm {
        "ols" => analyzer.ols_phases(args.get_or("threshold", 0.7)?),
        "kmeans" => analyzer.kmeans_phases(args.get_or("k", 5)?),
        "dbscan" => analyzer
            .dbscan_phases(args.get_or("min-samples", 30)?)
            .map_err(|e| e.to_string())?,
        other => return Err(format!("unknown --algorithm `{other}`")),
    };
    println!(
        "{} found {} phases; top 3 cover {:.1}% of execution time",
        algorithm,
        set.len(),
        set.coverage_top(3) * 100.0
    );
    let checkpoints = analyzer.checkpoints_for(&set);
    for phase in set.by_time_desc().into_iter().take(5) {
        let share = phase.total_time.as_micros() as f64 / set.total_time.as_micros().max(1) as f64;
        let ckpt = checkpoints[phase.id]
            .map(|c| format!("ckpt@{}", c.checkpoint_step))
            .unwrap_or_else(|| "no ckpt".to_owned());
        println!(
            "  phase {:>3}{}: {:>6} steps, {:>5.1}% of time, {}",
            phase.id,
            if phase.is_noise { " (noise)" } else { "" },
            phase.steps.len(),
            share * 100.0,
            ckpt
        );
    }
    if let Some(top) = analyzer.top_operators_of_longest(&set, 5) {
        println!("top TPU ops:  {}", fmt_ops(&top.tpu));
        println!("top host ops: {}", fmt_ops(&top.host));
    }
    if let Some(dir) = args.get("out") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        let trace = dir.join("trace.json");
        let csv = dir.join("phases.csv");
        analyzer
            .write_chrome_trace(&set, File::create(&trace).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        analyzer
            .write_phase_csv(&set, File::create(&csv).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        println!("wrote {} and {}", trace.display(), csv.display());
    }
    session.finish()
}

/// Replays the streaming analyzer over `profile` and, if its phase
/// assignments stabilized, truncates the profile to that stable prefix
/// (the `--prefix-stable` early-stop answer). Falls back to the full
/// profile when the run never stabilized.
fn prefix_stable(profile: Profile) -> Profile {
    use tpupoint::analyzer::{replay, StreamingConfig};
    let replayed = replay(&profile, StreamingConfig::default());
    match replayed.stable_at_step {
        Some(step) => {
            let prefix = profile.prefix_through(step);
            println!(
                "streaming analyzer stable at step {step}; analyzing the \
                 {}-step prefix of {} recorded steps",
                prefix.steps.len(),
                profile.steps.len()
            );
            prefix
        }
        None => {
            println!(
                "streaming analyzer never stabilized over {} steps; \
                 analyzing the full profile",
                profile.steps.len()
            );
            profile
        }
    }
}

fn fmt_ops(rows: &[(String, SimDuration, u64)]) -> String {
    rows.iter()
        .map(|(n, d, _)| format!("{n} ({d})"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn optimize(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &with_obs(&BUILD_OPTIONS), &["naive"])?;
    let session = ObsSession::start(&args)?;
    let config = build_from_args(&args)?;
    let report = TpuPointOptimizer::new(config).optimize();
    println!(
        "critical phase detected: {}",
        report.critical_phase_detected
    );
    for trial in &report.trials {
        let marker = match trial.outcome {
            TrialOutcome::Accepted => "accept",
            TrialOutcome::NoImprovement => "revert",
            TrialOutcome::OutputChanged => "guard!",
            TrialOutcome::Invalid => "error ",
        };
        println!(
            "  [{marker}] {:22} {:>6} -> {:<6} {:>9.2} steps/s",
            trial.param.to_string(),
            trial.from,
            trial.to,
            trial.steps_per_sec
        );
    }
    println!(
        "throughput {:.2} -> {:.2} steps/s ({:.3}x), idle {:.1}% -> {:.1}%, mxu {:.1}% -> {:.1}%",
        report.baseline.throughput_steps_per_sec(),
        report.optimized.throughput_steps_per_sec(),
        report.throughput_speedup(),
        report.baseline.tpu_idle_fraction() * 100.0,
        report.optimized.tpu_idle_fraction() * 100.0,
        report.baseline.mxu_utilization() * 100.0,
        report.optimized.mxu_utilization() * 100.0,
    );
    println!(
        "output preserved: {}; online tuning overhead {}",
        report.output_preserved(),
        report.tuning_overhead
    );
    session.finish()
}

fn compare_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["top"], &[])?;
    let a = args.positional0("first profile path")?;
    let b = args
        .positional
        .get(1)
        .ok_or("missing second profile path")?;
    let pa = load_profile(a)?;
    let pb = load_profile(b)?;
    let cmp = tpupoint::analyzer::compare(&pa, &pb);
    print!("{}", cmp.render(args.get_or("top", 10)?));
    Ok(())
}

fn report(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[], &[])?;
    let path = args.positional0("profile.json path")?;
    let profile = load_profile(path)?;
    print!("{}", tpupoint::analyzer::characterize(&profile));
    Ok(())
}

fn audit(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[], &[])?;
    let path = args.positional0("profile.json path")?;
    let profile = load_profile(path)?;
    let audit = audit_windows(&profile.windows, SimDuration::from_millis(1));
    println!(
        "windows {}  events {}  span {:.1}s",
        audit.windows,
        audit.events,
        audit.covered_span.as_secs_f64()
    );
    println!(
        "gaps {} ({:.2}% unobserved)  overlaps {}",
        audit.gaps.len(),
        audit.unobserved_fraction() * 100.0,
        audit.overlaps.len()
    );
    println!(
        "max window: {} events, {:.1}s span (caps: 1,000,000 / 60s)",
        audit.max_window_events,
        audit.max_window_span.as_secs_f64()
    );
    println!(
        "dropped responses: {} windows, {} events ({:.2}% loss)",
        profile.dropped_windows,
        profile.lost_events,
        profile.loss_fraction() * 100.0
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(parts: &[&str]) -> Result<(), String> {
        let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        dispatch(&argv)
    }

    #[test]
    fn help_and_workloads_succeed() {
        run(&["--help"]).unwrap();
        run(&["workloads"]).unwrap();
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        let err = run(&["frobnicate"]).unwrap_err();
        assert!(err.contains("unknown subcommand"));
    }

    #[test]
    fn profile_analyze_audit_round_trip() {
        let dir = std::env::temp_dir().join(format!("tpupoint-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_str().unwrap().to_owned();
        run(&[
            "profile",
            "--workload",
            "bert-mrpc",
            "--scale",
            "0.1",
            "--out",
            &out,
        ])
        .unwrap();
        let profile_path = dir.join("profile.json");
        assert!(profile_path.exists());
        let p = profile_path.to_str().unwrap().to_owned();
        run(&["analyze", &p, "--algorithm", "ols"]).unwrap();
        run(&["analyze", &p, "--algorithm", "kmeans", "--k", "4"]).unwrap();
        run(&["analyze", &p, "--algorithm", "kmeans", "--prefix-stable"]).unwrap();
        run(&["report", &p]).unwrap();
        run(&["compare", &p, &p, "--top", "5"]).unwrap();
        run(&["audit", &p]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn laned_profile_writes_identical_records() {
        let base = std::env::temp_dir().join(format!("tpupoint-cli-lanes-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        for (sub, lanes) in [("serial", "1"), ("laned", "2")] {
            let out = base.join(sub);
            run(&[
                "profile",
                "--workload",
                "bert-mrpc",
                "--scale",
                "0.1",
                "--out",
                out.to_str().unwrap(),
                "--sim-lanes",
                lanes,
            ])
            .unwrap();
        }
        for file in ["records/steps.jsonl", "records/windows.jsonl"] {
            let serial = std::fs::read(base.join("serial").join(file)).unwrap();
            let laned = std::fs::read(base.join("laned").join(file)).unwrap();
            assert_eq!(serial, laned, "{file} must be byte-identical");
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn binary_profile_recovers_and_analyzes() {
        let dir = std::env::temp_dir().join(format!("tpupoint-cli-bin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_str().unwrap().to_owned();
        run(&[
            "profile",
            "--workload",
            "bert-mrpc",
            "--scale",
            "0.1",
            "--out",
            &out,
            "--store-format",
            "binary",
            "--store-segment-kib",
            "4",
        ])
        .unwrap();
        let records = dir.join("records");
        assert!(records.join("manifest.json").exists());
        assert!(
            !records.join("steps.jsonl").exists(),
            "binary runs must not write JSONL"
        );
        let recs = records.to_str().unwrap().to_owned();
        run(&["analyze", &recs, "--recover", "--algorithm", "kmeans"]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_format_rejects_unknown_value() {
        let err = run(&[
            "profile",
            "--workload",
            "bert-mrpc",
            "--store-format",
            "parquet",
        ])
        .unwrap_err();
        assert!(err.contains("unknown store format"), "{err}");
    }

    #[test]
    fn faulty_profile_and_recover_analyze_round_trip() {
        let dir = std::env::temp_dir().join(format!("tpupoint-cli-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_str().unwrap().to_owned();
        run(&[
            "profile",
            "--workload",
            "bert-mrpc",
            "--scale",
            "0.1",
            "--out",
            &out,
            "--store-fault-prob",
            "0.4",
            "--store-retries",
            "8",
            "--store-fault-seed",
            "11",
        ])
        .unwrap();
        let records = dir.join("records");
        assert!(
            records.join("steps.jsonl").exists(),
            "sealed despite faults"
        );
        run(&["analyze", records.to_str().unwrap(), "--recover"]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_fault_probability_is_rejected() {
        let err = run(&[
            "profile",
            "--workload",
            "bert-mrpc",
            "--store-fault-prob",
            "1.5",
        ])
        .unwrap_err();
        assert!(err.contains("[0, 1]"), "{err}");
    }

    #[test]
    fn recover_on_missing_directory_is_a_clear_error() {
        let err = run(&["analyze", "/definitely/not/here", "--recover"]).unwrap_err();
        assert!(err.contains("cannot recover records"), "{err}");
    }

    #[test]
    fn profile_requires_a_workload() {
        let err = run(&["profile"]).unwrap_err();
        assert!(err.contains("--workload"));
    }

    #[test]
    fn bad_workload_name_lists_options() {
        let err = run(&["profile", "--workload", "alexnet"]).unwrap_err();
        assert!(err.contains("unknown workload"));
    }

    #[test]
    fn bad_generation_is_rejected() {
        let err = run(&["profile", "--workload", "bert-mrpc", "--generation", "v4"]).unwrap_err();
        assert!(err.contains("v2 or v3"));
    }

    #[test]
    fn serve_at_batch_speed_completes_and_seals_records() {
        let dir = std::env::temp_dir().join(format!("tpupoint-cli-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        run(&[
            "serve",
            "--workload",
            "bert-mrpc",
            "--scale",
            "0.1",
            "--out",
            dir.to_str().unwrap(),
            "--metrics-listen",
            "127.0.0.1:0",
            "--pace-us",
            "0",
            "--stop-on-stable",
            "3",
            "--paired-baseline",
        ])
        .unwrap();
        assert!(dir.join("profile.json").exists());
        assert!(dir.join("metrics.prom").exists());
        assert!(dir.join("records/steps.jsonl").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_fleet_admits_scrapes_and_drains_over_http() {
        use std::io::{Read, Write};
        let dir = std::env::temp_dir().join(format!("tpupoint-cli-fleet-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_str().unwrap().to_owned();
        // The daemon blocks until /quit, so drive it from a second thread
        // through the control API on a fixed ephemeral port.
        let listen = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().to_string()
        };
        let addr = listen.clone();
        let driver = std::thread::spawn(move || {
            let http = |request: String| -> String {
                for _ in 0..250 {
                    if let Ok(mut stream) = std::net::TcpStream::connect(&addr) {
                        stream.write_all(request.as_bytes()).unwrap();
                        let mut response = String::new();
                        stream.read_to_string(&mut response).unwrap();
                        return response;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                panic!("fleet endpoint never came up on {addr}");
            };
            let body = "{\"workload\": \"bert-mrpc\", \"id\": \"cli-a\", \"scale\": 0.05}";
            let created = http(format!(
                "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            ));
            assert!(created.starts_with("HTTP/1.1 201"), "{created}");
            let scrape = http("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n".to_owned());
            assert!(scrape.contains("job=\"cli-a\""), "{scrape}");
            http("POST /quit HTTP/1.1\r\nHost: t\r\n\r\n".to_owned());
        });
        run(&[
            "serve",
            "--fleet",
            "--out",
            &out,
            "--metrics-listen",
            &listen,
            "--pace-us",
            "0",
        ])
        .unwrap();
        driver.join().unwrap();
        assert!(dir.join("metrics.prom").exists());
        assert!(dir.join("jobs/cli-a/records/steps.jsonl").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn optimize_runs_on_a_small_naive_workload() {
        run(&[
            "optimize",
            "--workload",
            "qanet-squad",
            "--scale",
            "0.001",
            "--naive",
        ])
        .unwrap();
    }
}
