//! `tpupoint` — command-line interface to the TPUPoint toolchain.
//!
//! ```text
//! tpupoint workloads
//! tpupoint profile  --workload dcgan-cifar10 --generation v2 --out out/
//! tpupoint analyze  out/profile.json --threshold 0.7 --algorithm ols
//! tpupoint optimize --workload qanet-squad --naive
//! tpupoint audit    out/profile.json
//! ```

mod args;
mod commands;
mod obs;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
