//! CLI plumbing for the toolchain's self-observability.
//!
//! Every run-style subcommand accepts `--metrics-out <path>`,
//! `--self-trace <path>`, and `--obs-format {json,prom}`. An
//! [`ObsSession`] captures a snapshot of the global metrics registry
//! before the command body runs and, on [`ObsSession::finish`], exports
//! only that command's activity (the diff) plus the Chrome-tracing JSON
//! of the spans it recorded.

use crate::args::Args;
use std::path::PathBuf;
use tpupoint::obs::{self, MetricsSnapshot, ObsReport};

/// Option names added to a subcommand that supports observability output.
pub const OBS_OPTIONS: [&str; 3] = ["metrics-out", "self-trace", "obs-format"];

/// Export format for `--metrics-out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Json,
    Prometheus,
}

/// Scoped observability capture for one CLI command.
#[derive(Debug)]
pub struct ObsSession {
    before: MetricsSnapshot,
    metrics_out: Option<PathBuf>,
    self_trace: Option<PathBuf>,
    format: Format,
}

impl ObsSession {
    /// Reads the obs options and starts capturing. Enables the span
    /// tracer when a `--self-trace` path was given.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown `--obs-format`.
    pub fn start(args: &Args) -> Result<ObsSession, String> {
        let format = match args.get("obs-format").unwrap_or("json") {
            "json" => Format::Json,
            "prom" | "prometheus" => Format::Prometheus,
            other => return Err(format!("--obs-format must be json or prom, got `{other}`")),
        };
        let self_trace = args.get("self-trace").map(PathBuf::from);
        if self_trace.is_some() {
            obs::tracer().enable();
        }
        Ok(ObsSession {
            before: obs::metrics().snapshot(),
            metrics_out: args.get("metrics-out").map(PathBuf::from),
            self_trace,
            format,
        })
    }

    /// Writes the requested artifacts and prints a summary of the
    /// command's own behavior when metrics were exported.
    ///
    /// # Errors
    ///
    /// Returns a message when an output file cannot be written.
    pub fn finish(self) -> Result<(), String> {
        let snapshot = obs::metrics().snapshot().since(&self.before);
        if let Some(path) = &self.metrics_out {
            let text = match self.format {
                Format::Json => obs::to_json(&snapshot),
                Format::Prometheus => obs::to_prometheus(&snapshot),
            };
            write(path, &text)?;
            println!("metrics written to {}", path.display());
        }
        if let Some(path) = &self.self_trace {
            let tracer = obs::tracer();
            tracer.disable();
            write(path, &tracer.to_chrome_json())?;
            tracer.drain();
            println!(
                "self-trace written to {} (chrome://tracing)",
                path.display()
            );
        }
        Ok(())
    }
}

fn write(path: &PathBuf, text: &str) -> Result<(), String> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("cannot create {parent:?}: {e}"))?;
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Implements `tpupoint obs-report <metrics.json>`: re-reads a
/// `--metrics-out` JSON file and prints the [`ObsReport`] summary.
///
/// # Errors
///
/// Returns a message when the file is missing or not a metrics document.
pub fn obs_report_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[], &[])?;
    let path = args.positional0("metrics.json path (from --metrics-out)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let snapshot = parse_metrics_json(&text).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", ObsReport::from_snapshot(&snapshot).render());
    Ok(())
}

/// Parses the `--obs-format json` document back into a snapshot.
fn parse_metrics_json(text: &str) -> Result<MetricsSnapshot, String> {
    let value: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let root = value
        .as_object()
        .ok_or("metrics document must be a JSON object")?;
    if !["counters", "gauges", "histograms"]
        .iter()
        .any(|key| root.contains_key(*key))
    {
        return Err("not a metrics document (no counters/gauges/histograms; \
             expected a file written by --metrics-out)"
            .to_owned());
    }
    let mut snapshot = MetricsSnapshot::default();
    if let Some(counters) = root.get("counters").and_then(|v| v.as_object()) {
        for (name, v) in counters {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("counter `{name}` is not an unsigned integer"))?;
            snapshot.counters.insert(name.clone(), n);
        }
    }
    if let Some(gauges) = root.get("gauges").and_then(|v| v.as_object()) {
        for (name, v) in gauges {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("gauge `{name}` is not a number"))?;
            snapshot.gauges.insert(name.clone(), n);
        }
    }
    if let Some(histograms) = root.get("histograms").and_then(|v| v.as_object()) {
        for (name, v) in histograms {
            let h = v
                .as_object()
                .ok_or_else(|| format!("histogram `{name}` is not an object"))?;
            let field = |key: &str| {
                h.get(key)
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("histogram `{name}` is missing `{key}`"))
            };
            let mut buckets = Vec::new();
            if let Some(raw) = h.get("buckets").and_then(|v| v.as_array()) {
                for pair in raw {
                    let pair = pair.as_array().filter(|p| p.len() == 2);
                    let (le, n) = pair
                        .and_then(|p| Some((p[0].as_u64()?, p[1].as_u64()?)))
                        .ok_or_else(|| {
                            format!("histogram `{name}` has a malformed bucket entry")
                        })?;
                    buckets.push((le, n));
                }
            }
            snapshot.histograms.insert(
                name.clone(),
                tpupoint::obs::HistogramSnapshot {
                    count: field("count")?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                    buckets,
                },
            );
        }
    }
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_json_round_trips_through_the_parser() {
        let metrics = tpupoint::obs::Metrics::new();
        metrics.counter("profiler.windows_sealed").add(7);
        metrics.gauge("profiler.overhead_ratio").set(1.05);
        let h = metrics.histogram("span.analyzer.kmeans");
        h.record(1000);
        h.record(3000);
        let snapshot = metrics.snapshot();
        let parsed = parse_metrics_json(&obs::to_json(&snapshot)).unwrap();
        assert_eq!(parsed, snapshot);
    }

    #[test]
    fn non_metrics_json_is_rejected() {
        assert!(parse_metrics_json("[1, 2]").is_err());
        assert!(parse_metrics_json("{nope").is_err());
        let err = parse_metrics_json(r#"{"traceEvents": []}"#).unwrap_err();
        assert!(err.contains("not a metrics document"), "{err}");
        let err = parse_metrics_json(r#"{"counters": {"x": -1}}"#).unwrap_err();
        assert!(err.contains("`x`"), "{err}");
    }

    #[test]
    fn obs_format_is_validated() {
        let args = Args::parse(
            &["--obs-format".to_owned(), "xml".to_owned()],
            &OBS_OPTIONS,
            &[],
        )
        .unwrap();
        let err = ObsSession::start(&args).unwrap_err();
        assert!(err.contains("json or prom"), "{err}");
    }
}
