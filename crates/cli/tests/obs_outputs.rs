//! End-to-end check of the observability surface: a profiled CLI run
//! must produce a well-formed metrics document and Chrome trace, and
//! `obs-report` must summarize them.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tpupoint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tpupoint"))
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn tpupoint");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tpupoint-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read_json(path: &Path) -> serde_json::Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()))
}

#[test]
fn profile_run_emits_metrics_trace_and_obs_report() {
    let dir = scratch_dir("profile");
    let metrics_path = dir.join("metrics.json");
    let trace_path = dir.join("self-trace.json");

    run_ok(tpupoint().args([
        "profile",
        "--workload",
        "bert-mrpc",
        "--scale",
        "0.05",
        "--out",
        dir.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
        "--self-trace",
        trace_path.to_str().unwrap(),
    ]));

    // 1. The metrics document is valid JSON carrying counters from the
    // profiler and runtime plus span histograms.
    let metrics = read_json(&metrics_path);
    let root = metrics.as_object().expect("metrics root object");
    let counters = root
        .get("counters")
        .and_then(|v| v.as_object())
        .expect("counters object");
    assert!(counters.get("profiler.windows_sealed").is_some());
    assert!(counters.get("profiler.events_recorded").is_some());
    assert!(
        counters
            .get("runtime.steps")
            .and_then(|v| v.as_u64())
            .unwrap()
            > 0,
        "runtime step counter must advance"
    );
    let histograms = root
        .get("histograms")
        .and_then(|v| v.as_object())
        .expect("histograms object");
    assert!(histograms.keys().any(|k| k.starts_with("span.")));
    assert!(histograms.get("runtime.step_sim_us").is_some());
    assert!(root
        .get("gauges")
        .and_then(|v| v.as_object())
        .and_then(|g| g.get("profiler.overhead_ratio"))
        .and_then(|v| v.as_f64())
        .is_some_and(|ratio| ratio >= 1.0));

    // 2. The self-trace is Chrome-tracing JSON: thread-name metadata
    // ("M") events naming each lane, then complete ("X") span events
    // with names and durations.
    let trace = read_json(&trace_path);
    let events = trace
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let mut spans = Vec::new();
    for event in events {
        let event = event.as_object().expect("trace event object");
        match event.get("ph").and_then(|v| v.as_str()) {
            Some("M") => {
                assert_eq!(
                    event.get("name").and_then(|v| v.as_str()),
                    Some("thread_name")
                );
                assert!(event.get("tid").is_some());
            }
            Some("X") => {
                assert!(event.get("name").and_then(|v| v.as_str()).is_some());
                assert!(event.get("ts").is_some() && event.get("dur").is_some());
                spans.push(event);
            }
            other => panic!("unexpected trace phase {other:?}"),
        }
    }
    assert!(!spans.is_empty(), "trace must contain spans");
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|e| e.get("name")?.as_str())
        .collect();
    assert!(names.contains(&"runtime.job"), "{names:?}");
    assert!(names.contains(&"tpupoint.profile"), "{names:?}");

    // 3. obs-report summarizes the document, including the overhead
    // ratio and window health.
    let report = run_ok(tpupoint().args(["obs-report", metrics_path.to_str().unwrap()]));
    let text = String::from_utf8_lossy(&report.stdout).into_owned();
    assert!(text.contains("per-stage wall time"), "{text}");
    assert!(text.contains("runtime"), "{text}");
    assert!(text.contains("profiler overhead: 3.00%"), "{text}");
    assert!(text.contains("window pipeline:"), "{text}");

    // An analyze run over the saved profile yields per-algorithm
    // runtimes in its own report.
    let analyze_metrics = dir.join("analyze-metrics.json");
    run_ok(tpupoint().args([
        "analyze",
        dir.join("profile.json").to_str().unwrap(),
        "--algorithm",
        "kmeans",
        "--k",
        "4",
        "--metrics-out",
        analyze_metrics.to_str().unwrap(),
    ]));
    let report = run_ok(tpupoint().args(["obs-report", analyze_metrics.to_str().unwrap()]));
    let text = String::from_utf8_lossy(&report.stdout).into_owned();
    assert!(text.contains("analyzer algorithm runtimes"), "{text}");
    assert!(text.contains("kmeans"), "{text}");
    assert!(text.contains("pca"), "{text}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn prometheus_format_exports_typed_series() {
    let dir = scratch_dir("prom");
    let metrics_path = dir.join("metrics.prom");
    run_ok(tpupoint().args([
        "profile",
        "--workload",
        "dcgan-cifar10",
        "--scale",
        "0.005",
        "--out",
        dir.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
        "--obs-format",
        "prom",
    ]));
    let text = std::fs::read_to_string(&metrics_path).unwrap();
    assert!(text.contains("# TYPE tpupoint_profiler_windows_sealed counter"));
    assert!(text.contains("# TYPE tpupoint_profiler_overhead_ratio gauge"));
    assert!(text.contains("_bucket{le=\"+Inf\"}"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_cli_option_fails_with_a_hint() {
    let out = tpupoint()
        .args(["profile", "--workload", "bert-mrpc", "--metrics-uot", "x"])
        .output()
        .expect("spawn tpupoint");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("unknown option `--metrics-uot`"), "{err}");
    assert!(err.contains("did you mean `--metrics-out`?"), "{err}");
}
