//! Property tests on the discrete-event engine: conservation, ordering,
//! and determinism of a producer→queue→consumer pipeline under arbitrary
//! rates and capacities.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use tpupoint_simcore::trace::NullSink;
use tpupoint_simcore::{
    Ctx, Engine, PopOutcome, Process, PushOutcome, QueueId, Signal, SimDuration, SimTime,
};

struct Producer {
    q: QueueId,
    next: u64,
    count: u64,
    gap: SimDuration,
}

impl Process for Producer {
    fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>) {
        match sig {
            Signal::Start | Signal::Timer(_) | Signal::QueueReady(_) => loop {
                if self.next == self.count {
                    ctx.close_queue(self.q);
                    return;
                }
                match ctx.try_push(self.q, self.next) {
                    PushOutcome::Stored => {
                        self.next += 1;
                        if !self.gap.is_zero() {
                            ctx.schedule_in(self.gap, 0);
                            return;
                        }
                    }
                    PushOutcome::WouldBlock => return,
                }
            },
            Signal::Poke(_) => {}
        }
    }
}

struct Consumer {
    q: QueueId,
    service: SimDuration,
    seen: Rc<RefCell<Vec<u64>>>,
    done_at: Rc<RefCell<Option<SimTime>>>,
    busy: bool,
}

impl Process for Consumer {
    fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>) {
        if matches!(sig, Signal::Timer(_)) {
            self.busy = false;
        }
        if self.busy {
            return;
        }
        match ctx.try_pop(self.q) {
            PopOutcome::Item(v) => {
                self.seen.borrow_mut().push(v);
                self.busy = true;
                ctx.schedule_in(self.service, 0);
            }
            PopOutcome::WouldBlock => {}
            PopOutcome::Closed => *self.done_at.borrow_mut() = Some(ctx.now()),
        }
    }
}

fn run_pipeline(
    items: u64,
    capacity: usize,
    gap_us: u64,
    service_us: u64,
    seed: u64,
) -> (Vec<u64>, u64) {
    let mut engine = Engine::new(seed);
    let q = engine.create_queue(capacity);
    let seen = Rc::new(RefCell::new(Vec::new()));
    let done = Rc::new(RefCell::new(None));
    let producer = engine.add_process(Box::new(Producer {
        q,
        next: 0,
        count: items,
        gap: SimDuration::from_micros(gap_us),
    }));
    let consumer = engine.add_process(Box::new(Consumer {
        q,
        service: SimDuration::from_micros(service_us),
        seen: seen.clone(),
        done_at: done.clone(),
        busy: false,
    }));
    engine.start(producer);
    engine.start(consumer);
    engine.run(&mut NullSink);
    assert!(done.borrow().is_some(), "consumer must observe close");
    let at = done.borrow().unwrap().as_micros();
    let out = seen.borrow().clone();
    (out, at)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_item_is_delivered_exactly_once_in_order(
        items in 0u64..120,
        capacity in 1usize..16,
        gap in 0u64..50,
        service in 0u64..50,
    ) {
        let (seen, _) = run_pipeline(items, capacity, gap, service, 1);
        prop_assert_eq!(seen, (0..items).collect::<Vec<_>>());
    }

    #[test]
    fn completion_time_is_bounded_by_the_slower_stage(
        items in 1u64..100,
        capacity in 1usize..16,
        gap in 1u64..40,
        service in 1u64..40,
    ) {
        let (_, done_us) = run_pipeline(items, capacity, gap, service, 1);
        // Lower bound: the slower stage's total time for all items.
        let slower = gap.max(service);
        prop_assert!(done_us >= slower * (items - 1));
        // Upper bound: perfectly serialized stages plus slack.
        prop_assert!(done_us <= (gap + service) * items + gap + service + 1);
    }

    #[test]
    fn runs_are_reproducible_across_seeds_and_replays(
        items in 0u64..80,
        capacity in 1usize..8,
        gap in 0u64..30,
        service in 0u64..30,
        seed in 0u64..1000,
    ) {
        // The pipeline is deterministic given its parameters; the RNG seed
        // must not affect a jitter-free topology.
        let a = run_pipeline(items, capacity, gap, service, seed);
        let b = run_pipeline(items, capacity, gap, service, seed);
        let c = run_pipeline(items, capacity, gap, service, seed.wrapping_add(1));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    #[test]
    fn deeper_queues_never_slow_the_pipeline(
        items in 1u64..80,
        gap in 1u64..30,
        service in 1u64..30,
    ) {
        let (_, shallow) = run_pipeline(items, 1, gap, service, 1);
        let (_, deep) = run_pipeline(items, 32, gap, service, 1);
        prop_assert!(deep <= shallow, "deep {deep} vs shallow {shallow}");
    }
}
