//! Simulated time: instants and durations with microsecond resolution.
//!
//! All timing in the simulator is integral microseconds. This keeps event
//! ordering exact (no floating-point ties) and matches the resolution used by
//! the Cloud TPU profiler's trace events.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in microseconds since simulation start.
///
/// ```
/// use tpupoint_simcore::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_micros(), 3_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// ```
/// use tpupoint_simcore::SimDuration;
/// assert_eq!(SimDuration::from_secs(2).as_millis_f64(), 2_000.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Returns the instant as raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Returns the duration as raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True for the zero-length duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration scaled by a non-negative factor, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0, "duration scale factor must be non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_micros(500);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_micros(), 750);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(20);
        assert_eq!(b.saturating_since(a).as_micros(), 10);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn checked_subtraction_panics_on_underflow() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(
            SimDuration::from_micros(3).mul_f64(0.5).as_micros(),
            2 // 1.5 rounds up
        );
        assert_eq!(SimDuration::from_micros(100).mul_f64(1.25).as_micros(), 125);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
    }
}
