//! Trace layer: interned operation names and streamed trace events.
//!
//! The simulated runtime emits one [`TraceEvent`] per executed operation,
//! mirroring the event stream a Cloud TPU profile response carries. Events
//! are *streamed* to a [`TraceSink`] rather than accumulated, because full
//! traces for long trainings (ResNet runs >100k steps) would not fit in
//! memory — the same motivation the paper gives for TPUPoint-Profiler's
//! statistical records.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned operation name.
///
/// Cheap to copy and compare; resolve back to the name via
/// [`OpCatalog::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub u32);

/// The execution resource a trace event occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Track {
    /// Host (Compute Engine VM) CPU work: input pipeline, infeed/outfeed
    /// transfers, session management.
    Host,
    /// Work on a TPU core, identified by core index within the chip.
    TpuCore(u8),
    /// Cloud-storage (Storage Bucket) reads and writes.
    Storage,
}

impl fmt::Display for Track {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Track::Host => write!(f, "host"),
            Track::TpuCore(c) => write!(f, "tpu/core{c}"),
            Track::Storage => write!(f, "storage"),
        }
    }
}

/// One executed operation: what ran, where, when, for how long, and how much
/// of that time the matrix units were busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Interned operation name.
    pub op: OpId,
    /// Resource the operation occupied.
    pub track: Track,
    /// Start instant.
    pub start: SimTime,
    /// Wall duration of the operation.
    pub dur: SimDuration,
    /// Portion of `dur` during which MXUs were actively computing. Zero for
    /// non-matrix operations and for all host/storage work.
    pub mxu_dur: SimDuration,
    /// Training step the operation belongs to, if any. Session-level work
    /// (initialization, restores, final saves) carries `None`.
    pub step: Option<u64>,
}

impl TraceEvent {
    /// Instant the operation finished.
    pub fn end(&self) -> SimTime {
        self.start + self.dur
    }
}

/// Receives the streamed event trace of a simulation run.
///
/// Implementations must not assume global ordering beyond: events on the
/// *same* track arrive in nondecreasing `start` order.
pub trait TraceSink {
    /// Called once per executed operation.
    fn record(&mut self, event: &TraceEvent);

    /// Called when the runtime advances to a new training step.
    fn on_step(&mut self, _step: u64, _at: SimTime) {}

    /// Called when the runtime writes a model checkpoint at `step`.
    fn on_checkpoint(&mut self, _step: u64, _at: SimTime) {}
}

/// A sink that discards everything; useful for timing-only simulations.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &TraceEvent) {}
}

/// A sink that stores every event in memory. Only suitable for short runs
/// and tests.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// All recorded events in arrival order.
    pub events: Vec<TraceEvent>,
    /// `(step, time)` markers in arrival order.
    pub steps: Vec<(u64, SimTime)>,
    /// `(step, time)` checkpoint markers in arrival order.
    pub checkpoints: Vec<(u64, SimTime)>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }

    fn on_step(&mut self, step: u64, at: SimTime) {
        self.steps.push((step, at));
    }

    fn on_checkpoint(&mut self, step: u64, at: SimTime) {
        self.checkpoints.push((step, at));
    }
}

/// Static attributes of an operation name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpAttrs {
    /// True if the operation drives the matrix units (MatMul, convolutions,
    /// fusions containing them).
    pub uses_mxu: bool,
}

/// Interns operation names, assigning stable [`OpId`]s.
///
/// Names are interned in first-seen order, so a catalog built by a
/// deterministic simulation assigns the same ids on every run.
///
/// ```
/// use tpupoint_simcore::trace::{OpCatalog, OpAttrs};
/// let mut catalog = OpCatalog::new();
/// let matmul = catalog.intern("MatMul", OpAttrs { uses_mxu: true });
/// assert_eq!(catalog.name(matmul), "MatMul");
/// assert!(catalog.attrs(matmul).uses_mxu);
/// assert_eq!(catalog.intern("MatMul", OpAttrs::default()), matmul);
/// ```
#[derive(Debug, Default, Clone)]
pub struct OpCatalog {
    names: Vec<String>,
    attrs: Vec<OpAttrs>,
    index: HashMap<String, OpId>,
}

impl OpCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id. Attributes are fixed by the first
    /// interning of a name; later calls ignore `attrs`.
    pub fn intern(&mut self, name: &str, attrs: OpAttrs) -> OpId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = OpId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.attrs.push(attrs);
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<OpId> {
        self.index.get(name).copied()
    }

    /// Resolves an id back to its name.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this catalog.
    pub fn name(&self, id: OpId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Attributes of an interned operation.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this catalog.
    pub fn attrs(&self, id: OpId) -> OpAttrs {
        self.attrs[id.0 as usize]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (OpId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_ordered() {
        let mut c = OpCatalog::new();
        let a = c.intern("fusion", OpAttrs { uses_mxu: true });
        let b = c.intern("Reshape", OpAttrs::default());
        assert_eq!(a, OpId(0));
        assert_eq!(b, OpId(1));
        assert_eq!(c.intern("fusion", OpAttrs::default()), a);
        assert_eq!(c.len(), 2);
        assert!(c.attrs(a).uses_mxu, "first-interned attrs win");
    }

    #[test]
    fn get_only_finds_interned_names() {
        let mut c = OpCatalog::new();
        assert!(c.get("MatMul").is_none());
        let id = c.intern("MatMul", OpAttrs { uses_mxu: true });
        assert_eq!(c.get("MatMul"), Some(id));
    }

    #[test]
    fn iter_returns_all_pairs_in_order() {
        let mut c = OpCatalog::new();
        c.intern("a", OpAttrs::default());
        c.intern("b", OpAttrs::default());
        let pairs: Vec<_> = c.iter().map(|(id, n)| (id.0, n.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }

    #[test]
    fn vec_sink_accumulates_everything() {
        let mut sink = VecSink::new();
        let ev = TraceEvent {
            op: OpId(0),
            track: Track::Host,
            start: SimTime::from_micros(5),
            dur: SimDuration::from_micros(10),
            mxu_dur: SimDuration::ZERO,
            step: Some(1),
        };
        sink.record(&ev);
        sink.on_step(1, SimTime::from_micros(5));
        sink.on_checkpoint(1, SimTime::from_micros(20));
        assert_eq!(sink.events.len(), 1);
        assert_eq!(sink.events[0].end().as_micros(), 15);
        assert_eq!(sink.steps, vec![(1, SimTime::from_micros(5))]);
        assert_eq!(sink.checkpoints, vec![(1, SimTime::from_micros(20))]);
    }

    #[test]
    fn track_display_is_stable() {
        assert_eq!(Track::Host.to_string(), "host");
        assert_eq!(Track::TpuCore(1).to_string(), "tpu/core1");
        assert_eq!(Track::Storage.to_string(), "storage");
    }
}
