//! Bounded FIFO queues with blocking semantics.
//!
//! These model the buffered hand-off points of a TPU training pipeline: the
//! host-side prefetch buffer, the hardware infeed queue, and the outfeed
//! queue. Producers that fill a queue and consumers that drain one register
//! as *waiters* and are woken (via a [`crate::Signal::QueueReady`] event)
//! when space or items become available.
//!
//! Payloads are `u64` tokens (batch sequence numbers); all per-batch
//! metadata in the simulator is uniform within a run, so a token is enough.

use std::collections::VecDeque;

use crate::engine::ProcessId;

/// Identifier of a queue within a [`QueueTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueueId(pub(crate) usize);

/// Result of a push attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The item was enqueued.
    Stored,
    /// The queue was full; the caller has been registered as a push waiter
    /// and will receive `QueueReady` when space frees up.
    WouldBlock,
}

/// Result of a pop attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopOutcome {
    /// An item was dequeued.
    Item(u64),
    /// The queue was empty but still open; the caller has been registered as
    /// a pop waiter and will receive `QueueReady` when an item arrives.
    WouldBlock,
    /// The queue is closed and drained; no more items will ever arrive.
    Closed,
}

#[derive(Debug)]
struct BoundedQueue {
    items: VecDeque<u64>,
    capacity: usize,
    closed: bool,
    push_waiters: VecDeque<ProcessId>,
    pop_waiters: VecDeque<ProcessId>,
}

impl BoundedQueue {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            items: VecDeque::new(),
            capacity,
            closed: false,
            push_waiters: VecDeque::new(),
            pop_waiters: VecDeque::new(),
        }
    }
}

/// The set of queues in a simulation, owned by the engine.
#[derive(Debug, Default)]
pub struct QueueTable {
    queues: Vec<BoundedQueue>,
}

impl QueueTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; a zero-capacity hand-off would deadlock
    /// the event-driven processes, which cannot rendezvous.
    pub fn create(&mut self, capacity: usize) -> QueueId {
        assert!(capacity > 0, "queue capacity must be at least 1");
        let id = QueueId(self.queues.len());
        self.queues.push(BoundedQueue::new(capacity));
        id
    }

    /// Attempts to enqueue `item` on behalf of `who`. On `WouldBlock`, `who`
    /// is registered as a push waiter. Returns the outcome plus an optional
    /// pop waiter that should be woken.
    ///
    /// # Panics
    ///
    /// Panics if the queue is closed: pushing after close is a programming
    /// error in the producer.
    pub fn push(
        &mut self,
        q: QueueId,
        item: u64,
        who: ProcessId,
    ) -> (PushOutcome, Option<ProcessId>) {
        let queue = &mut self.queues[q.0];
        assert!(!queue.closed, "push to closed queue {q:?}");
        if queue.items.len() >= queue.capacity {
            if !queue.push_waiters.contains(&who) {
                queue.push_waiters.push_back(who);
            }
            return (PushOutcome::WouldBlock, None);
        }
        queue.items.push_back(item);
        (PushOutcome::Stored, queue.pop_waiters.pop_front())
    }

    /// Attempts to dequeue on behalf of `who`. On `WouldBlock`, `who` is
    /// registered as a pop waiter. Returns the outcome plus an optional push
    /// waiter that should be woken.
    pub fn pop(&mut self, q: QueueId, who: ProcessId) -> (PopOutcome, Option<ProcessId>) {
        let queue = &mut self.queues[q.0];
        match queue.items.pop_front() {
            Some(item) => (PopOutcome::Item(item), queue.push_waiters.pop_front()),
            None if queue.closed => (PopOutcome::Closed, None),
            None => {
                if !queue.pop_waiters.contains(&who) {
                    queue.pop_waiters.push_back(who);
                }
                (PopOutcome::WouldBlock, None)
            }
        }
    }

    /// Marks the queue closed: existing items still drain, then pops return
    /// [`PopOutcome::Closed`]. Returns all pop waiters, which must be woken
    /// so they can observe the close.
    pub fn close(&mut self, q: QueueId) -> Vec<ProcessId> {
        let queue = &mut self.queues[q.0];
        queue.closed = true;
        queue.pop_waiters.drain(..).collect()
    }

    /// Current number of buffered items.
    pub fn len(&self, q: QueueId) -> usize {
        self.queues[q.0].items.len()
    }

    /// True if the queue holds no items.
    pub fn is_empty(&self, q: QueueId) -> bool {
        self.queues[q.0].items.is_empty()
    }

    /// The queue's capacity.
    pub fn capacity(&self, q: QueueId) -> usize {
        self.queues[q.0].capacity
    }

    /// True once [`QueueTable::close`] has been called.
    pub fn is_closed(&self, q: QueueId) -> bool {
        self.queues[q.0].closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcessId = ProcessId(0);
    const P1: ProcessId = ProcessId(1);

    #[test]
    fn push_pop_fifo_order() {
        let mut t = QueueTable::new();
        let q = t.create(4);
        assert_eq!(t.push(q, 10, P0).0, PushOutcome::Stored);
        assert_eq!(t.push(q, 11, P0).0, PushOutcome::Stored);
        assert_eq!(t.pop(q, P1).0, PopOutcome::Item(10));
        assert_eq!(t.pop(q, P1).0, PopOutcome::Item(11));
    }

    #[test]
    fn full_queue_blocks_and_wakes_producer() {
        let mut t = QueueTable::new();
        let q = t.create(1);
        assert_eq!(t.push(q, 1, P0).0, PushOutcome::Stored);
        assert_eq!(t.push(q, 2, P0).0, PushOutcome::WouldBlock);
        // Consumer pops; the blocked producer is returned for wakeup.
        let (out, wake) = t.pop(q, P1);
        assert_eq!(out, PopOutcome::Item(1));
        assert_eq!(wake, Some(P0));
    }

    #[test]
    fn empty_queue_blocks_and_wakes_consumer() {
        let mut t = QueueTable::new();
        let q = t.create(1);
        assert_eq!(t.pop(q, P1).0, PopOutcome::WouldBlock);
        let (out, wake) = t.push(q, 7, P0);
        assert_eq!(out, PushOutcome::Stored);
        assert_eq!(wake, Some(P1));
    }

    #[test]
    fn waiters_are_not_duplicated() {
        let mut t = QueueTable::new();
        let q = t.create(1);
        assert_eq!(t.pop(q, P1).0, PopOutcome::WouldBlock);
        assert_eq!(t.pop(q, P1).0, PopOutcome::WouldBlock);
        let (_, wake) = t.push(q, 1, P0);
        assert_eq!(wake, Some(P1));
        // P1 was registered once; a second push wakes nobody.
        let _ = t.pop(q, P1); // drain
        let (_, wake2) = t.push(q, 2, P0);
        assert_eq!(wake2, None);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let mut t = QueueTable::new();
        let q = t.create(2);
        t.push(q, 1, P0);
        let woken = t.close(q);
        assert!(woken.is_empty());
        assert!(t.is_closed(q));
        assert_eq!(t.pop(q, P1).0, PopOutcome::Item(1));
        assert_eq!(t.pop(q, P1).0, PopOutcome::Closed);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let mut t = QueueTable::new();
        let q = t.create(1);
        assert_eq!(t.pop(q, P1).0, PopOutcome::WouldBlock);
        let woken = t.close(q);
        assert_eq!(woken, vec![P1]);
    }

    #[test]
    #[should_panic(expected = "closed queue")]
    fn push_after_close_panics() {
        let mut t = QueueTable::new();
        let q = t.create(1);
        t.close(q);
        let _ = t.push(q, 1, P0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let mut t = QueueTable::new();
        let _ = t.create(0);
    }

    #[test]
    fn len_and_capacity_track_state() {
        let mut t = QueueTable::new();
        let q = t.create(3);
        assert!(t.is_empty(q));
        assert_eq!(t.capacity(q), 3);
        t.push(q, 1, P0);
        t.push(q, 2, P0);
        assert_eq!(t.len(q), 2);
    }
}
