//! # tpupoint-simcore
//!
//! A small, deterministic discrete-event simulation (DES) engine.
//!
//! The TPUPoint reproduction cannot run on real Cloud TPUs, so every
//! higher-level crate (hardware models, the TensorFlow-like runtime, the
//! profiler) is built on top of this engine. The engine provides:
//!
//! * a simulated clock with microsecond resolution ([`SimTime`],
//!   [`SimDuration`]),
//! * an event queue that delivers [`Signal`]s to registered [`Process`]es in
//!   a deterministic order,
//! * bounded FIFO queues with blocking push/pop semantics
//!   ([`queue::QueueTable`]) used to model the host→TPU infeed pipeline,
//! * a trace layer ([`trace`]) that interns operation names and streams
//!   timestamped [`trace::TraceEvent`]s to a [`trace::TraceSink`], and
//! * a seeded random-number helper ([`rng::SimRng`]) so that every run of a
//!   simulation is exactly reproducible.
//!
//! # Example
//!
//! ```
//! use tpupoint_simcore::{Engine, Process, Ctx, Signal, SimDuration};
//!
//! /// A process that fires once, one millisecond after the start signal.
//! struct Ping {
//!     fired: bool,
//! }
//!
//! impl Process for Ping {
//!     fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>) {
//!         match sig {
//!             Signal::Start => ctx.schedule_in(SimDuration::from_millis(1), 0),
//!             Signal::Timer(0) => self.fired = true,
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(42);
//! let ping = engine.add_process(Box::new(Ping { fired: false }));
//! engine.start(ping);
//! let mut sink = tpupoint_simcore::trace::NullSink;
//! engine.run(&mut sink);
//! assert_eq!(engine.now().as_micros(), 1_000);
//! ```

pub mod engine;
pub mod laned;
pub mod queue;
pub mod rng;
pub mod time;
pub mod trace;

pub use engine::{Ctx, Engine, Process, ProcessId, Signal};
pub use laned::{LaneAssignment, LaneStats};
pub use queue::{PopOutcome, PushOutcome, QueueId};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{OpCatalog, OpId, Track};
