//! Seeded randomness for simulations.
//!
//! Every stochastic element of the simulator (operation-duration jitter,
//! rare-event injection) draws from a [`SimRng`] owned by the engine, so a
//! given seed always reproduces the identical event stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random-number generator used throughout a simulation.
///
/// Wraps [`StdRng`] and adds the small set of distributions the simulator
/// needs (uniform, Bernoulli, and log-normal jitter) without pulling in a
/// full distributions crate.
///
/// ```
/// use tpupoint_simcore::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.uniform_u64(0, 100), b.uniform_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Cached second sample from the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; used to give each workload or
    /// component its own stream so adding draws in one place does not perturb
    /// another.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let seed = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(seed)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64 range is empty");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box–Muller requires u1 in (0, 1]; gen() yields [0, 1).
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Multiplicative log-normal jitter with median 1.0 and the given sigma
    /// (standard deviation of the underlying normal, in log space).
    ///
    /// A sigma of 0.0 always returns exactly 1.0; typical simulator use is
    /// sigma in `[0.01, 0.1]`, i.e. a few percent of run-to-run variation,
    /// mirroring the noise in real profiles that keeps clustering inputs
    /// non-degenerate.
    pub fn lognormal_jitter(&mut self, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return 1.0;
        }
        (self.standard_normal() * sigma).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32)
            .filter(|_| a.uniform_u64(0, u64::MAX) == b.uniform_u64(0, u64::MAX))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.uniform_u64(0, u64::MAX), c2.uniform_u64(0, u64::MAX));
        // Different salt gives a different stream.
        let mut parent3 = SimRng::seed_from(9);
        let mut c3 = parent3.fork(6);
        assert_ne!(c1.uniform_u64(0, u64::MAX), c3.uniform_u64(0, u64::MAX));
    }

    #[test]
    fn standard_normal_moments_are_sane() {
        let mut rng = SimRng::seed_from(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn lognormal_jitter_zero_sigma_is_identity() {
        let mut rng = SimRng::seed_from(7);
        for _ in 0..10 {
            assert_eq!(rng.lognormal_jitter(0.0), 1.0);
        }
    }

    #[test]
    fn lognormal_jitter_is_positive_and_near_one() {
        let mut rng = SimRng::seed_from(7);
        let n = 10_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.lognormal_jitter(0.05)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean} should be ~1");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities clamp instead of panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }
}
