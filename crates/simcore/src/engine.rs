//! The event loop: processes, signals, and deterministic dispatch.
//!
//! A simulation is a set of [`Process`]es exchanging items through bounded
//! queues and sleeping on timers. The engine pops scheduled events in
//! `(time, insertion-sequence)` order, so runs are exactly reproducible for
//! a given seed and process construction order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::queue::{PopOutcome, PushOutcome, QueueId, QueueTable};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceSink};

/// Identifier of a process registered with an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub(crate) usize);

impl ProcessId {
    /// Raw index of this process within the engine.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds the id of the `index`-th registered process.
    ///
    /// Ids are assigned sequentially from zero in [`Engine::add_process`]
    /// order, so code that fully controls an engine's setup may compute
    /// forward references to processes it has not added yet. Prefer
    /// [`Engine::next_process_id`] where possible.
    pub fn nth(index: usize) -> ProcessId {
        ProcessId(index)
    }
}

/// An event delivered to a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// First signal a process receives, scheduled by [`Engine::start`].
    Start,
    /// A timer set via [`Ctx::schedule_in`] fired; carries the caller's tag.
    Timer(u64),
    /// A queue this process blocked on may have space/items now. The process
    /// must retry its operation — readiness is a hint, not a guarantee,
    /// because another process may have raced in at the same instant.
    QueueReady(QueueId),
    /// Another process explicitly woke this one via [`Ctx::wake`], with a
    /// caller-chosen tag.
    Poke(u64),
}

/// Behaviour of a simulated component (host worker, infeed engine, TPU core…).
///
/// Handlers run to completion at a single instant of simulated time; passage
/// of time is expressed by scheduling a [`Signal::Timer`] and returning.
pub trait Process {
    /// Handles one signal. `ctx` gives access to the clock, queues, RNG, and
    /// the trace sink.
    fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>);
}

#[derive(Debug)]
pub(crate) struct Scheduled {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) target: ProcessId,
    pub(crate) signal: Signal,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Execution context handed to [`Process::on_signal`].
///
/// All interaction with the world — time, queues, randomness, tracing —
/// flows through this context, which keeps processes deterministic and
/// testable in isolation.
pub struct Ctx<'a> {
    now: SimTime,
    self_id: ProcessId,
    queues: &'a mut QueueTable,
    rng: &'a mut SimRng,
    sink: &'a mut dyn TraceSink,
    pending: &'a mut Vec<(SimTime, ProcessId, Signal)>,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Id of the process currently handling a signal.
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// Schedules a [`Signal::Timer`] for this process `after` from now.
    pub fn schedule_in(&mut self, after: SimDuration, tag: u64) {
        self.pending
            .push((self.now + after, self.self_id, Signal::Timer(tag)));
    }

    /// Sends [`Signal::Poke`] to another process at the current instant.
    pub fn wake(&mut self, target: ProcessId, tag: u64) {
        self.pending.push((self.now, target, Signal::Poke(tag)));
    }

    /// Attempts a queue push; on `WouldBlock` this process is registered for
    /// a later [`Signal::QueueReady`].
    pub fn try_push(&mut self, q: QueueId, item: u64) -> PushOutcome {
        let (outcome, woken) = self.queues.push(q, item, self.self_id);
        if let Some(pid) = woken {
            self.pending.push((self.now, pid, Signal::QueueReady(q)));
        }
        outcome
    }

    /// Attempts a queue pop; on `WouldBlock` this process is registered for
    /// a later [`Signal::QueueReady`].
    pub fn try_pop(&mut self, q: QueueId) -> PopOutcome {
        let (outcome, woken) = self.queues.pop(q, self.self_id);
        if let Some(pid) = woken {
            self.pending.push((self.now, pid, Signal::QueueReady(q)));
        }
        outcome
    }

    /// Closes a queue; all blocked consumers are woken to observe the close.
    pub fn close_queue(&mut self, q: QueueId) {
        for pid in self.queues.close(q) {
            self.pending.push((self.now, pid, Signal::QueueReady(q)));
        }
    }

    /// Number of items currently buffered in `q`.
    pub fn queue_len(&self, q: QueueId) -> usize {
        self.queues.len(q)
    }

    /// Deterministic RNG for this simulation.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Records a trace event.
    pub fn emit(&mut self, event: TraceEvent) {
        self.sink.record(&event);
    }

    /// Notifies the sink that training advanced to `step` at the current
    /// instant.
    pub fn mark_step(&mut self, step: u64) {
        self.sink.on_step(step, self.now);
    }

    /// Notifies the sink that a checkpoint was written at `step` at the
    /// current instant.
    pub fn mark_checkpoint(&mut self, step: u64) {
        self.sink.on_checkpoint(step, self.now);
    }
}

/// A deterministic discrete-event simulation engine.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct Engine {
    pub(crate) now: SimTime,
    pub(crate) seq: u64,
    pub(crate) heap: BinaryHeap<Reverse<Scheduled>>,
    processes: Vec<Option<Box<dyn Process>>>,
    queues: QueueTable,
    rng: SimRng,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending_events", &self.heap.len())
            .field("processes", &self.processes.len())
            .finish()
    }
}

impl Engine {
    /// Creates an engine whose RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            processes: Vec::new(),
            queues: QueueTable::new(),
            rng: SimRng::seed_from(seed),
        }
    }

    /// Registers a process and returns its id. Processes added in the same
    /// order across runs receive the same ids.
    pub fn add_process(&mut self, process: Box<dyn Process>) -> ProcessId {
        let id = ProcessId(self.processes.len());
        self.processes.push(Some(process));
        id
    }

    /// The id the *next* [`Engine::add_process`] call will assign. Lets
    /// mutually-referencing processes be constructed without a fix-up pass.
    pub fn next_process_id(&self) -> ProcessId {
        ProcessId(self.processes.len())
    }

    /// Creates a bounded queue. See [`QueueTable::create`].
    pub fn create_queue(&mut self, capacity: usize) -> QueueId {
        self.queues.create(capacity)
    }

    /// Schedules [`Signal::Start`] for `pid` at the current instant.
    pub fn start(&mut self, pid: ProcessId) {
        self.push_event(self.now, pid, Signal::Start);
    }

    /// Current simulated time (the timestamp of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn push_event(&mut self, at: SimTime, target: ProcessId, signal: Signal) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled {
            at,
            seq,
            target,
            signal,
        }));
    }

    /// Runs until no events remain. Returns the number of delivered signals.
    pub fn run(&mut self, sink: &mut dyn TraceSink) -> u64 {
        self.run_until(None, sink)
    }

    /// Runs until no events remain or simulated time would exceed `deadline`.
    /// Returns the number of delivered signals.
    ///
    /// Events at exactly `deadline` are still delivered; later ones remain
    /// queued so a subsequent call can resume.
    pub fn run_until(&mut self, deadline: Option<SimTime>, sink: &mut dyn TraceSink) -> u64 {
        let mut delivered = 0;
        let mut pending: Vec<(SimTime, ProcessId, Signal)> = Vec::new();
        // Not `while let`: the deadline check must run between peek and pop.
        #[allow(clippy::while_let_loop)]
        loop {
            let Some(Reverse(head)) = self.heap.peek() else {
                break;
            };
            if let Some(deadline) = deadline {
                if head.at > deadline {
                    break;
                }
            }
            let Reverse(event) = self.heap.pop().expect("peeked event vanished");
            self.dispatch(event, sink, &mut pending);
            for (at, target, signal) in pending.drain(..) {
                self.push_event(at, target, signal);
            }
            delivered += 1;
        }
        delivered
    }

    /// Delivers one event to its target process, collecting any newly
    /// scheduled events into `pending` (which must be empty on entry). The
    /// caller decides how to route `pending` — the serial loop feeds it back
    /// into the global heap, the laned loop partitions it across lane heaps.
    pub(crate) fn dispatch(
        &mut self,
        event: Scheduled,
        sink: &mut dyn TraceSink,
        pending: &mut Vec<(SimTime, ProcessId, Signal)>,
    ) {
        debug_assert!(event.at >= self.now, "time went backwards");
        self.now = event.at;

        let slot = event.target.0;
        let mut process = self.processes[slot]
            .take()
            .expect("signal delivered to a process that is mid-dispatch");
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: event.target,
                queues: &mut self.queues,
                rng: &mut self.rng,
                sink,
                pending,
            };
            process.on_signal(event.signal, &mut ctx);
        }
        self.processes[slot] = Some(process);
    }

    /// Number of registered processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// True if no events are waiting to be delivered.
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }

    /// Read-only access to the queue table (for assertions in tests and for
    /// post-run inspection by the runtime).
    pub fn queues(&self) -> &QueueTable {
        &self.queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{NullSink, VecSink};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Producer pushes `count` items with `gap` between them, then closes.
    struct Producer {
        q: QueueId,
        next: u64,
        count: u64,
        gap: SimDuration,
    }

    impl Process for Producer {
        fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>) {
            match sig {
                Signal::Start | Signal::Timer(_) | Signal::QueueReady(_) => loop {
                    if self.next == self.count {
                        ctx.close_queue(self.q);
                        return;
                    }
                    match ctx.try_push(self.q, self.next) {
                        PushOutcome::Stored => {
                            self.next += 1;
                            if !self.gap.is_zero() {
                                ctx.schedule_in(self.gap, 0);
                                return;
                            }
                        }
                        PushOutcome::WouldBlock => return,
                    }
                },
                Signal::Poke(_) => {}
            }
        }
    }

    /// Consumer pops every item, taking `service` per item, recording order.
    struct Consumer {
        q: QueueId,
        service: SimDuration,
        seen: Rc<RefCell<Vec<u64>>>,
        done_at: Rc<RefCell<Option<SimTime>>>,
        busy: bool,
    }

    impl Process for Consumer {
        fn on_signal(&mut self, sig: Signal, ctx: &mut Ctx<'_>) {
            if matches!(sig, Signal::Timer(_)) {
                self.busy = false;
            }
            if self.busy {
                return;
            }
            match ctx.try_pop(self.q) {
                PopOutcome::Item(v) => {
                    self.seen.borrow_mut().push(v);
                    self.busy = true;
                    ctx.schedule_in(self.service, 0);
                }
                PopOutcome::WouldBlock => {}
                PopOutcome::Closed => {
                    *self.done_at.borrow_mut() = Some(ctx.now());
                }
            }
        }
    }

    fn pipeline(items: u64, cap: usize, gap_us: u64, service_us: u64) -> (Vec<u64>, SimTime) {
        let mut engine = Engine::new(1);
        let q = engine.create_queue(cap);
        let seen = Rc::new(RefCell::new(Vec::new()));
        let done = Rc::new(RefCell::new(None));
        let producer = engine.add_process(Box::new(Producer {
            q,
            next: 0,
            count: items,
            gap: SimDuration::from_micros(gap_us),
        }));
        let consumer = engine.add_process(Box::new(Consumer {
            q,
            service: SimDuration::from_micros(service_us),
            seen: seen.clone(),
            done_at: done.clone(),
            busy: false,
        }));
        engine.start(producer);
        engine.start(consumer);
        engine.run(&mut NullSink);
        let done_at = done.borrow().expect("consumer should observe close");
        let seen = seen.borrow().clone();
        (seen, done_at)
    }

    #[test]
    fn items_flow_in_order() {
        let (seen, _) = pipeline(10, 4, 0, 5);
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn consumer_bound_pipeline_finishes_at_service_rate() {
        // Producer instantaneous, consumer 10us/item, 8 items: last pop at
        // 7 * 10us (pops happen as soon as the consumer frees up).
        let (seen, done_at) = pipeline(8, 2, 0, 10);
        assert_eq!(seen.len(), 8);
        assert_eq!(done_at.as_micros(), 80);
    }

    #[test]
    fn producer_bound_pipeline_finishes_at_production_rate() {
        // Producer 20us/item, consumer 1us/item: close happens after the
        // last item is produced at 8*20 = 160us (gap scheduled after each
        // push, including the last).
        let (seen, done_at) = pipeline(8, 4, 20, 1);
        assert_eq!(seen.len(), 8);
        assert_eq!(done_at.as_micros(), 160);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = pipeline(50, 3, 7, 11);
        let b = pipeline(50, 3, 7, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn run_until_deadline_pauses_and_resumes() {
        let mut engine = Engine::new(1);
        let q = engine.create_queue(64);
        let producer = engine.add_process(Box::new(Producer {
            q,
            next: 0,
            count: 10,
            gap: SimDuration::from_micros(10),
        }));
        engine.start(producer);
        engine.run_until(Some(SimTime::from_micros(35)), &mut NullSink);
        // Items at t=0,10,20,30 pushed so far.
        assert_eq!(engine.queues().len(q), 4);
        assert!(!engine.is_idle());
        engine.run(&mut NullSink);
        assert_eq!(engine.queues().len(q), 10);
        assert!(engine.is_idle());
    }

    /// A process that emits a trace event on start.
    struct Emitter;
    impl Process for Emitter {
        fn on_signal(&mut self, _sig: Signal, ctx: &mut Ctx<'_>) {
            let now = ctx.now();
            ctx.emit(TraceEvent {
                op: crate::trace::OpId(0),
                track: crate::trace::Track::Host,
                start: now,
                dur: SimDuration::from_micros(4),
                mxu_dur: SimDuration::ZERO,
                step: None,
            });
            ctx.mark_step(1);
        }
    }

    #[test]
    fn ctx_routes_trace_events_to_sink() {
        let mut engine = Engine::new(0);
        let p = engine.add_process(Box::new(Emitter));
        engine.start(p);
        let mut sink = VecSink::new();
        engine.run(&mut sink);
        assert_eq!(sink.events.len(), 1);
        assert_eq!(sink.steps, vec![(1, SimTime::ZERO)]);
    }

    #[test]
    fn wake_delivers_poke() {
        struct Waker {
            other: Option<ProcessId>,
        }
        impl Process for Waker {
            fn on_signal(&mut self, _sig: Signal, ctx: &mut Ctx<'_>) {
                if let Some(other) = self.other.take() {
                    ctx.wake(other, 99);
                }
            }
        }
        struct Listener {
            got: Rc<RefCell<Option<u64>>>,
        }
        impl Process for Listener {
            fn on_signal(&mut self, sig: Signal, _ctx: &mut Ctx<'_>) {
                if let Signal::Poke(tag) = sig {
                    *self.got.borrow_mut() = Some(tag);
                }
            }
        }
        let mut engine = Engine::new(0);
        let got = Rc::new(RefCell::new(None));
        let listener = engine.add_process(Box::new(Listener { got: got.clone() }));
        let waker = engine.add_process(Box::new(Waker {
            other: Some(listener),
        }));
        engine.start(waker);
        engine.run(&mut NullSink);
        assert_eq!(*got.borrow(), Some(99));
    }

    #[test]
    fn event_count_is_reported() {
        let mut engine = Engine::new(0);
        let p = engine.add_process(Box::new(Emitter));
        engine.start(p);
        assert_eq!(engine.run(&mut NullSink), 1);
        assert_eq!(engine.run(&mut NullSink), 0);
    }
}
