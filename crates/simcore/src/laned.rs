//! Sharded ("laned") execution of the event loop.
//!
//! The engine's processes are partitioned into *lanes*, each with its own
//! event heap. A conservative time-window discipline advances one lane at a
//! time: the lane owning the globally minimal `(time, seq)` key runs a batch
//! of its own events up to a *horizon* — the smallest key held by any other
//! lane, tightened on the fly by cross-lane events the running batch emits.
//! Cross-lane queue wakes and pokes are exchanged only at these batch
//! boundaries (the sync barriers).
//!
//! Because every delivered event is, by construction, the global `(time,
//! seq)` minimum, the delivery order — and therefore sequence-number
//! assignment, RNG draw order, and the stream of sink calls — is *identical*
//! to the serial [`Engine::run`] loop. Traces, JSONL records, and profiles
//! are byte-identical at any lane count and any `TPUPOINT_THREADS` setting.
//!
//! What parallelism buys is taking sink work off the critical path: handlers
//! record into an in-memory op buffer, and batches of ops are applied to the
//! real sink by a flusher on a dedicated scoped thread while the event loop
//! keeps dispatching. With a single-threaded [`tpupoint_par`] pool the buffer
//! is applied inline and behaviour degenerates to the serial engine exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::engine::{Engine, ProcessId, Scheduled, Signal};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceSink};

/// Ops are shipped to the flusher in batches of this many to amortize
/// channel traffic without letting the buffer grow unboundedly.
const FLUSH_BATCH: usize = 512;

/// Maps each process to the lane that owns its events.
#[derive(Debug, Clone)]
pub struct LaneAssignment {
    lane_of: Vec<usize>,
    lanes: usize,
}

impl LaneAssignment {
    /// Builds an assignment from an explicit process-index → lane table.
    /// Lane numbers must be dense from zero; processes beyond the table's
    /// length fall into lane 0.
    pub fn new(lane_of: Vec<usize>) -> LaneAssignment {
        let lanes = lane_of.iter().copied().max().map_or(1, |m| m + 1);
        LaneAssignment { lane_of, lanes }
    }

    /// Splits `processes` ids into at most `lanes` contiguous groups of
    /// near-equal size. Registration order groups related actors (the
    /// runtime registers host-side actors before device-side ones), so a
    /// contiguous split is the natural host/device partition.
    pub fn contiguous(processes: usize, lanes: usize) -> LaneAssignment {
        let lanes = lanes.clamp(1, processes.max(1));
        let base = processes / lanes;
        let extra = processes % lanes;
        let mut lane_of = Vec::with_capacity(processes);
        for lane in 0..lanes {
            let size = base + usize::from(lane < extra);
            lane_of.extend(std::iter::repeat_n(lane, size));
        }
        LaneAssignment::new(lane_of)
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lane owning `pid`'s events.
    pub fn lane_for(&self, pid: ProcessId) -> usize {
        self.lane_of.get(pid.index()).copied().unwrap_or(0)
    }
}

/// Counters reported by a laned run, for observability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneStats {
    /// Total signals delivered (matches [`Engine::run`]'s return value).
    pub delivered: u64,
    /// Number of sync barriers (lane batches) executed.
    pub barriers: u64,
    /// Signals delivered per lane.
    pub lane_events: Vec<u64>,
    /// Total simulated time by which a lane's next event overshot the
    /// conservative horizon when its batch was cut short — a measure of how
    /// tightly coupled the lanes are (zero lookahead ⇒ high stall).
    pub lookahead_stall: SimDuration,
}

impl LaneStats {
    fn new(lanes: usize) -> LaneStats {
        LaneStats {
            delivered: 0,
            barriers: 0,
            lane_events: vec![0; lanes],
            lookahead_stall: SimDuration::ZERO,
        }
    }
}

/// A deferred sink call, recorded by [`OpBuffer`] and replayed in order.
#[derive(Debug, Clone, Copy)]
enum SinkOp {
    Record(TraceEvent),
    Step(u64, SimTime),
    Checkpoint(u64, SimTime),
}

/// A [`TraceSink`] that buffers calls instead of performing them, so the
/// event loop never blocks on sink work.
#[derive(Debug, Default)]
struct OpBuffer {
    ops: Vec<SinkOp>,
}

impl TraceSink for OpBuffer {
    fn record(&mut self, event: &TraceEvent) {
        self.ops.push(SinkOp::Record(*event));
    }
    fn on_step(&mut self, step: u64, at: SimTime) {
        self.ops.push(SinkOp::Step(step, at));
    }
    fn on_checkpoint(&mut self, step: u64, at: SimTime) {
        self.ops.push(SinkOp::Checkpoint(step, at));
    }
}

fn apply_ops(sink: &mut dyn TraceSink, ops: &[SinkOp]) {
    for op in ops {
        match *op {
            SinkOp::Record(ref event) => sink.record(event),
            SinkOp::Step(step, at) => sink.on_step(step, at),
            SinkOp::Checkpoint(step, at) => sink.on_checkpoint(step, at),
        }
    }
}

impl Engine {
    /// Runs until no events remain, with processes sharded into lanes per
    /// `assignment`. Sink calls are flushed off the critical path on a
    /// dedicated flusher thread (enabled when the global [`tpupoint_par`]
    /// pool is multi-threaded). Delivery order — and thus everything
    /// observable: traces, RNG draws, queue states — is byte-identical to
    /// [`Engine::run`].
    pub fn run_laned(
        &mut self,
        assignment: &LaneAssignment,
        sink: &mut (dyn TraceSink + Send),
    ) -> LaneStats {
        self.run_until_laned(None, assignment, sink)
    }

    /// Laned counterpart of [`Engine::run_until`]: stops once every lane's
    /// next event lies beyond `deadline`. The deadline bounds lane barriers
    /// too — no lane may run ahead of it — so a paused run resumes
    /// byte-identically under either engine. Undelivered events are returned
    /// to the global heap, preserving their `(time, seq)` keys.
    pub fn run_until_laned(
        &mut self,
        deadline: Option<SimTime>,
        assignment: &LaneAssignment,
        sink: &mut (dyn TraceSink + Send),
    ) -> LaneStats {
        let pool = tpupoint_par::pool();
        if pool.size() <= 1 {
            // No worker to flush on: apply ops inline. Still goes through the
            // laned loop so lane/barrier accounting stays consistent.
            let mut stats = LaneStats::new(assignment.lanes().max(1));
            self.laned_loop(deadline, assignment, &mut stats, &mut |ops| {
                apply_ops(sink, &ops);
            });
            return stats;
        }

        let mut stats = LaneStats::new(assignment.lanes().max(1));
        // The channel is deliberately unbounded: a bounded channel could
        // stall the event loop whenever the flusher falls behind — the loop
        // would block on a full `send` that only the flusher can drain. Peak
        // occupancy is bounded in practice by FLUSH_BATCH times the
        // loop/flush speed ratio.
        //
        // The flusher runs on its own scoped OS thread rather than as a pool
        // job: it blocks on `recv()` for the whole run, and a blocked pool
        // worker would be a stolen execution slot — under a grid-parallel
        // sweep every concurrent run would park one worker and the sweep
        // would serialize. A dedicated thread spends that blocked time off
        // the pool entirely.
        let (tx, rx) = std::sync::mpsc::channel::<Vec<SinkOp>>();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                while let Ok(batch) = rx.recv() {
                    apply_ops(sink, &batch);
                }
            });
            self.laned_loop(deadline, assignment, &mut stats, &mut |ops| {
                tx.send(ops).expect("sink flusher exited early");
            });
            drop(tx); // closes the channel; scope waits for the flusher to drain
        });
        stats
    }

    fn laned_loop(
        &mut self,
        deadline: Option<SimTime>,
        assignment: &LaneAssignment,
        stats: &mut LaneStats,
        flush: &mut dyn FnMut(Vec<SinkOp>),
    ) {
        let lanes = assignment.lanes().max(1);
        // Partition the pending events across per-lane heaps. `(at, seq)`
        // keys carry over unchanged, so ordering within a lane is exactly
        // the serial order restricted to that lane.
        let mut heaps: Vec<BinaryHeap<Reverse<Scheduled>>> =
            (0..lanes).map(|_| BinaryHeap::new()).collect();
        for Reverse(event) in std::mem::take(&mut self.heap) {
            heaps[assignment.lane_for(event.target)].push(Reverse(event));
        }

        let mut pending: Vec<(SimTime, ProcessId, Signal)> = Vec::new();
        let mut buf = OpBuffer::default();
        loop {
            // Pick the lane owning the globally minimal event key.
            let mut best: Option<(SimTime, u64, usize)> = None;
            for (lane, heap) in heaps.iter().enumerate() {
                if let Some(Reverse(head)) = heap.peek() {
                    if best.is_none_or(|(at, seq, _)| (head.at, head.seq) < (at, seq)) {
                        best = Some((head.at, head.seq, lane));
                    }
                }
            }
            let Some((at, _, lane)) = best else {
                break;
            };
            if deadline.is_some_and(|d| at > d) {
                break;
            }
            // Conservative horizon: this lane may run free while its next
            // event stays strictly below every other lane's earliest key —
            // including cross-lane events emitted *during* the batch, which
            // tighten the horizon as they appear.
            let mut horizon: Option<(SimTime, u64)> = None;
            for (other, heap) in heaps.iter().enumerate() {
                if other == lane {
                    continue;
                }
                if let Some(Reverse(head)) = heap.peek() {
                    let key = (head.at, head.seq);
                    if horizon.is_none_or(|h| key < h) {
                        horizon = Some(key);
                    }
                }
            }
            stats.barriers += 1;
            while let Some(Reverse(head)) = heaps[lane].peek() {
                let key = (head.at, head.seq);
                if let Some(h) = horizon {
                    if key >= h {
                        stats.lookahead_stall += key.0.saturating_since(h.0);
                        break;
                    }
                }
                if deadline.is_some_and(|d| key.0 > d) {
                    break;
                }
                let Reverse(event) = heaps[lane].pop().expect("peeked event vanished");
                self.dispatch(event, &mut buf, &mut pending);
                for (at, target, signal) in pending.drain(..) {
                    let seq = self.seq;
                    self.seq += 1;
                    let dest = assignment.lane_for(target);
                    if dest != lane {
                        let key = (at, seq);
                        if horizon.is_none_or(|h| key < h) {
                            horizon = Some(key);
                        }
                    }
                    heaps[dest].push(Reverse(Scheduled {
                        at,
                        seq,
                        target,
                        signal,
                    }));
                }
                stats.lane_events[lane] += 1;
                stats.delivered += 1;
                if buf.ops.len() >= FLUSH_BATCH {
                    flush(std::mem::take(&mut buf.ops));
                }
            }
        }
        if !buf.ops.is_empty() {
            flush(std::mem::take(&mut buf.ops));
        }
        // Return undelivered events (deadline pauses) to the global heap so
        // `is_idle` and subsequent serial *or* laned resumes see the exact
        // state the serial engine would have.
        for heap in heaps {
            for Reverse(event) in heap {
                self.heap.push(Reverse(event));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{PopOutcome, PushOutcome, QueueId};
    use crate::trace::{NullSink, OpId, Track, VecSink};

    /// Producer pushes `count` items with `gap` between them, emitting a
    /// trace event per push, then closes the queue.
    struct Producer {
        q: QueueId,
        next: u64,
        count: u64,
        gap: SimDuration,
    }

    impl crate::Process for Producer {
        fn on_signal(&mut self, sig: Signal, ctx: &mut crate::Ctx<'_>) {
            match sig {
                Signal::Start | Signal::Timer(_) | Signal::QueueReady(_) => loop {
                    if self.next == self.count {
                        ctx.close_queue(self.q);
                        return;
                    }
                    match ctx.try_push(self.q, self.next) {
                        PushOutcome::Stored => {
                            let now = ctx.now();
                            ctx.emit(TraceEvent {
                                op: OpId(0),
                                track: Track::Host,
                                start: now,
                                dur: SimDuration::from_micros(1),
                                mxu_dur: SimDuration::ZERO,
                                step: None,
                            });
                            self.next += 1;
                            if !self.gap.is_zero() {
                                ctx.schedule_in(self.gap, 0);
                                return;
                            }
                        }
                        PushOutcome::WouldBlock => return,
                    }
                },
                Signal::Poke(_) => {}
            }
        }
    }

    /// Consumer pops every item with a randomized service time, marking a
    /// step per item so RNG draws and sink calls both exercise ordering.
    struct Consumer {
        q: QueueId,
        busy: bool,
        popped: u64,
    }

    impl crate::Process for Consumer {
        fn on_signal(&mut self, sig: Signal, ctx: &mut crate::Ctx<'_>) {
            if matches!(sig, Signal::Timer(_)) {
                self.busy = false;
            }
            if self.busy {
                return;
            }
            match ctx.try_pop(self.q) {
                PopOutcome::Item(_) => {
                    self.popped += 1;
                    ctx.mark_step(self.popped);
                    self.busy = true;
                    let jitter = ctx.rng().uniform_u64(1, 9);
                    ctx.schedule_in(SimDuration::from_micros(5 + jitter), 0);
                }
                PopOutcome::WouldBlock => {}
                PopOutcome::Closed => {
                    ctx.mark_checkpoint(self.popped);
                }
            }
        }
    }

    fn build(items: u64, gap_us: u64) -> Engine {
        let mut engine = Engine::new(7);
        let q = engine.create_queue(4);
        let producer = engine.add_process(Box::new(Producer {
            q,
            next: 0,
            count: items,
            gap: SimDuration::from_micros(gap_us),
        }));
        let consumer = engine.add_process(Box::new(Consumer {
            q,
            busy: false,
            popped: 0,
        }));
        engine.start(producer);
        engine.start(consumer);
        engine
    }

    fn serial_trace(items: u64, gap_us: u64) -> (VecSink, SimTime, u64) {
        let mut engine = build(items, gap_us);
        let mut sink = VecSink::new();
        let delivered = engine.run(&mut sink);
        (sink, engine.now(), delivered)
    }

    fn laned_trace(items: u64, gap_us: u64, lanes: usize) -> (VecSink, SimTime, LaneStats) {
        let mut engine = build(items, gap_us);
        let assignment = LaneAssignment::contiguous(engine.process_count(), lanes);
        let mut sink = VecSink::new();
        let stats = engine.run_laned(&assignment, &mut sink);
        (sink, engine.now(), stats)
    }

    #[test]
    fn laned_matches_serial_exactly() {
        let (serial, serial_end, delivered) = serial_trace(200, 3);
        for lanes in [1, 2, 4] {
            let (laned, laned_end, stats) = laned_trace(200, 3, lanes);
            assert_eq!(laned.events, serial.events, "lanes={lanes}");
            assert_eq!(laned.steps, serial.steps, "lanes={lanes}");
            assert_eq!(laned.checkpoints, serial.checkpoints, "lanes={lanes}");
            assert_eq!(laned_end, serial_end, "lanes={lanes}");
            assert_eq!(stats.delivered, delivered, "lanes={lanes}");
            assert_eq!(stats.lane_events.iter().sum::<u64>(), delivered);
        }
    }

    #[test]
    fn laned_matches_serial_under_thread_pool() {
        let (serial, ..) = serial_trace(300, 2);
        tpupoint_par::set_threads(4);
        let (laned, ..) = laned_trace(300, 2, 2);
        tpupoint_par::set_threads(0);
        assert_eq!(laned.events, serial.events);
        assert_eq!(laned.steps, serial.steps);
        assert_eq!(laned.checkpoints, serial.checkpoints);
    }

    #[test]
    fn laned_run_until_deadline_pauses_and_resumes() {
        // Mirror of `run_until_deadline_pauses_and_resumes`, laned: pause a
        // laned run, then finish it with each engine flavour and check both
        // resume paths land in the identical state.
        let assignment = LaneAssignment::contiguous(2, 2);
        let mut serial = build(10, 10);
        serial.run(&mut NullSink);

        let mut paused = build(10, 10);
        paused.run_until_laned(Some(SimTime::from_micros(35)), &assignment, &mut NullSink);
        assert!(!paused.is_idle());

        let mut resume_serial = build(10, 10);
        resume_serial.run_until_laned(Some(SimTime::from_micros(35)), &assignment, &mut NullSink);
        resume_serial.run(&mut NullSink);
        let mut resume_laned = paused;
        resume_laned.run_laned(&assignment, &mut NullSink);

        assert_eq!(resume_serial.now(), serial.now());
        assert_eq!(resume_laned.now(), serial.now());
        assert!(resume_serial.is_idle());
        assert!(resume_laned.is_idle());
    }

    #[test]
    fn laned_deadline_trace_matches_serial_split_run() {
        // Records must be identical even when the run is split at a deadline.
        let (serial, ..) = serial_trace(50, 4);
        let assignment = LaneAssignment::contiguous(2, 2);
        let mut engine = build(50, 4);
        let mut sink = VecSink::new();
        engine.run_until_laned(Some(SimTime::from_micros(60)), &assignment, &mut sink);
        engine.run_laned(&assignment, &mut sink);
        assert_eq!(sink.events, serial.events);
        assert_eq!(sink.steps, serial.steps);
        assert_eq!(sink.checkpoints, serial.checkpoints);
    }

    #[test]
    fn contiguous_assignment_clamps_lane_count() {
        let a = LaneAssignment::contiguous(2, 8);
        assert_eq!(a.lanes(), 2);
        let b = LaneAssignment::contiguous(6, 2);
        assert_eq!(b.lanes(), 2);
        assert_eq!(b.lane_for(ProcessId::nth(2)), 0);
        assert_eq!(b.lane_for(ProcessId::nth(3)), 1);
        let c = LaneAssignment::contiguous(0, 3);
        assert_eq!(c.lanes(), 1);
    }

    #[test]
    fn stats_count_barriers_and_stall() {
        let (_, _, stats) = laned_trace(100, 3, 2);
        assert!(stats.barriers > 0);
        assert_eq!(stats.lane_events.len(), 2);
        // Producer and consumer interact constantly, so the conservative
        // horizon forces many short batches.
        assert!(stats.barriers <= stats.delivered);
    }
}
