//! The complete profile of one run: what TPUPoint-Analyzer consumes.

use crate::record::StepRecord;
use crate::window::WindowRecord;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use tpupoint_simcore::{OpId, SimDuration, SimTime};

/// A self-contained profile: op-name table, per-step statistical records,
/// sealed windows, and the step/checkpoint markers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Model the profile was captured from.
    pub model: String,
    /// Dataset the model trained on.
    pub dataset: String,
    /// Op names indexed by [`OpId`].
    pub op_names: Vec<String>,
    /// Whether each op drives the MXUs, indexed by [`OpId`].
    pub op_uses_mxu: Vec<bool>,
    /// Whether each op was observed on the host (or storage) side rather
    /// than on a TPU core, indexed by [`OpId`]. Ops never observed default
    /// to host.
    pub op_on_host: Vec<bool>,
    /// Per-step records, sorted by step number. Step 0 is session
    /// initialization; the largest step is session shutdown.
    pub steps: Vec<StepRecord>,
    /// Sealed profile windows in order.
    pub windows: Vec<WindowRecord>,
    /// `(step, time)` markers for every step completion.
    pub step_marks: Vec<(u64, SimTime)>,
    /// `(step, time)` markers for every checkpoint write.
    pub checkpoints: Vec<(u64, SimTime)>,
    /// Profile windows whose responses were lost (fault injection or real
    /// transport loss); their events are absent from `steps`.
    #[serde(default)]
    pub dropped_windows: u64,
    /// Events inside dropped windows.
    #[serde(default)]
    pub lost_events: u64,
    /// Record-store operations that failed while recording (after any
    /// retry/spill resilience); the in-memory profile is complete, but the
    /// persisted record stream may not be.
    #[serde(default)]
    pub store_errors: u64,
    /// The first store error observed, for diagnostics.
    #[serde(default)]
    pub store_error: Option<String>,
}

impl Profile {
    /// Resolves an op id to its name.
    ///
    /// # Panics
    ///
    /// Panics if `op` was not part of this profile's catalog.
    pub fn op_name(&self, op: OpId) -> &str {
        &self.op_names[op.0 as usize]
    }

    /// Finds the id of an op name, if it occurred.
    pub fn op_id(&self, name: &str) -> Option<OpId> {
        self.op_names
            .iter()
            .position(|n| n == name)
            .map(|i| OpId(i as u32))
    }

    /// The records of actual profile steps: excludes the synthetic init
    /// (step 0) and shutdown (last step) records.
    pub fn training_records(&self) -> &[StepRecord] {
        let mut lo = 0;
        let mut hi = self.steps.len();
        if self.steps.first().is_some_and(|r| r.step == 0) {
            lo = 1;
        }
        let max_mark = self.step_marks.iter().map(|(s, _)| *s).max().unwrap_or(0);
        if self.steps.last().is_some_and(|r| r.step > max_mark) {
            hi -= 1;
        }
        &self.steps[lo..hi]
    }

    /// The profile truncated to steps at or below `step`: records,
    /// windows, step marks, and checkpoints past the cut are dropped.
    /// Used by `analyze --prefix-stable` to characterize only the prefix
    /// the streaming analyzer declared stable.
    #[must_use]
    pub fn prefix_through(&self, step: u64) -> Profile {
        let mut prefix = self.clone();
        prefix.steps.retain(|r| r.step <= step);
        prefix.windows.retain(|w| w.first_step <= step);
        prefix.step_marks.retain(|&(s, _)| s <= step);
        prefix.checkpoints.retain(|&(s, _)| s <= step);
        prefix
    }

    /// TPU idle fraction over the stepped portion of the run, computed from
    /// the statistical records exactly as TPUPoint reports it (Figure 10).
    pub fn steady_tpu_idle_fraction(&self) -> f64 {
        let records = self.training_records();
        let Some(window) = Self::records_span(records) else {
            return 0.0;
        };
        let busy: SimDuration = records.iter().map(|r| r.tpu_time).sum();
        (1.0 - busy.as_micros() as f64 / window.as_micros() as f64).clamp(0.0, 1.0)
    }

    /// MXU utilization over the stepped portion of the run (Figure 11).
    pub fn steady_mxu_utilization(&self) -> f64 {
        let records = self.training_records();
        let Some(window) = Self::records_span(records) else {
            return 0.0;
        };
        let mxu: SimDuration = records.iter().map(|r| r.mxu_time).sum();
        (mxu.as_micros() as f64 / window.as_micros() as f64).clamp(0.0, 1.0)
    }

    fn records_span(records: &[StepRecord]) -> Option<SimDuration> {
        let first = records.iter().map(|r| r.first_start).min()?;
        let last = records.iter().map(|r| r.last_end).max()?;
        (last > first).then(|| last - first)
    }

    /// True when capture or recording lost anything: dropped profile
    /// responses or failed store operations. A clean profile means both
    /// the in-memory view and the persisted record stream are complete.
    pub fn is_degraded(&self) -> bool {
        self.dropped_windows > 0 || self.store_errors > 0
    }

    /// Fraction of observed events lost to dropped profile responses.
    pub fn loss_fraction(&self) -> f64 {
        let total = self
            .steps
            .iter()
            .map(StepRecord::total_invocations)
            .sum::<u64>()
            + self.lost_events;
        if total == 0 {
            return 0.0;
        }
        self.lost_events as f64 / total as f64
    }

    /// Serializes the profile as JSON.
    ///
    /// # Errors
    ///
    /// Returns any serialization or I/O error.
    pub fn save_json<W: Write>(&self, writer: W) -> io::Result<()> {
        serde_json::to_writer(writer, self).map_err(io::Error::other)
    }

    /// Deserializes a profile from JSON.
    ///
    /// # Errors
    ///
    /// Returns any deserialization or I/O error.
    pub fn load_json<R: Read>(reader: R) -> io::Result<Profile> {
        serde_json::from_reader(reader).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::Track;

    fn record(step: u64, start: u64, dur: u64, tpu: bool) -> StepRecord {
        let mut r = StepRecord::new(step);
        r.absorb(
            OpId(0),
            if tpu { Track::TpuCore(0) } else { Track::Host },
            SimTime::from_micros(start),
            SimDuration::from_micros(dur),
            SimDuration::from_micros(if tpu { dur / 2 } else { 0 }),
        );
        r
    }

    fn profile() -> Profile {
        Profile {
            model: "m".into(),
            dataset: "d".into(),
            op_names: vec!["fusion".into(), "Reshape".into()],
            op_uses_mxu: vec![true, false],
            op_on_host: vec![false, false],
            steps: vec![
                record(0, 0, 100, false), // init
                record(1, 100, 60, true), // steps: busy 60 of [100, 400]
                record(2, 200, 90, true),
                record(3, 300, 100, true),
                record(42, 500, 10, false), // shutdown
            ],
            windows: vec![],
            step_marks: vec![
                (1, SimTime::from_micros(160)),
                (2, SimTime::from_micros(290)),
                (3, SimTime::from_micros(400)),
            ],
            checkpoints: vec![(3, SimTime::from_micros(400))],
            dropped_windows: 0,
            lost_events: 0,
            store_errors: 0,
            store_error: None,
        }
    }

    #[test]
    fn training_records_strip_init_and_shutdown() {
        let p = profile();
        let steps: Vec<u64> = p.training_records().iter().map(|r| r.step).collect();
        assert_eq!(steps, vec![1, 2, 3]);
    }

    #[test]
    fn steady_metrics_cover_step_window_only() {
        let p = profile();
        // Window 100..400 = 300us, busy 250us → idle 1/6.
        assert!((p.steady_tpu_idle_fraction() - (1.0 - 250.0 / 300.0)).abs() < 1e-9);
        // MXU 125us of 300us.
        assert!((p.steady_mxu_utilization() - 125.0 / 300.0).abs() < 1e-9);
    }

    #[test]
    fn op_lookup_round_trips() {
        let p = profile();
        assert_eq!(p.op_name(OpId(0)), "fusion");
        assert_eq!(p.op_id("Reshape"), Some(OpId(1)));
        assert_eq!(p.op_id("nope"), None);
    }

    #[test]
    fn json_round_trip() {
        let p = profile();
        let mut buf = Vec::new();
        p.save_json(&mut buf).unwrap();
        let q = Profile::load_json(buf.as_slice()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn empty_profile_metrics_are_zero() {
        let p = Profile {
            model: String::new(),
            dataset: String::new(),
            op_names: vec![],
            op_uses_mxu: vec![],
            op_on_host: vec![],
            steps: vec![],
            windows: vec![],
            step_marks: vec![],
            checkpoints: vec![],
            dropped_windows: 0,
            lost_events: 0,
            store_errors: 0,
            store_error: None,
        };
        assert_eq!(p.steady_tpu_idle_fraction(), 0.0);
        assert_eq!(p.steady_mxu_utilization(), 0.0);
    }
}
